//! GREMIO vs DSWP across the whole Figure-6(b) catalog: partition
//! style, communication volume, and timed speedups side by side.
//!
//! ```text
//! cargo run --release -p gmt-examples --bin gremio_vs_dswp
//! ```

use comparison::compare;

/// The comparison logic, kept in a module so the example reads
/// top-down (everything it uses is public library API).
mod comparison {
    use gmt_core::{CocoConfig, Parallelizer, Scheduler};
    use gmt_ir::interp_mt::{run_mt, QueueConfig};
    use gmt_sched::{cut_summary, has_cyclic_inter_thread_deps};
    use gmt_sim::{simulate, MachineConfig};
    use gmt_workloads::{catalog, exec_config};

    pub fn compare() -> Result<(), Box<dyn std::error::Error>> {
        println!(
            "{:<14} {:>9} {:>7} {:>9} {:>7} {:>8} {:>8}",
            "benchmark", "G comm", "G cyc?", "D comm", "D pipe", "G spdup", "D spdup"
        );
        for w in catalog() {
            let train = w.run_train()?;
            let pdg = gmt_pdg::Pdg::build(&w.function);

            let mut row = format!("{:<14}", w.benchmark);
            let mut speeds = Vec::new();
            for (scheduler, depth) in [(Scheduler::gremio(2), 1usize), (Scheduler::dswp(2), 32)] {
                let r = Parallelizer::new(scheduler)
                    .with_coco(CocoConfig::default())
                    .parallelize(&w.function, &train.profile)?;
                let mt = run_mt(
                    r.threads(),
                    &w.train_args,
                    w.init,
                    &QueueConfig {
                        num_queues: r.num_queues().max(1) as usize,
                        capacity: depth,
                    },
                    &exec_config(),
                )?;
                let cyclic = has_cyclic_inter_thread_deps(&pdg, &r.partition);
                let pipe = gmt_sched::is_pipeline(&pdg, &r.partition);
                let _ = cut_summary(&pdg, &r.partition);
                row.push_str(&format!(
                    " {:>9} {:>7}",
                    mt.totals().comm_total(),
                    if depth == 1 {
                        if cyclic { "yes" } else { "no" }
                    } else if pipe {
                        "yes"
                    } else {
                        "NO!"
                    }
                ));
                let mut machine = MachineConfig::default().with_queue_depth(depth);
                if r.num_queues() as usize > machine.sa.num_queues {
                    machine.sa.num_queues = r.num_queues() as usize;
                }
                let seq = simulate(
                    std::slice::from_ref(&w.function),
                    &w.train_args,
                    w.init,
                    &machine,
                )?;
                let timed = simulate(r.threads(), &w.train_args, w.init, &machine)?;
                speeds.push(seq.cycles as f64 / timed.cycles as f64);
            }
            println!("{row} {:>7.2}x {:>7.2}x", speeds[0], speeds[1]);
        }
        println!("(G cyc? = GREMIO produced cyclic inter-thread deps; D pipe = DSWP kept the pipeline invariant)");
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    compare()
}
