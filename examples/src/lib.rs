//! Shared nothing: each example is a standalone binary.
