//! COCO anatomy: reconstruct the paper's Figure 4 scenario and show
//! exactly what the min-cut placement changes — the flow graph, the
//! chosen cut, the generated code, and the dynamic instruction counts.
//!
//! ```text
//! cargo run -p gmt-examples --bin coco_anatomy
//! ```

use gmt_core::{optimize, CocoConfig};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::{display, BinOp, FunctionBuilder};
use gmt_mtcg::CommKind;
use gmt_pdg::{Partition, Pdg, ThreadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 4 of the paper: loop 1 computes r1 every iteration; only
    // the final value feeds loop 2. T_s = loop 1, T_t = loop 2.
    let mut b = FunctionBuilder::new("figure4");
    let n = b.param();
    let i = b.fresh_reg();
    let r1 = b.fresh_reg();
    let j = b.fresh_reg();
    let acc = b.fresh_reg();
    let l1 = b.block("L1");
    let mid = b.block("mid");
    let l2 = b.block("L2");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(r1, 0);
    b.jump(l1);
    b.switch_to(l1);
    b.bin_into(BinOp::Add, r1, r1, i); // B: r1 = ...
    b.bin_into(BinOp::Add, i, i, 1i64);
    let c1 = b.bin(BinOp::Lt, i, n);
    b.branch(c1, l1, mid); // C
    b.switch_to(mid);
    b.const_into(j, 0); // D
    b.const_into(acc, 0);
    b.jump(l2);
    b.switch_to(l2);
    let prod = b.bin(BinOp::Mul, r1, j); // E: uses r1
    b.bin_into(BinOp::Add, acc, acc, prod);
    b.bin_into(BinOp::Add, j, j, 1i64);
    let c2 = b.bin(BinOp::Lt, j, n);
    b.branch(c2, l2, exit); // F
    b.switch_to(exit);
    b.output(acc);
    b.ret(Some(acc.into()));
    let f = b.finish()?;

    // Partition: loop 1 on T0, loop 2 (and the tail) on T1.
    let mut partition = Partition::new(2);
    for blk in f.blocks() {
        let t = if blk.index() <= 1 { ThreadId(0) } else { ThreadId(1) };
        for ins in f.block(blk).all_instrs() {
            partition.assign(ins, t);
        }
    }
    let pdg = Pdg::build(&f);
    let profile = run(&f, &[10], &ExecConfig::default())?.profile;

    // Baseline: MTCG communicates r1 at its definition — inside loop 1.
    let baseline = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
    println!("baseline r1 points: {:?}", baseline.points(CommKind::Register(r1), ThreadId(0), ThreadId(1)));
    println!("baseline makes T1 duplicate branches: {:?}", baseline.relevant_branches(ThreadId(1)));

    // COCO: the min-cut on r1's flow graph lands after the loop.
    let (plan, stats) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    println!("COCO r1 points:     {:?}", plan.points(CommKind::Register(r1), ThreadId(0), ThreadId(1)));
    println!("COCO leaves T1 with branches:       {:?}", plan.relevant_branches(ThreadId(1)));
    println!("stats: {stats:?}");

    // Generate both versions and count dynamic communication.
    let base_out = gmt_mtcg::generate(&f, &pdg, &partition)?;
    let coco_out = gmt_mtcg::generate_with_plan(&f, &partition, plan)?;
    let seq = run(&f, &[10], &ExecConfig::default())?;
    for (name, out) in [("MTCG", &base_out), ("MTCG+COCO", &coco_out)] {
        let mt = run_mt(
            &out.threads,
            &[10],
            |_, _| {},
            &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
            &ExecConfig::default(),
        )?;
        assert_eq!(mt.return_value, seq.return_value);
        println!(
            "{name}: {} communication instructions; thread 1 executed {} instructions",
            mt.totals().comm_total(),
            mt.per_thread[1].total()
        );
        if std::env::var_os("DUMP").is_some() {
            println!("{}", display(&out.threads[1]));
        }
    }
    println!("(set DUMP=1 to see thread 1 shrink: the first loop disappears from it)");
    Ok(())
}
