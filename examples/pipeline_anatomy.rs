//! Pipeline anatomy: walk one benchmark kernel through every stage of
//! the Figure-2 framework — PDG, partition, baseline MTCG plan, COCO
//! plan, generated threads, and a timed run on the machine model.
//!
//! ```text
//! cargo run -p gmt-examples --bin pipeline_anatomy [benchmark]
//! ```

use gmt_core::{optimize, CocoConfig};
use gmt_ir::display;
use gmt_pdg::{DepKind, Pdg};
use gmt_sched::dswp;
use gmt_sim::{simulate, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "ks".to_string());
    let w = gmt_workloads::by_benchmark(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}; try ks, adpcmdec, 183.equake ..."));
    println!("benchmark {} — function {} ({}% of execution)", w.benchmark, w.name, w.exec_pct);

    // Stage 0: profile on the train input.
    let train = w.run_train()?;
    println!(
        "train run: {} dynamic instructions, returned {:?}",
        train.counts.total(),
        train.return_value
    );

    // Stage 1: the Program Dependence Graph.
    let pdg = Pdg::build(&w.function);
    let regs = pdg.deps().iter().filter(|d| matches!(d.kind, DepKind::Register(_))).count();
    let mems = pdg.deps().iter().filter(|d| d.kind == DepKind::Memory).count();
    let ctrls = pdg.deps().iter().filter(|d| d.kind == DepKind::Control).count();
    let carried = pdg.deps().iter().filter(|d| d.loop_carried).count();
    println!(
        "PDG: {} nodes, {} deps ({} register, {} memory, {} control; {} loop-carried)",
        pdg.nodes().len(),
        pdg.len(),
        regs,
        mems,
        ctrls,
        carried
    );

    // Stage 2: the partitioner (DSWP here).
    let cfg = dswp::DswpConfig::default();
    let partition = dswp::partition(&w.function, &pdg, &train.profile, &cfg).unwrap();
    println!(
        "DSWP partition: static sizes {:?}, pipeline = {}",
        partition.static_sizes(),
        gmt_sched::is_pipeline(&pdg, &partition)
    );
    let cut = gmt_sched::cut_summary(&pdg, &partition);
    println!("cut dependences: {cut:?}");

    // Stage 3: baseline MTCG plan vs the COCO plan.
    let baseline = gmt_mtcg::baseline_plan(&w.function, &pdg, &partition).unwrap();
    let (coco_plan, stats) = optimize(
        &w.function,
        &pdg,
        &partition,
        &train.profile,
        &CocoConfig::default(),
    );
    println!(
        "baseline plan: {} points, estimated dynamic cost {}",
        baseline.total_points(),
        baseline.dynamic_cost(&w.function, &train.profile)
    );
    println!(
        "COCO plan:     {} points, estimated dynamic cost {} ({:?})",
        coco_plan.total_points(),
        coco_plan.dynamic_cost(&w.function, &train.profile),
        stats
    );

    // Stage 4: code generation.
    let out = gmt_mtcg::generate_with_plan(&w.function, &partition, coco_plan)?;
    for t in &out.threads {
        println!("== thread {} ({} blocks) ==", t.name, t.num_blocks());
        if std::env::var_os("DUMP").is_some() {
            println!("{}", display(t));
        }
    }

    // Stage 5: a timed run on the Figure-6(a) machine.
    let mut machine = MachineConfig::default();
    if out.num_queues as usize > machine.sa.num_queues {
        machine.sa.num_queues = out.num_queues as usize;
    }
    let seq = simulate(std::slice::from_ref(&w.function), &w.train_args, w.init, &machine)?;
    let mt = simulate(&out.threads, &w.train_args, w.init, &machine)?;
    println!(
        "cycles: sequential {}, 2-thread {} => speedup {:.2}x (set DUMP=1 to print thread code)",
        seq.cycles,
        mt.cycles,
        seq.cycles as f64 / mt.cycles as f64
    );
    Ok(())
}
