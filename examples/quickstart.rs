//! Quickstart: build a kernel, parallelize it with DSWP + COCO, and run
//! both versions.
//!
//! ```text
//! cargo run -p gmt-examples --bin quickstart
//! ```

use gmt_core::{CocoConfig, Parallelizer, Scheduler};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::{display, BinOp, FunctionBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a kernel with the IR builder: sum of squares over 0..n.
    let mut b = FunctionBuilder::new("sum_squares");
    let n = b.param();
    let i = b.fresh_reg();
    let s = b.fresh_reg();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(header);
    b.switch_to(header);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let sq = b.bin(BinOp::Mul, i, i);
    b.bin_into(BinOp::Add, s, s, sq);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(header);
    b.switch_to(exit);
    b.output(s);
    b.ret(Some(s.into()));
    let f = b.finish()?;

    println!("== original function ==\n{}", display(&f));

    // 2. Profile on a train input (the interpreter doubles as profiler).
    let train = run(&f, &[50], &ExecConfig::default())?;
    println!("train run: returned {:?}", train.return_value);

    // 3. Parallelize: DSWP into 2 pipeline stages, then COCO.
    let result = Parallelizer::new(Scheduler::dswp(2))
        .with_coco(CocoConfig::default())
        .parallelize(&f, &train.profile)?;
    for t in result.threads() {
        println!("== generated thread ==\n{}", display(t));
    }
    println!(
        "queues used: {}, coco stats: {:?}",
        result.num_queues(),
        result.coco_stats
    );

    // 4. Run the multi-threaded code on a bigger (ref) input and check
    //    it against the sequential semantics.
    let seq = run(&f, &[500], &ExecConfig::default())?;
    let mt = run_mt(
        result.threads(),
        &[500],
        |_, _| {},
        &QueueConfig { num_queues: result.num_queues().max(1) as usize, capacity: 32 },
        &ExecConfig::default(),
    )?;
    assert_eq!(mt.return_value, seq.return_value);
    assert_eq!(mt.output, seq.output);
    println!(
        "ref run: both versions returned {:?}; MT executed {} computation + {} communication instructions",
        mt.return_value,
        mt.totals().computation,
        mt.totals().comm_total(),
    );
    Ok(())
}
