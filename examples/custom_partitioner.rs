//! Plugging a custom partitioner into the Figure-2 framework.
//!
//! "Different GMT schedulers can be implemented simply by 'plugging'
//! different partitioners in this framework" (§2). This example builds
//! a tiny randomized-search partitioner — repeatedly perturb an
//! assignment and keep the best simulated cycle count — and runs it
//! through the same PDG → COCO → MTCG back end as DSWP and GREMIO.
//!
//! ```text
//! cargo run --release -p gmt-examples --bin custom_partitioner [benchmark]
//! ```

use gmt_core::{CocoConfig, Parallelizer, Scheduler};
use gmt_pdg::{Partition, Pdg, ThreadId};
use gmt_sim::{simulate, MachineConfig};

/// A deterministic xorshift for the search.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "300.twolf".to_string());
    let w = gmt_workloads::by_benchmark(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let train = w.run_train()?;
    let pdg = Pdg::build(&w.function);
    let machine = MachineConfig::default();

    // Keep PDG SCCs atomic (recurrences must not be split), like the
    // built-in partitioners do.
    let (g, _index) = pdg.as_digraph();
    let cond = g.condensation();
    let nodes = pdg.nodes();
    let m = cond.components.len();

    let build = |assignment: &[u32]| {
        let mut p = Partition::new(2);
        for (scc_idx, scc) in cond.components.iter().enumerate() {
            for &k in &scc.nodes {
                p.assign(nodes[k.index()], ThreadId(assignment[scc_idx]));
            }
        }
        p
    };
    let evaluate = |p: Partition| -> (u64, Partition) {
        let r = Parallelizer::new(Scheduler::dswp(2)) // scheduler field unused here
            .with_coco(CocoConfig::default())
            .parallelize_with_partition(&w.function, &train.profile, &pdg, p.clone())
            .expect("codegen");
        let cycles = simulate(r.threads(), &w.train_args, w.init, &machine)
            .map_or(u64::MAX, |s| s.cycles);
        (cycles, p)
    };

    // Start single-threaded, then hill-climb with random SCC flips.
    let mut rng = Rng(0xC0C0);
    let mut assignment = vec![0u32; m];
    let (mut best_cycles, mut best) = evaluate(build(&assignment));
    println!("start (single-threaded): {best_cycles} cycles");
    for step in 0..60 {
        let flip = (rng.next() % m as u64) as usize;
        assignment[flip] ^= 1;
        let (cycles, p) = evaluate(build(&assignment));
        if cycles < best_cycles {
            println!("step {step}: improved to {cycles} cycles");
            best_cycles = cycles;
            best = p;
        } else {
            assignment[flip] ^= 1; // revert
        }
    }

    let seq = simulate(
        std::slice::from_ref(&w.function),
        &w.train_args,
        w.init,
        &machine,
    )?;
    println!(
        "{bench}: sequential {} cycles, custom-search 2-thread {} cycles => {:.2}x",
        seq.cycles,
        best_cycles,
        seq.cycles as f64 / best_cycles as f64
    );
    println!("final split sizes: {:?}", best.static_sizes());
    Ok(())
}
