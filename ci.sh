#!/bin/sh
# The tier-1 gate, runnable with no network access and no registry
# cache: hermetic build, full test suite, and a smoke pass of one
# figure bench (every measurement runs once, untimed).
set -eux

cargo build --release --offline --workspace
cargo test -q --offline --workspace
GMT_TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p gmt-bench --bench fig8_speedup

# Parallel experiment-runner smoke: the full quick figure set on the
# worker pool, plus a GMT_JOBS=1 serial cross-check of one figure —
# the parallel and serial paths must produce byte-identical output.
GMT_JOBS=8 ./target/release/repro --quick --fig all > target/ci_repro_parallel.txt
GMT_JOBS=8 ./target/release/repro --quick --fig 7 > target/ci_fig7_parallel.txt
GMT_JOBS=1 ./target/release/repro --quick --fig 7 > target/ci_fig7_serial.txt
cmp target/ci_fig7_parallel.txt target/ci_fig7_serial.txt

# Decoded-engine gate: the flat-stream executors must be observably
# identical to the ID-walking reference executors, the throughput
# bench must at least run (including the queue-bound skip/noskip
# group), and the quick Figure 7 must match the pinned golden output
# byte for byte.
cargo test -q --offline -p gmt-integration-tests --test decoded_equivalence
GMT_TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p gmt-bench --bench exec_throughput
cmp target/ci_fig7_parallel.txt tests/golden/fig7_quick.txt

# Stall fast-forward gate: the event-driven engine (GMT_SIM_SKIP=1,
# the default) and the per-cycle engine (GMT_SIM_SKIP=0) must both
# reproduce the pinned Figure 7 golden — the skip is a pure wall-clock
# optimization with zero observable effect.
GMT_JOBS=8 GMT_SIM_SKIP=1 ./target/release/repro --quick --fig 7 > target/ci_fig7_skip.txt
cmp target/ci_fig7_skip.txt tests/golden/fig7_quick.txt
GMT_JOBS=8 GMT_SIM_SKIP=0 ./target/release/repro --quick --fig 7 > target/ci_fig7_noskip.txt
cmp target/ci_fig7_noskip.txt tests/golden/fig7_quick.txt

# Tracing smoke: one traced cell must produce the pinned attribution
# and per-queue tables, and Chrome-trace JSON that parses and carries
# the expected schema (core spans on pid 1, queue counters on pid 2,
# a cycle count). Then re-run the no-sink figure path and re-diff the
# golden — attaching a sink must never perturb the untraced numbers.
./target/release/repro --trace target/ci_trace.json --bench adpcmdec \
    --scheduler dswp --quick > target/ci_trace_summary_raw.txt
sed 's|target/ci_trace.json|TRACE_PATH|' target/ci_trace_summary_raw.txt \
    > target/ci_trace_summary.txt
cmp target/ci_trace_summary.txt tests/golden/trace_adpcmdec_dswp_quick.txt
python3 - target/ci_trace.json <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
ev = t["traceEvents"]
assert t["otherData"]["cycles"] > 0, "cycle count recorded"
assert any(e["ph"] == "X" and e["pid"] == 1 for e in ev), "core spans"
assert any(e["ph"] == "C" and e["pid"] == 2 for e in ev), "queue counters"
names = {e["args"]["name"] for e in ev if e["ph"] == "M" and e["name"] == "process_name"}
assert names == {"cores", "sa queues"}, names
EOF
GMT_JOBS=8 ./target/release/repro --quick --fig 7 > target/ci_fig7_posttrace.txt
cmp target/ci_fig7_posttrace.txt tests/golden/fig7_quick.txt

# Queue-protocol gate: the static validator must pass the full kernel ×
# scheduler × ±COCO matrix at each cell's *allocated* per-queue depths
# (profile-weighted: hot loop-carried queues get the scheduler's depth
# — GREMIO 1, DSWP 32 — cold control queues get 1), and the
# seeded-mutation suite must show it still catches every planted defect
# class (swapped endpoints, off-by-one queue, dropped control
# duplication, stale placement, uncovered memory dependence,
# cross-block circular waits, plan↔code position swaps, and deadlocks
# only visible at the allocated depth vector). Then re-run the quick
# Figure 7 and re-diff the golden — verification must never perturb
# the measured numbers.
GMT_JOBS=8 ./target/release/repro --verify-mt
cargo test -q --offline -p gmt-core --test mtverify_mutations
GMT_JOBS=8 ./target/release/repro --quick --fig 7 > target/ci_fig7_postverify.txt
cmp target/ci_fig7_postverify.txt tests/golden/fig7_quick.txt

# Panic-site budget: untrusted inputs must surface as typed errors
# (SchedError/MtcgError/PdgError/ExecError), never a panic. The pinned
# counts cover the remaining internal-invariant assertions only; a new
# unwrap/expect/panic/assert in non-test code of a covered crate fails
# the gate. If you removed one, re-pin that budget downward. The
# gmt-pdg/gmt-ir ceiling was lowered 33 -> 30 when the fuzzer's panic
# burn-down converted the reachable sites (unterminated blocks,
# oversized memory layouts, out-of-range queue and points-to indices)
# to typed errors.
python3 - <<'EOF'
import re, pathlib, sys
pat = re.compile(
    r'\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|\bassert!\(|\bassert_eq!|\bassert_ne!')
def count(roots):
    total = 0
    for root in roots:
        for p in sorted(pathlib.Path(root).rglob("*.rs")):
            body = p.read_text().split("#[cfg(test)]")[0]
            total += len(pat.findall(body))
    return total
BUDGETS = {
    "gmt-mtcg/gmt-sched": (("crates/mtcg/src", "crates/sched/src"), 16),
    "gmt-pdg/gmt-ir": (("crates/pdg/src", "crates/ir/src"), 30),
}
for name, (roots, budget) in BUDGETS.items():
    total = count(roots)
    if total > budget:
        sys.exit(f"panic-site budget exceeded in {name}: {total} > {budget}")
    print(f"panic-site budget ok in {name}: {total} <= {budget}")
EOF

# Differential-fuzzer smoke: a deterministic-seed run of the pipeline
# fuzzer (corpus replay + fresh cases; offline, well under 60 s). Any
# finding exits nonzero; its seed is printed and persisted, and
# `GMT_TESTKIT_SEED=<seed> cargo run --release -p gmt-fuzz --bin fuzz`
# replays exactly that case (the same replay command works for every
# entry in tests/fuzz_corpus/corpus.txt). Then re-run the quick
# Figure 7 and re-diff the golden — fuzzing must never perturb the
# measured numbers.
./target/release/fuzz --cases 500 --quiet
GMT_JOBS=8 ./target/release/repro --quick --fig 7 > target/ci_fig7_postfuzz.txt
cmp target/ci_fig7_postfuzz.txt tests/golden/fig7_quick.txt

# Critical-path explain gate: the static-estimate ↔ traced-measurement
# join must reproduce its pinned human report byte for byte, the
# machine output must carry the full schema with the edge-kind
# decomposition summing exactly to the cycle count (the conservation
# law of DESIGN.md invariant 9), and the whole kernel × scheduler
# matrix must explain cleanly (every cell passes both the attribution
# and critical-path checks). Then re-run the quick Figure 7 and
# re-diff the golden — the explain layer must never perturb the
# measured numbers.
./target/release/repro --explain adpcmdec --scheduler dswp --quick \
    > target/ci_explain.txt
cmp target/ci_explain.txt tests/golden/explain_adpcmdec_dswp_quick.txt
./target/release/repro --explain all --scheduler both --quick --json \
    > target/ci_explain_all.json
python3 - target/ci_explain_all.json <<'EOF'
import json, sys
CP_KINDS = ("in_order", "dataflow", "load", "queue_data", "queue_space",
            "sa_port", "structural", "load_limit", "refill", "retire")
VERDICTS = {"recurrence-bound", "queue-bound", "mispredict-bound", "balance-bound"}
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rows) == 22, f"11 kernels x 2 schedulers, got {len(rows)}"
for d in rows:
    for key in ("benchmark", "scheduler", "variant", "cycles", "verdict",
                "dropped_events", "est_bottleneck", "est_total",
                "max_share_pct", "cut_register", "cut_memory", "cut_control",
                "sync_points", "cp_total", "cp_edges", "cp_crossings",
                "threads", "queues"):
        assert key in d, f"{d.get('benchmark')}: missing {key}"
    assert d["verdict"] in VERDICTS, d["verdict"]
    assert d["cp_total"] == d["cycles"], f"{d['benchmark']}: path != cycles"
    assert sum(d[f"cp_{k}"] for k in CP_KINDS) == d["cp_total"], \
        f"{d['benchmark']}: kinds don't sum"
    for t in d["threads"]:
        assert t["compute"] + t["stall"] + t["idle"] == d["cycles"], \
            f"{d['benchmark']}: thread decomposition"
print(f"explain schema ok: {len(rows)} cells, all conserving")
EOF
GMT_JOBS=8 ./target/release/repro --quick --fig 7 > target/ci_fig7_postexplain.txt
cmp target/ci_fig7_postexplain.txt tests/golden/fig7_quick.txt
