#!/bin/sh
# The tier-1 gate, runnable with no network access and no registry
# cache: hermetic build, full test suite, and a smoke pass of one
# figure bench (every measurement runs once, untimed).
set -eux

cargo build --release --offline --workspace
cargo test -q --offline --workspace
GMT_TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p gmt-bench --bench fig8_speedup

# Parallel experiment-runner smoke: the full quick figure set on the
# worker pool, plus a GMT_JOBS=1 serial cross-check of one figure —
# the parallel and serial paths must produce byte-identical output.
GMT_JOBS=8 ./target/release/repro --quick --fig all > target/ci_repro_parallel.txt
GMT_JOBS=8 ./target/release/repro --quick --fig 7 > target/ci_fig7_parallel.txt
GMT_JOBS=1 ./target/release/repro --quick --fig 7 > target/ci_fig7_serial.txt
cmp target/ci_fig7_parallel.txt target/ci_fig7_serial.txt

# Decoded-engine gate: the flat-stream executors must be observably
# identical to the ID-walking reference executors, the throughput
# bench must at least run, and the quick Figure 7 must match the
# pinned golden output byte for byte.
cargo test -q --offline -p gmt-integration-tests --test decoded_equivalence
GMT_TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p gmt-bench --bench exec_throughput
cmp target/ci_fig7_parallel.txt tests/golden/fig7_quick.txt
