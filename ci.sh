#!/bin/sh
# The tier-1 gate, runnable with no network access and no registry
# cache: hermetic build, full test suite, and a smoke pass of one
# figure bench (every measurement runs once, untimed).
set -eux

cargo build --release --offline --workspace
cargo test -q --offline --workspace
GMT_TESTKIT_BENCH_SMOKE=1 cargo bench --offline -p gmt-bench --bench fig8_speedup
