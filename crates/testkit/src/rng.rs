//! Deterministic pseudo-randomness: splitmix64 for seeding/stream
//! derivation, xorshift64* for the main stream.
//!
//! Both algorithms are tiny, portable, and in the public domain; the
//! point here is reproducibility, not cryptographic quality. Every
//! failing test case is fully described by one `u64` seed.

/// Advances a splitmix64 state and returns the next output.
///
/// Used to scramble user-provided seeds (so `0`, `1`, `2`, ... give
/// unrelated streams) and to derive per-case seeds from a base seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic PRNG (xorshift64* over a splitmix64-scrambled
/// seed).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for `seed`. Any seed is fine, including 0.
    pub fn new(seed: u64) -> TestRng {
        let mut s = seed;
        // One splitmix step decorrelates adjacent seeds and avoids the
        // xorshift all-zero fixed point.
        let state = splitmix64(&mut s) | 1;
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small spans tests use (span << 2^64).
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range");
        let span = (hi as i128 - lo as i128) as u64;
        let off = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// An independent child generator (forking keeps sibling draws
    /// stable when one subtree changes how much randomness it uses).
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map({ let mut r = TestRng::new(42); move |_| r.next_u64() }).collect();
        let b: Vec<u64> = (0..8).map({ let mut r = TestRng::new(42); move |_| r.next_u64() }).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8).map({ let mut r = TestRng::new(43); move |_| r.next_u64() }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = TestRng::new(0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            let v = r.range_u64(3, 12);
            assert!((3..12).contains(&v));
            let s = r.range_i64(-5, 6);
            assert!((-5..6).contains(&s));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = TestRng::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of [0,4) reachable: {seen:?}");
    }

    #[test]
    fn bool_is_not_constant() {
        let mut r = TestRng::new(9);
        let trues = (0..100).filter(|_| r.bool()).count();
        assert!((20..=80).contains(&trues), "{trues} trues out of 100");
    }
}
