//! A criterion-shaped micro-benchmark harness: warmup, timed samples,
//! mean/median/stddev, and JSON-lines output.
//!
//! Each bench target (`harness = false`) builds one or more
//! [`BenchGroup`]s in its `main`. Results go to stdout as a human
//! table row and are appended as one JSON object per line to
//! `BENCH_<target>.json` (in `GMT_TESTKIT_BENCH_DIR`, defaulting to
//! the working directory), so figure pipelines can consume them
//! offline.
//!
//! Modes:
//!
//! - `cargo bench` — full warmup + sampling;
//! - `cargo test` / `--test` argument — each benchmark body runs once,
//!   untimed (criterion's smoke-test convention, reused by `ci.sh`);
//! - `GMT_TESTKIT_BENCH_SMOKE=1` — same single-iteration smoke mode.

use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Median time per iteration.
    pub median_ns: f64,
    /// Population standard deviation per iteration.
    pub stddev_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

impl BenchStats {
    fn to_json(&self, target: &str) -> String {
        format!(
            "{{\"target\":\"{}\",\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\
             \"median_ns\":{:.1},\"stddev_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
             \"samples\":{},\"iters\":{}}}",
            escape(target),
            escape(&self.group),
            escape(&self.name),
            self.mean_ns,
            self.median_ns,
            self.stddev_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters,
        )
    }
}

/// Minimal JSON string escaping (names here are identifiers, but stay
/// safe against quotes/backslashes).
pub fn json_escape(s: &str) -> String {
    escape(s)
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec!['?'],
            c => vec![c],
        })
        .collect()
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchGroup {
    group: String,
    target: String,
    sample_size: usize,
    warmup: Duration,
    min_sample_time: Duration,
    smoke: bool,
}

impl BenchGroup {
    /// A group named `group`. Reads the smoke/sample environment and
    /// the `--test` argument convention.
    pub fn new(group: &str) -> BenchGroup {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var("GMT_TESTKIT_BENCH_SMOKE").is_ok_and(|v| v != "0");
        let sample_size = std::env::var("GMT_TESTKIT_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        BenchGroup {
            group: group.to_string(),
            target: bench_target_name(),
            sample_size,
            warmup: Duration::from_millis(300),
            min_sample_time: Duration::from_millis(20),
            smoke,
        }
    }

    /// Sets the number of timed samples (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut BenchGroup {
        if std::env::var("GMT_TESTKIT_SAMPLES").is_err() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Runs one benchmark and records its stats.
    pub fn bench<R>(&mut self, name: &str, mut body: impl FnMut() -> R) -> &mut BenchGroup {
        if self.smoke {
            black_box(body());
            println!("{:<40} [smoke: 1 iteration, untimed]", format!("{}/{name}", self.group));
            return self;
        }

        // Warmup, and estimate per-iteration cost to size samples.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(body());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().div_f64(warm_iters as f64);
        let iters = (self.min_sample_time.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let stats = summarize(&self.group, name, &samples_ns, iters);
        println!(
            "{:<40} mean {:>12}  median {:>12}  stddev {:>10}  ({} samples x {} iters)",
            format!("{}/{name}", self.group),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.stddev_ns),
            stats.samples,
            stats.iters,
        );
        append_json(&self.target, &stats);
        self
    }

    /// Criterion-compat no-op: results are flushed as they complete.
    pub fn finish(&mut self) {}
}

fn summarize(group: &str, name: &str, samples_ns: &[f64], iters: u64) -> BenchStats {
    let n = samples_ns.len() as f64;
    let mean = samples_ns.iter().sum::<f64>() / n;
    let var = samples_ns.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if sorted.len() % 2 == 0 {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    } else {
        sorted[sorted.len() / 2]
    };
    BenchStats {
        group: group.to_string(),
        name: name.to_string(),
        mean_ns: mean,
        median_ns: median,
        stddev_ns: var.sqrt(),
        min_ns: sorted[0],
        max_ns: sorted[sorted.len() - 1],
        samples: samples_ns.len(),
        iters,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The bench target name, from the executable (`target/release/deps/
/// fig8_speedup-<hash>` → `fig8_speedup`).
fn bench_target_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .map(|stem| stem.rsplit_once('-').map_or(stem.clone(), |(base, _)| base.to_string()))
        .unwrap_or_else(|| "bench".to_string())
}

fn append_json(target: &str, stats: &BenchStats) {
    append_json_line(target, &stats.to_json(target));
}

/// Appends one pre-formatted JSON line to `BENCH_<target>.json` in
/// `GMT_TESTKIT_BENCH_DIR` (defaulting to the working directory) —
/// the same sink the bench runner writes to, reusable by any producer
/// of JSON-lines records (e.g. `repro --metrics`).
pub fn append_json_line(target: &str, line: &str) {
    let dir = std::env::var("GMT_TESTKIT_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = PathBuf::from(dir).join(format!("BENCH_{target}.json"));
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(file, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = summarize("g", "b", &[10.0, 20.0, 30.0, 40.0], 3);
        assert_eq!(s.mean_ns, 25.0);
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 40.0);
        assert!((s.stddev_ns - 125.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.iters, 3);
    }

    #[test]
    fn json_line_shape() {
        let s = summarize("maxflow", "dinic/64", &[1.5, 2.5], 100);
        let line = s.to_json("mincut_compile_time");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"target\":\"mincut_compile_time\""));
        assert!(line.contains("\"bench\":\"dinic/64\""));
        assert!(line.contains("\"mean_ns\":2.0"));
        assert!(line.contains("\"samples\":2"));
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn median_of_odd_sample_count() {
        let s = summarize("g", "b", &[9.0, 1.0, 5.0], 1);
        assert_eq!(s.median_ns, 5.0);
    }
}
