//! Hermetic test & bench infrastructure for the GMT workspace.
//!
//! The offline build environment cannot fetch registry crates, so this
//! crate replaces the three external dev-dependencies the seed relied
//! on with small in-tree equivalents:
//!
//! - [`TestRng`] — a deterministic splitmix64/xorshift64* PRNG
//!   (replaces `rand`);
//! - [`Gen`] combinators + the [`Checker`] runner with greedy
//!   [`Shrink`]-based minimization, failure persistence to a
//!   `testkit-regressions` file, and `GMT_TESTKIT_SEED` /
//!   `GMT_TESTKIT_CASES` env overrides (replaces `proptest`);
//! - [`BenchGroup`] — warmup + timed samples with mean/median/stddev
//!   and JSON-lines output to `BENCH_<target>.json` (replaces
//!   `criterion`).
//!
//! It also hosts the workspace's parallel job runner: [`par_map`], a
//! scoped-thread worker pool with a shared work queue and
//! order-preserving results, sized by [`num_jobs`] (the `GMT_JOBS`
//! environment override, defaulting to available parallelism). The
//! experiment harness routes the paper's figure matrix through it.
//!
//! # Replaying a failure
//!
//! When a property fails, the runner shrinks the input, appends the
//! failing case seed to `testkit-regressions` in the crate under test
//! (re-run automatically on the next `cargo test`), and prints a
//! one-liner of the form:
//!
//! ```text
//! replay with: GMT_TESTKIT_SEED=0x1234abcd cargo test -p <crate> <test>
//! ```
//!
//! Setting `GMT_TESTKIT_SEED` makes every checker run exactly that one
//! case; `GMT_TESTKIT_CASES=N` scales the per-property case budget
//! (useful to cheapen CI or deepen a soak run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod check;
mod gen;
mod pool;
mod rng;
mod shrink;

pub use bench::{append_json_line, json_escape, BenchGroup, BenchStats};
pub use check::{Checker, PropResult};
pub use gen::{full_u64, one_of, ranged, recursive, vec_of, weighted, Gen};
pub use pool::{num_jobs, num_jobs_checked, par_map, parse_jobs};
pub use rng::TestRng;
pub use rng::splitmix64;
pub use shrink::{eval_prop, minimize, Shrink};
