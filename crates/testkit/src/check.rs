//! The property-test runner: seeded case generation, greedy shrinking,
//! failure persistence, and environment-variable replay.
//!
//! Each case is generated from its own derived `u64` seed, so a
//! failure is fully reproducible from that one number. Failing seeds
//! are appended to a `testkit-regressions` file next to the crate's
//! manifest and re-run before fresh cases on every subsequent run.

use crate::gen::Gen;
use crate::rng::{splitmix64, TestRng};
use crate::shrink::Shrink;
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// What a property body returns: `Ok(())` on success, a message on
/// failure. Use the [`prop_assert!`](crate::prop_assert) family to
/// produce these.
pub type PropResult = Result<(), String>;

/// Default number of cases when neither the checker nor the
/// environment says otherwise.
const DEFAULT_CASES: u32 = 32;
/// Default base seed: fixed so CI is deterministic run-over-run.
const DEFAULT_SEED: u64 = 0x6D7C_6B5A_4938_2716;
/// Bound on property evaluations spent shrinking one failure.
const MAX_SHRINK_EVALS: u32 = 2048;

/// A configured property check.
pub struct Checker {
    name: String,
    cases: u32,
    seed: u64,
    persist: bool,
}

impl Checker {
    /// A checker named `name` (used in the regressions file and replay
    /// hints; conventionally `"suite::test_fn"`).
    pub fn new(name: &str) -> Checker {
        Checker { name: name.to_string(), cases: DEFAULT_CASES, seed: DEFAULT_SEED, persist: true }
    }

    /// Sets the number of generated cases (overridden by
    /// `GMT_TESTKIT_CASES`).
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Checker {
        self.cases = cases;
        self
    }

    /// Sets the base seed (overridden by `GMT_TESTKIT_SEED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Checker {
        self.seed = seed;
        self
    }

    /// Disables writing failing seeds to the regressions file (used by
    /// tests of the harness itself).
    #[must_use]
    pub fn no_persistence(mut self) -> Checker {
        self.persist = false;
        self
    }

    /// Runs `prop` against persisted regression cases, then fresh
    /// generated cases.
    ///
    /// # Panics
    ///
    /// Panics with the shrunken counterexample when the property
    /// fails.
    pub fn run<T>(&self, gen: &Gen<T>, prop: impl Fn(&T) -> PropResult)
    where
        T: Clone + Debug + Shrink + 'static,
    {
        // Explicit replay trumps everything: run exactly that case.
        if let Some(seed) = env_u64("GMT_TESTKIT_SEED") {
            self.run_case(gen, &prop, seed, false);
            return;
        }
        for seed in self.persisted_seeds() {
            self.run_case(gen, &prop, seed, false);
        }
        let cases = env_u64("GMT_TESTKIT_CASES").map_or(self.cases, |c| c as u32);
        let mut base = self.seed ^ fnv1a(self.name.as_bytes());
        for _ in 0..cases {
            let case_seed = splitmix64(&mut base);
            self.run_case(gen, &prop, case_seed, self.persist);
        }
    }

    /// Generates and checks the case for `case_seed`; shrinks,
    /// optionally persists, and panics on failure.
    fn run_case<T>(
        &self,
        gen: &Gen<T>,
        prop: &impl Fn(&T) -> PropResult,
        case_seed: u64,
        persist: bool,
    ) where
        T: Clone + Debug + Shrink + 'static,
    {
        let value = gen.sample(&mut TestRng::new(case_seed));
        let Err(first_err) = crate::shrink::eval_prop(prop, &value) else { return };
        let (min_value, min_err) =
            crate::shrink::minimize(value, first_err, MAX_SHRINK_EVALS, prop);
        if persist {
            self.persist_seed(case_seed);
        }
        panic!(
            "property '{}' failed (case seed {case_seed:#x}).\n\
             minimal input: {min_value:#?}\n\
             error: {min_err}\n\
             replay with: GMT_TESTKIT_SEED={case_seed:#x} cargo test {}",
            self.name,
            self.name.rsplit("::").next().unwrap_or(&self.name),
        );
    }

    /// Seeds recorded by previous failing runs, oldest first.
    fn persisted_seeds(&self) -> Vec<u64> {
        let Ok(text) = fs::read_to_string(regressions_path()) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let line = line.trim();
                let (name, seed) = line.split_once(' ')?;
                if name != self.name || line.starts_with('#') {
                    return None;
                }
                parse_u64(seed.trim())
            })
            .collect()
    }

    /// Appends a failing case seed to the regressions file.
    fn persist_seed(&self, seed: u64) {
        if self.persisted_seeds().contains(&seed) {
            return;
        }
        let path = regressions_path();
        let new = !path.exists();
        let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(&path) else {
            return; // read-only checkout: the panic message still has the seed
        };
        if new {
            let _ = writeln!(
                file,
                "# gmt-testkit regression seeds: `<property name> <case seed>` per line.\n\
                 # Re-run automatically before fresh cases; check this file in."
            );
        }
        let _ = writeln!(file, "{} {seed:#x}", self.name);
    }
}

/// The per-crate regression file, next to the manifest of the crate
/// under test (cargo sets `CARGO_MANIFEST_DIR` for test processes; the
/// fallback covers bare binary invocation).
fn regressions_path() -> PathBuf {
    let dir = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(dir).join("testkit-regressions")
}

fn env_u64(name: &str) -> Option<u64> {
    parse_u64(&std::env::var(name).ok()?)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a over bytes: decorrelates per-property case streams so two
/// properties in one file don't see the same inputs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fails the property with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}\n  left: {a:?}\n right: {b:?}",
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ranged, vec_of};

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Checker::new("testkit::passing").cases(17).run(&ranged(0u8, 100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        // At least the 17 fresh cases ran (plus any persisted ones).
        assert!(count >= 17, "{count}");
    }

    #[test]
    fn failing_property_panics_with_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            Checker::new("testkit::failing").cases(50).no_persistence().run(
                &vec_of(ranged(0u64, 1000), 0, 10),
                |v: &Vec<u64>| {
                    if v.iter().any(|&x| x >= 5) {
                        Err("element too big".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // Greedy shrinking must reach the canonical minimal input [5].
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains('5'), "{msg}");
        assert!(msg.contains("GMT_TESTKIT_SEED="), "{msg}");
    }

    #[test]
    fn same_name_same_cases() {
        let collect = || {
            let got = std::cell::RefCell::new(Vec::new());
            Checker::new("testkit::stable").cases(8).run(&crate::gen::full_u64(), |&v| {
                got.borrow_mut().push(v);
                Ok(())
            });
            got.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_names_decorrelate() {
        let collect = |name: &str| {
            let got = std::cell::RefCell::new(Vec::new());
            Checker::new(name).cases(8).run(&crate::gen::full_u64(), |&v| {
                got.borrow_mut().push(v);
                Ok(())
            });
            got.into_inner()
        };
        assert_ne!(collect("testkit::a"), collect("testkit::b"));
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0xff"), Some(255));
        assert_eq!(parse_u64(" 0X10 "), Some(16));
        assert_eq!(parse_u64("nope"), None);
    }
}
