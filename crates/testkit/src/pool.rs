//! A zero-dependency scoped worker pool with a shared work queue.
//!
//! The experiment matrix behind the paper's figures is embarrassingly
//! parallel — every (benchmark, scheduler, variant) evaluation is
//! independent — so [`par_map`] fans a job list out over
//! `std::thread::scope` workers pulling indices from a shared atomic
//! counter. Results are written into per-index slots, so the returned
//! vector is **always in input order**: callers that format results
//! sequentially produce byte-identical output whether the map ran on
//! one worker or sixteen.
//!
//! The worker count comes from [`num_jobs`]: the `GMT_JOBS` environment
//! variable when set (and ≥ 1), otherwise
//! [`std::thread::available_parallelism`]. `GMT_JOBS=1` degrades to a
//! plain in-caller serial loop — the reference path the determinism
//! tests compare against.
//!
//! Jobs that can fail should return `Result`: a failing job fills its
//! own slot and the remaining queue keeps draining, so one bad job
//! neither deadlocks the pool nor drops sibling results. (A *panicking*
//! job is also safe — `std::thread::scope` joins every worker before
//! propagating the panic — but turns the whole map into a panic;
//! prefer `Result`.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count: the `GMT_JOBS` environment variable when it parses
/// to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn num_jobs() -> usize {
    std::env::var("GMT_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Applies `f` to every item on a pool of `jobs` workers and returns
/// the results **in input order**.
///
/// `f` receives the item's index and the item. With `jobs <= 1` (or a
/// single item) the map runs serially in the caller's thread with no
/// pool at all — identical semantics, zero threading.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("pool slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let r = f(i, item);
                *results[i].lock().expect("pool result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot poisoned")
                .expect("every claimed index stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, 8, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |_i: usize, x: u64| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(items.clone(), 1, f);
        let parallel = par_map(items, 13, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn erroring_jobs_keep_sibling_results() {
        // A job failing mid-queue must neither deadlock the pool nor
        // drop any sibling result: every slot comes back, errors where
        // the failing jobs ran, values everywhere else.
        let items: Vec<usize> = (0..64).collect();
        let out: Vec<Result<usize, String>> = par_map(items, 4, |_i, x| {
            if x % 7 == 3 {
                Err(format!("job {x} failed"))
            } else {
                Ok(x + 1)
            }
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 7 == 3 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("job {i} failed"));
            } else {
                assert_eq!(*r, Ok(i + 1));
            }
        }
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1, 2, 3], 64, |_i, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 8, |_i, x| x);
        assert!(out.is_empty());
    }
}
