//! A zero-dependency scoped worker pool with a shared work queue.
//!
//! The experiment matrix behind the paper's figures is embarrassingly
//! parallel — every (benchmark, scheduler, variant) evaluation is
//! independent — so [`par_map`] fans a job list out over
//! `std::thread::scope` workers pulling indices from a shared atomic
//! counter. Results are written into per-index slots, so the returned
//! vector is **always in input order**: callers that format results
//! sequentially produce byte-identical output whether the map ran on
//! one worker or sixteen.
//!
//! The worker count comes from [`num_jobs`]: the `GMT_JOBS` environment
//! variable when set, otherwise
//! [`std::thread::available_parallelism`]. `GMT_JOBS=1` degrades to a
//! plain in-caller serial loop — the reference path the determinism
//! tests compare against. A set-but-invalid `GMT_JOBS` (0, garbage,
//! non-UTF-8) is a configuration error, not a request for the default:
//! [`num_jobs`] prints the problem to stderr and exits 2, so a typo in
//! a CI pipeline cannot silently fan out to full parallelism (see
//! [`parse_jobs`] for the contract and [`num_jobs_checked`] for the
//! non-exiting form).
//!
//! Jobs that can fail should return `Result`: a failing job fills its
//! own slot and the remaining queue keeps draining, so one bad job
//! neither deadlocks the pool nor drops sibling results. (A *panicking*
//! job is also safe — `std::thread::scope` joins every worker before
//! propagating the panic — but turns the whole map into a panic;
//! prefer `Result`.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parses a `GMT_JOBS` value into a worker count.
///
/// The contract: a worker count is a positive decimal integer
/// (surrounding whitespace tolerated). `0` is rejected — a pool with
/// no workers can never drain its queue — and so is anything that does
/// not parse; the caller asked for an explicit count, so a typo must
/// not silently become "whatever the machine has".
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "GMT_JOBS must be at least 1, got `{value}` (unset it to use available parallelism)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("GMT_JOBS must be a positive integer, got `{value}`")),
    }
}

/// The worker count: [`parse_jobs`] of the `GMT_JOBS` environment
/// variable when set, otherwise the machine's available parallelism
/// (1 if that cannot be determined).
///
/// # Errors
///
/// Returns the [`parse_jobs`] rejection for a set-but-invalid
/// `GMT_JOBS` (including non-UTF-8 values).
pub fn num_jobs_checked() -> Result<usize, String> {
    match std::env::var("GMT_JOBS") {
        Ok(v) => parse_jobs(&v),
        Err(std::env::VarError::NotPresent) => {
            Ok(std::thread::available_parallelism().map_or(1, |n| n.get()))
        }
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("GMT_JOBS is set but is not valid UTF-8".to_string())
        }
    }
}

/// [`num_jobs_checked`], exiting with status 2 on an invalid
/// `GMT_JOBS` after printing the problem to stderr — the behavior every
/// `GMT_JOBS`-reading binary (`repro`, the bench runners) wants.
pub fn num_jobs() -> usize {
    num_jobs_checked().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Applies `f` to every item on a pool of `jobs` workers and returns
/// the results **in input order**.
///
/// `f` receives the item's index and the item. With `jobs <= 1` (or a
/// single item) the map runs serially in the caller's thread with no
/// pool at all — identical semantics, zero threading.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("pool slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let r = f(i, item);
                *results[i].lock().expect("pool result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot poisoned")
                .expect("every claimed index stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, 8, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |_i: usize, x: u64| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(items.clone(), 1, f);
        let parallel = par_map(items, 13, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn erroring_jobs_keep_sibling_results() {
        // A job failing mid-queue must neither deadlock the pool nor
        // drop any sibling result: every slot comes back, errors where
        // the failing jobs ran, values everywhere else.
        let items: Vec<usize> = (0..64).collect();
        let out: Vec<Result<usize, String>> = par_map(items, 4, |_i, x| {
            if x % 7 == 3 {
                Err(format!("job {x} failed"))
            } else {
                Ok(x + 1)
            }
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 7 == 3 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("job {i} failed"));
            } else {
                assert_eq!(*r, Ok(i + 1));
            }
        }
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1, 2, 3], 64, |_i, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 8, |_i, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parse_jobs_contract() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs("16"), Ok(16));
        assert_eq!(parse_jobs(" 4 "), Ok(4), "surrounding whitespace tolerated");
        // Pre-fix, all of these silently fell back to full parallelism.
        assert!(parse_jobs("0").unwrap_err().contains("at least 1"));
        assert!(parse_jobs("").unwrap_err().contains("positive integer"));
        assert!(parse_jobs("lots").unwrap_err().contains("positive integer"));
        assert!(parse_jobs("-3").unwrap_err().contains("positive integer"));
        assert!(parse_jobs("1.5").unwrap_err().contains("positive integer"));
    }

    #[test]
    fn num_jobs_checked_reads_env() {
        // Env mutation is process-global; keep every case in one test
        // so parallel test threads cannot interleave observations.
        let saved = std::env::var("GMT_JOBS").ok();
        std::env::set_var("GMT_JOBS", "3");
        assert_eq!(num_jobs_checked(), Ok(3));
        std::env::set_var("GMT_JOBS", "0");
        assert!(num_jobs_checked().is_err(), "explicit zero is rejected, not defaulted");
        std::env::set_var("GMT_JOBS", "garbage");
        assert!(num_jobs_checked().is_err());
        std::env::remove_var("GMT_JOBS");
        assert!(num_jobs_checked().unwrap() >= 1);
        match saved {
            Some(v) => std::env::set_var("GMT_JOBS", v),
            None => std::env::remove_var("GMT_JOBS"),
        }
    }
}
