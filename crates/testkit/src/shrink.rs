//! Greedy shrinking: a failing input is minimized by repeatedly
//! replacing it with the first *smaller candidate* that still fails.
//!
//! Unlike proptest's integrated shrinking this is type-directed: each
//! input type proposes its own candidates via [`Shrink::shrinks`].
//! Greedy descent is not globally optimal but converges fast and needs
//! no generator bookkeeping, which keeps replay-by-seed exact.

/// Types that can propose smaller versions of themselves.
pub trait Shrink: Sized {
    /// Strictly-simpler candidate values, most aggressive first.
    /// Returning an empty vector means the value is fully shrunk.
    fn shrinks(&self) -> Vec<Self>;
}

macro_rules! shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrinks(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrinks(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v - v.signum()] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrinks(&self) -> Vec<bool> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrinks(&self) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        // Drop whole halves first (fast descent on long inputs) ...
        if self.len() >= 2 {
            out.push(self[self.len() / 2..].to_vec());
            out.push(self[..self.len() / 2].to_vec());
        }
        // ... then individual elements ...
        for k in 0..self.len() {
            let mut v = self.clone();
            v.remove(k);
            out.push(v);
        }
        // ... then shrink elements in place.
        for k in 0..self.len() {
            for cand in self[k].shrinks() {
                let mut v = self.clone();
                v[k] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Greedy descent: repeatedly replaces `value` with the first shrink
/// candidate that still fails `prop`, until no candidate fails or
/// `max_evals` property evaluations have been spent. Returns the
/// minimized value and its failure message.
///
/// This is the exact procedure [`Checker`](crate::Checker) applies to
/// failing property cases; it is public so external drivers (e.g. a
/// fuzzing harness) can triage their own failures with it. Panics in
/// `prop` are contained and treated as failures, so shrinking can walk
/// through panicking candidates.
pub fn minimize<T: Clone + Shrink>(
    mut value: T,
    mut err: String,
    max_evals: u32,
    prop: &impl Fn(&T) -> Result<(), String>,
) -> (T, String) {
    let mut evals = 0u32;
    'outer: loop {
        for cand in value.shrinks() {
            evals += 1;
            if evals > max_evals {
                break 'outer;
            }
            if let Err(e) = eval_prop(prop, &cand) {
                value = cand;
                err = e;
                continue 'outer;
            }
        }
        break;
    }
    (value, err)
}

/// Evaluates the property, converting panics into `Err` so callers
/// (and [`minimize`]) can treat a panic like any other failure. The
/// panic still prints via the default hook; only the unwind is
/// contained.
pub fn eval_prop<T, R>(
    prop: &impl Fn(&T) -> Result<R, String>,
    value: &T,
) -> Result<R, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .map_or_else(|| "property panicked".to_string(), |m| format!("panic: {m}"))),
    }
}

macro_rules! shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrinks(&self) -> Vec<($($name,)+)> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrinks() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
shrink_tuple!(A: 0);
shrink_tuple!(A: 0, B: 1);
shrink_tuple!(A: 0, B: 1, C: 2);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    /// Greedy descent as the checker performs it.
    fn minimize<T: Shrink + Clone>(mut value: T, fails: impl Fn(&T) -> bool) -> T {
        'outer: loop {
            for cand in value.shrinks() {
                if fails(&cand) {
                    value = cand;
                    continue 'outer;
                }
            }
            return value;
        }
    }

    #[test]
    fn uint_shrinks_toward_zero() {
        assert_eq!(minimize(200u8, |&v| v >= 17), 17);
        assert!(0u8.shrinks().is_empty());
    }

    #[test]
    fn int_shrinks_from_both_sides() {
        assert_eq!(minimize(-120i8, |&v| v <= -9), -9);
        assert_eq!(minimize(100i8, |&v| v >= 3), 3);
    }

    #[test]
    fn vec_drops_irrelevant_elements() {
        let start: Vec<u8> = (0..20).collect();
        let min = minimize(start, |v| v.contains(&13));
        assert_eq!(min, vec![13]);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let min = minimize((50u8, 99u8), |&(a, b)| a >= 5 && b >= 2);
        assert_eq!(min, (5, 2));
    }

    #[test]
    fn nested_vecs_shrink() {
        let start = vec![vec![9u8; 6], vec![1, 2, 8], vec![4; 4]];
        let min = minimize(start, |v| v.iter().any(|inner| inner.contains(&8)));
        assert_eq!(min, vec![vec![8]]);
    }
}
