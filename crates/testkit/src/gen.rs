//! Generator combinators: a `Gen<T>` is a reusable recipe turning a
//! [`TestRng`] into a value of `T`, mirroring the subset of proptest's
//! `Strategy` algebra the GMT test suites actually use (`prop_oneof!`,
//! `prop_map`, `collection::vec`, `prop_recursive`, weighted choice).

use crate::rng::TestRng;
use std::rc::Rc;

/// A cloneable value generator.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Gen<T> {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// A generator that always yields `value`.
    pub fn just(value: T) -> Gen<T>
    where
        T: Clone,
    {
        Gen::new(move |_| value.clone())
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }

    /// Applies `g` to every generated value.
    pub fn map<U: 'static>(self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| g(self.sample(rng)))
    }

    /// Feeds each generated value into a dependent generator.
    pub fn flat_map<U: 'static>(self, g: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        Gen::new(move |rng| g(self.sample(rng)).sample(rng))
    }

    /// Pairs this generator with another.
    pub fn zip<U: 'static>(self, other: Gen<U>) -> Gen<(T, U)> {
        Gen::new(move |rng| (self.sample(rng), other.sample(rng)))
    }
}

/// A uniform draw from a numeric range (exclusive upper bound), for
/// any type convertible from/to `i64` losslessly via the helper trait.
pub fn ranged<T: RangedValue>(lo: T, hi: T) -> Gen<T> {
    let (a, b) = (lo.into_wide(), hi.into_wide());
    Gen::new(move |rng| T::from_wide(rng.range_i64(a, b)))
}

/// Numeric types [`ranged`] can generate.
pub trait RangedValue: Copy + 'static {
    /// Widens to `i64`.
    fn into_wide(self) -> i64;
    /// Narrows from `i64` (the value is guaranteed in range).
    fn from_wide(v: i64) -> Self;
}

macro_rules! ranged_impl {
    ($($t:ty),*) => {$(
        impl RangedValue for $t {
            fn into_wide(self) -> i64 { self as i64 }
            fn from_wide(v: i64) -> $t { v as $t }
        }
    )*};
}
ranged_impl!(u8, i8, u16, i16, u32, i32, u64, i64, usize);

/// The full `u64` range (seeds, hashes); [`ranged`] is limited to
/// spans that fit `i64`.
pub fn full_u64() -> Gen<u64> {
    Gen::new(TestRng::next_u64)
}

/// Uniform choice between alternative generators (proptest's
/// `prop_oneof!`).
pub fn one_of<T: 'static>(options: Vec<Gen<T>>) -> Gen<T> {
    assert!(!options.is_empty(), "one_of needs at least one option");
    Gen::new(move |rng| {
        let k = rng.range_usize(0, options.len());
        options[k].sample(rng)
    })
}

/// Weighted choice between alternative generators.
pub fn weighted<T: 'static>(options: Vec<(u32, Gen<T>)>) -> Gen<T> {
    let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "weighted needs positive total weight");
    Gen::new(move |rng| {
        let mut roll = rng.range_u64(0, total);
        for (w, g) in &options {
            let w = u64::from(*w);
            if roll < w {
                return g.sample(rng);
            }
            roll -= w;
        }
        unreachable!("roll < total")
    })
}

/// A vector of `len` in `[lo, hi)` elements drawn from `element`.
pub fn vec_of<T: 'static>(element: Gen<T>, lo: usize, hi: usize) -> Gen<Vec<T>> {
    Gen::new(move |rng| {
        let n = rng.range_usize(lo, hi);
        (0..n).map(|_| element.sample(rng)).collect()
    })
}

/// A bounded-depth recursive generator (proptest's `prop_recursive`):
/// `branch` receives the generator for the next-shallower level and
/// returns the compound cases; every level also falls back to `leaf`
/// half the time so trees thin out toward the leaves.
pub fn recursive<T: 'static>(
    depth: u32,
    leaf: Gen<T>,
    branch: impl Fn(Gen<T>) -> Gen<T>,
) -> Gen<T> {
    let mut level = leaf.clone();
    for _ in 0..depth {
        level = weighted(vec![(1, leaf.clone()), (1, branch(level))]);
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranged_and_map() {
        let g = ranged(0u8, 10).map(|v| v * 2);
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn one_of_hits_every_option() {
        let g = one_of(vec![Gen::just(1), Gen::just(2), Gen::just(3)]);
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[g.sample(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_of_respects_bounds() {
        let g = vec_of(ranged(0u8, 4), 1, 5);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_terminates_and_nests() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let g = recursive(3, ranged(0u8, 255).map(Tree::Leaf), |inner| {
            vec_of(inner, 1, 4).map(Tree::Node)
        });
        let mut rng = TestRng::new(17);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&g.sample(&mut rng)));
        }
        assert!(max_depth >= 1, "some nesting must occur");
        assert!(max_depth <= 3, "depth bound respected, saw {max_depth}");
    }

    #[test]
    fn weighted_biases_choice() {
        let g = weighted(vec![(9, Gen::just(0u8)), (1, Gen::just(1u8))]);
        let mut rng = TestRng::new(23);
        let ones = (0..1000).filter(|_| g.sample(&mut rng) == 1).count();
        assert!((20..400).contains(&ones), "~10% expected, saw {ones}");
    }

    #[test]
    fn flat_map_threads_dependency() {
        let g = ranged(1usize, 4).flat_map(|n| vec_of(Gen::just(7u8), n, n + 1));
        let mut rng = TestRng::new(29);
        for _ in 0..50 {
            let v = g.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
