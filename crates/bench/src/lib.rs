//! Shared helpers for the Criterion benches.
//!
//! Each bench target regenerates one of the paper's evaluation
//! artifacts: it *prints* the figure's rows once (so `cargo bench`
//! reproduces the evaluation tables) and then times the pipeline
//! stages behind the figure. Quick (train-sized) inputs keep the suite
//! fast; the `repro` binary produces the full-scale numbers.

use gmt_harness::{run_all, Scale, SchedulerKind};

/// Prints one figure's rows once per process (guard against Criterion
/// re-running the setup).
pub fn print_once(tag: &str, body: impl FnOnce() -> String) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static PRINTED: AtomicBool = AtomicBool::new(false);
    if !PRINTED.swap(true, Ordering::SeqCst) {
        println!("\n==== {tag} ====\n{}", body());
    }
}

/// Quick-scale functional results for both schedulers. The catalog
/// workloads are all expected to evaluate; panics (with the benchmark
/// name) if one does not.
pub fn quick_results(kind: SchedulerKind) -> Vec<gmt_harness::BenchResult> {
    run_all(kind, false, Scale::Quick)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("catalog workloads evaluate")
}
