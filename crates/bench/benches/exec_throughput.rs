//! Execution-engine throughput: the pre-decoded flat instruction
//! streams vs the ID-walking reference executors, on the three
//! largest catalog kernels (by dynamic train-input instructions).
//!
//! Three engines are timed on identical work: the single-threaded
//! interpreter, the multi-threaded interpreter (on DSWP+COCO thread
//! pairs), and the cycle-level simulator. Decoding happens once
//! outside the timed region — that is the engine's contract: decode a
//! verified function once, execute it many times.

use gmt_core::{CocoConfig, Parallelizer, Scheduler};
use gmt_ir::decoded::{DecodedFunction, DecodedProgram};
use gmt_ir::interp::{run_decoded_with_memory, run_with_memory_reference};
use gmt_ir::interp_mt::{run_mt_decoded, run_mt_reference, QueueConfig};
use gmt_sim::{
    simulate_decoded, simulate_decoded_opts, simulate_reference, MachineConfig, SimOptions,
};
use gmt_testkit::BenchGroup;
use gmt_workloads::{exec_config, Workload};
use std::hint::black_box;

/// The three catalog kernels with the most dynamic instructions on
/// their train input.
fn largest_kernels() -> Vec<(Workload, u64)> {
    let mut sized: Vec<(Workload, u64)> = gmt_workloads::catalog()
        .into_iter()
        .map(|w| {
            let instrs = w.run_train().expect("train run").counts.total();
            (w, instrs)
        })
        .collect();
    sized.sort_by_key(|(_, instrs)| std::cmp::Reverse(*instrs));
    sized.truncate(3);
    sized
}

fn st_interp(kernels: &[(Workload, u64)]) {
    let mut group = BenchGroup::new("st_interp");
    for (w, instrs) in kernels {
        let cfg = exec_config();
        group.bench(&format!("{}/reference/{instrs}_instrs", w.benchmark), || {
            black_box(
                run_with_memory_reference(&w.function, &w.train_args, w.init, &cfg)
                    .expect("reference run"),
            )
        });
        let d = DecodedFunction::decode(&w.function);
        group.bench(&format!("{}/decoded/{instrs}_instrs", w.benchmark), || {
            black_box(
                run_decoded_with_memory(&d, &w.train_args, w.init, &cfg).expect("decoded run"),
            )
        });
    }
    group.finish();
}

fn mt_interp(kernels: &[(Workload, u64)]) {
    let mut group = BenchGroup::new("mt_interp");
    for (w, instrs) in kernels {
        let cfg = exec_config();
        let train = w.run_train().expect("train run");
        let p = Parallelizer::new(Scheduler::dswp(2))
            .with_coco(CocoConfig::default())
            .parallelize(&w.function, &train.profile)
            .expect("parallelize");
        let qc = QueueConfig { num_queues: p.num_queues().max(1) as usize, capacity: 32 };
        group.bench(&format!("{}/reference/{instrs}_instrs", w.benchmark), || {
            black_box(
                run_mt_reference(p.threads(), &w.train_args, w.init, &qc, &cfg)
                    .expect("reference mt run"),
            )
        });
        let program = DecodedProgram::decode(p.threads()).expect("decode");
        group.bench(&format!("{}/decoded/{instrs}_instrs", w.benchmark), || {
            black_box(
                run_mt_decoded(&program, &w.train_args, w.init, &qc, &cfg)
                    .expect("decoded mt run"),
            )
        });
    }
    group.finish();
}

fn sim(kernels: &[(Workload, u64)]) {
    let mut group = BenchGroup::new("sim");
    for (w, instrs) in kernels {
        let machine = MachineConfig::default();
        let st = std::slice::from_ref(&w.function);
        group.bench(&format!("{}/reference/{instrs}_instrs", w.benchmark), || {
            black_box(
                simulate_reference(st, &w.train_args, w.init, &machine).expect("reference sim"),
            )
        });
        let program = DecodedProgram::decode(st).expect("decode");
        group.bench(&format!("{}/decoded/{instrs}_instrs", w.benchmark), || {
            black_box(
                simulate_decoded(&program, &w.train_args, w.init, &machine)
                    .expect("decoded sim"),
            )
        });
    }
    group.finish();
}

/// The kernels whose DSWP thread pairs spend the majority of their
/// cycles in synchronization-array waits (skip ratio >50% of engine
/// steps), plus the largest kernel overall for scale. These are the
/// queue-bound configurations the stall fast-forward targets.
fn queue_bound_kernels() -> Vec<(Workload, u64)> {
    gmt_workloads::catalog()
        .into_iter()
        .filter(|w| matches!(w.benchmark, "mpeg2enc" | "300.twolf" | "183.equake" | "435.gromacs"))
        .map(|w| {
            let instrs = w.run_train().expect("train run").counts.total();
            (w, instrs)
        })
        .collect()
}

/// Queue-bound MT simulation: DSWP thread pairs whose cycles are
/// dominated by synchronization-array waits — exactly the shape the
/// event-driven stall fast-forward targets. Each kernel is timed at
/// the paper's uniform depth-32 SA and at the profile-allocated
/// per-queue depths, with the fast-forward on and off, so the refreshed
/// `BENCH_exec_throughput.json` records the speedup directly.
fn sim_queue_bound(kernels: &[(Workload, u64)]) {
    let mut group = BenchGroup::new("sim_queue_bound");
    for (w, instrs) in kernels {
        let train = w.run_train().expect("train run");
        let p = Parallelizer::new(Scheduler::dswp(2))
            .with_coco(CocoConfig::default())
            .parallelize(&w.function, &train.profile)
            .expect("parallelize");
        let program = DecodedProgram::decode(p.threads()).expect("decode");
        let mut machine = MachineConfig::default();
        if p.num_queues() as usize > machine.sa.num_queues {
            machine.sa.num_queues = p.num_queues() as usize;
        }
        // The allocated-depth vector holds one entry per plan queue, so
        // that machine's SA is sized to the plan exactly.
        let mut alloc = MachineConfig::default().with_queue_depths(p.queue_depths.clone());
        alloc.sa.num_queues = p.num_queues() as usize;
        let configs = [("depth32", machine.clone().with_queue_depth(32)), ("alloc", alloc)];
        for (depth_name, m) in &configs {
            for (skip_name, opts) in [
                ("skip", SimOptions { fast_forward: true }),
                ("noskip", SimOptions { fast_forward: false }),
            ] {
                group.bench(
                    &format!("{}/{depth_name}/{skip_name}/{instrs}_instrs", w.benchmark),
                    || {
                        black_box(
                            simulate_decoded_opts(&program, &w.train_args, w.init, m, opts)
                                .expect("queue-bound sim"),
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

fn main() {
    let kernels = largest_kernels();
    st_interp(&kernels);
    mt_interp(&kernels);
    sim(&kernels);
    sim_queue_bound(&queue_bound_kernels());
}
