//! Figure 1: breakdown of dynamic instructions into computation and
//! communication in baseline MTCG code, for GREMIO and DSWP.
//!
//! Prints the figure's rows, then times the pipeline that produces one
//! row (PDG → partition → MTCG → functional MT run).

use criterion::{criterion_group, criterion_main, Criterion};
use gmt_bench::print_once;
use gmt_harness::{evaluate, Scale, SchedulerKind};
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    print_once("Figure 1 (quick scale)", || {
        format!(
            "{}\n{}",
            gmt_harness::figures::figure1(SchedulerKind::Gremio, Scale::Quick),
            gmt_harness::figures::figure1(SchedulerKind::Dswp, Scale::Quick)
        )
    });

    let mut group = c.benchmark_group("fig1_row");
    group.sample_size(10);
    for bench in ["ks", "adpcmdec"] {
        let w = gmt_workloads::by_benchmark(bench).unwrap();
        group.bench_function(format!("{bench}_gremio"), |b| {
            b.iter(|| black_box(evaluate(&w, SchedulerKind::Gremio, false, Scale::Quick)));
        });
        group.bench_function(format!("{bench}_dswp"), |b| {
            b.iter(|| black_box(evaluate(&w, SchedulerKind::Dswp, false, Scale::Quick)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
