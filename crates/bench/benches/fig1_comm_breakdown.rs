//! Figure 1: breakdown of dynamic instructions into computation and
//! communication in baseline MTCG code, for GREMIO and DSWP.
//!
//! Prints the figure's rows, then times the pipeline that produces one
//! row (PDG → partition → MTCG → functional MT run).

use gmt_bench::print_once;
use gmt_harness::{evaluate, Scale, SchedulerKind};
use gmt_testkit::BenchGroup;
use std::hint::black_box;

fn main() {
    print_once("Figure 1 (quick scale)", || {
        format!(
            "{}\n{}",
            gmt_harness::figures::figure1(SchedulerKind::Gremio, Scale::Quick),
            gmt_harness::figures::figure1(SchedulerKind::Dswp, Scale::Quick)
        )
    });

    let mut group = BenchGroup::new("fig1_row");
    group.sample_size(10);
    for bench in ["ks", "adpcmdec"] {
        let w = gmt_workloads::by_benchmark(bench).unwrap();
        group.bench(&format!("{bench}_gremio"), || {
            black_box(evaluate(&w, SchedulerKind::Gremio, false, Scale::Quick).expect("evaluates"))
        });
        group.bench(&format!("{bench}_dswp"), || {
            black_box(evaluate(&w, SchedulerKind::Dswp, false, Scale::Quick).expect("evaluates"))
        });
    }
    group.finish();
}
