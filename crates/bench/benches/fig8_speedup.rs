//! Figure 8: speedup over single-threaded execution, without and with
//! COCO, on the cycle-level machine model.
//!
//! Prints the figure's rows, then times the simulator itself
//! (cycles-per-second throughput of the machine model).

use gmt_bench::print_once;
use gmt_harness::{Scale, SchedulerKind};
use gmt_sim::{simulate, MachineConfig};
use gmt_testkit::BenchGroup;
use std::hint::black_box;

fn main() {
    print_once("Figure 8 (quick scale)", || {
        format!(
            "{}\n{}",
            gmt_harness::figures::figure8(SchedulerKind::Gremio, Scale::Quick),
            gmt_harness::figures::figure8(SchedulerKind::Dswp, Scale::Quick)
        )
    });

    let mut group = BenchGroup::new("simulator");
    group.sample_size(10);
    for bench in ["adpcmdec", "181.mcf"] {
        let w = gmt_workloads::by_benchmark(bench).unwrap();
        group.bench(&format!("{bench}_single_core"), || {
            black_box(
                simulate(
                    std::slice::from_ref(&w.function),
                    &w.train_args,
                    w.init,
                    &MachineConfig::default(),
                )
                .unwrap()
                .cycles,
            )
        });
    }
    group.finish();
}
