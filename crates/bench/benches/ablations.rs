//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. §3.1.2 control-flow penalties on/off — effect on dynamic
//!    communication (printed) and optimizer time (measured);
//! 2. §3.1.3 shared multicut vs independent per-dependence cuts;
//! 3. queue depth 1 vs 32 on the machine model;
//! 4. quasi-topological vs worst-case pair order in Algorithm 2
//!    (iteration count, printed).

use gmt_core::{optimize, CocoConfig};
use gmt_harness::SchedulerKind;
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_pdg::Pdg;
use gmt_sim::{simulate, MachineConfig};
use gmt_testkit::BenchGroup;
use gmt_workloads::exec_config;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};

fn dynamic_comm(w: &gmt_workloads::Workload, config: &CocoConfig) -> u64 {
    let train = w.run_train().unwrap();
    let pdg = Pdg::build(&w.function);
    let partition = gmt_sched::gremio::partition(
        &w.function,
        &pdg,
        &train.profile,
        &gmt_sched::gremio::GremioConfig::default(),
    ).unwrap();
    let (plan, _) = optimize(&w.function, &pdg, &partition, &train.profile, config);
    let out = gmt_mtcg::generate_with_plan(&w.function, &partition, plan).unwrap();
    run_mt(
        &out.threads,
        &w.train_args,
        w.init,
        &QueueConfig {
            num_queues: out.num_queues.max(1) as usize,
            capacity: SchedulerKind::Gremio.queue_depth(),
        },
        &exec_config(),
    )
    .unwrap()
    .totals()
    .comm_total()
}

fn print_tables_once() {
    static PRINTED: AtomicBool = AtomicBool::new(false);
    if PRINTED.swap(true, Ordering::SeqCst) {
        return;
    }
    println!("\n==== Ablation: COCO variants (GREMIO partitions, quick scale) ====");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "benchmark", "baseline", "full COCO", "no penalties", "no shared mcut"
    );
    for w in gmt_workloads::catalog() {
        let full = dynamic_comm(&w, &CocoConfig::default());
        let nopen = dynamic_comm(&w, &CocoConfig { control_penalties: false, ..CocoConfig::default() });
        let nomc =
            dynamic_comm(&w, &CocoConfig { shared_memory_multicut: false, ..CocoConfig::default() });
        // Baseline = MTCG's own plan.
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        let partition = gmt_sched::gremio::partition(
            &w.function,
            &pdg,
            &train.profile,
            &gmt_sched::gremio::GremioConfig::default(),
        ).unwrap();
        let out = gmt_mtcg::generate(&w.function, &pdg, &partition).unwrap();
        let base = run_mt(
            &out.threads,
            &w.train_args,
            w.init,
            &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 1 },
            &exec_config(),
        )
        .unwrap()
        .totals()
        .comm_total();
        println!("{:<14} {:>10} {:>12} {:>12} {:>14}", w.benchmark, base, full, nopen, nomc);
    }

    println!("\n==== Ablation: queue budget (allocation folds plans onto fewer queues) ====");
    println!("{:<14} {:>12} {:>10} {:>10} {:>12}", "benchmark", "plan points", "unlimited", "budget 16", "cycles@16");
    for w in gmt_workloads::catalog()
        .into_iter()
        .filter(|w| ["ks", "177.mesa", "435.gromacs", "458.sjeng"].contains(&w.benchmark))
    {
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        // Four pipeline stages: enough cross-thread items to exceed the
        // 32-queue budget and exercise the allocator.
        let partition = gmt_sched::dswp::partition(
            &w.function,
            &pdg,
            &train.profile,
            &gmt_sched::dswp::DswpConfig { num_threads: 4, comm_latency: 1 },
        ).unwrap();
        let plan = gmt_mtcg::baseline_plan(&w.function, &pdg, &partition).unwrap();
        let points = plan.total_points();
        let unlimited = gmt_mtcg::generate_with_plan_budgeted(
            &w.function,
            &partition,
            plan.clone(),
            gmt_mtcg::QueueBudget::Unlimited,
        )
        .unwrap();
        let budgeted = gmt_mtcg::generate_with_plan_budgeted(
            &w.function,
            &partition,
            plan,
            gmt_mtcg::QueueBudget::Limit(16),
        )
        .unwrap();
        let mut machine = MachineConfig::default();
        machine.sa.num_queues = 16;
        let cycles = simulate(&budgeted.threads, &w.train_args, w.init, &machine)
            .map(|r| r.cycles)
            .unwrap_or(0);
        println!(
            "{:<14} {:>12} {:>10} {:>10} {:>12}",
            w.benchmark, points, unlimited.num_queues, budgeted.num_queues, cycles
        );
    }

    println!("\n==== Ablation: queue depth on the machine model (DSWP, quick scale) ====");
    println!("{:<14} {:>12} {:>12}", "benchmark", "depth 1", "depth 32");
    for w in gmt_workloads::catalog().into_iter().take(4) {
        let train = w.run_train().unwrap();
        let r = gmt_core::Parallelizer::new(gmt_core::Scheduler::dswp(2))
            .with_coco(CocoConfig::default())
            .parallelize(&w.function, &train.profile)
            .unwrap();
        let mut row = format!("{:<14}", w.benchmark);
        for depth in [1usize, 32] {
            let mut machine = MachineConfig::default().with_queue_depth(depth);
            if r.num_queues() as usize > machine.sa.num_queues {
                machine.sa.num_queues = r.num_queues() as usize;
            }
            let cycles = simulate(r.threads(), &w.train_args, w.init, &machine).unwrap().cycles;
            row.push_str(&format!(" {cycles:>12}"));
        }
        println!("{row}");
    }
}

fn main() {
    print_tables_once();
    let mut group = BenchGroup::new("coco_variants");
    group.sample_size(10);
    let w = gmt_workloads::by_benchmark("ks").unwrap();
    for (name, config) in [
        ("full", CocoConfig::default()),
        ("no_penalties", CocoConfig { control_penalties: false, ..CocoConfig::default() }),
        (
            "independent_memcut",
            CocoConfig { shared_memory_multicut: false, ..CocoConfig::default() },
        ),
    ] {
        group.bench(name, || black_box(dynamic_comm(&w, &config)));
    }
    group.finish();
}
