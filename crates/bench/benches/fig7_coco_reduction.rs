//! Figure 7: relative dynamic communication after COCO.
//!
//! Prints the figure's rows for both schedulers, then times the COCO
//! optimizer itself (the compile-time cost the paper discusses in §4).

use gmt_bench::print_once;
use gmt_core::CocoConfig;
use gmt_harness::{Scale, SchedulerKind};
use gmt_pdg::Pdg;
use gmt_testkit::BenchGroup;
use std::hint::black_box;

fn main() {
    print_once("Figure 7 (quick scale)", || {
        format!(
            "{}\n{}",
            gmt_harness::figures::figure7(SchedulerKind::Gremio, Scale::Quick),
            gmt_harness::figures::figure7(SchedulerKind::Dswp, Scale::Quick)
        )
    });

    let mut group = BenchGroup::new("coco_optimize");
    group.sample_size(20);
    for bench in ["ks", "183.equake", "458.sjeng"] {
        let w = gmt_workloads::by_benchmark(bench).unwrap();
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        let partition = gmt_sched::dswp::partition(
            &w.function,
            &pdg,
            &train.profile,
            &gmt_sched::dswp::DswpConfig::default(),
        ).unwrap();
        group.bench(bench, || {
            black_box(gmt_core::optimize(
                &w.function,
                &pdg,
                &partition,
                &train.profile,
                &CocoConfig::default(),
            ))
        });
    }
    group.finish();
}
