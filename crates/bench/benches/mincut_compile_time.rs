//! The §4 compile-time claim: "Our current implementation of COCO uses
//! Edmonds–Karp's min-cut algorithm... this algorithm performed well
//! enough not to significantly increase VELOCITY's compilation time.
//! For production compilers, faster min-cut algorithms can be employed."
//!
//! Times COCO end-to-end with Edmonds–Karp vs Dinic across the whole
//! catalog, plus the raw max-flow solvers on synthetic CFG-shaped
//! networks of growing size.

use gmt_core::CocoConfig;
use gmt_graph::{Capacity, FlowNetwork, MaxFlowAlgo, NodeId};
use gmt_pdg::Pdg;
use gmt_testkit::BenchGroup;
use std::hint::black_box;

/// A ladder-shaped network mimicking a CFG at instruction granularity:
/// a long spine with periodic diamond detours.
fn ladder(n: usize) -> (FlowNetwork, NodeId, NodeId) {
    let mut net = FlowNetwork::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| net.add_node()).collect();
    for w in nodes.windows(2) {
        net.add_arc(w[0], w[1], Capacity::finite(10));
    }
    for k in (0..n.saturating_sub(4)).step_by(4) {
        let d = net.add_node();
        net.add_arc(nodes[k], d, Capacity::finite(3));
        net.add_arc(d, nodes[k + 3], Capacity::finite(3));
    }
    (net, nodes[0], nodes[n - 1])
}

fn solvers() {
    let mut group = BenchGroup::new("maxflow_ladder");
    for size in [64usize, 256, 1024] {
        let (net, s, t) = ladder(size);
        for (name, algo) in [
            ("edmonds_karp", MaxFlowAlgo::EdmondsKarp),
            ("dinic", MaxFlowAlgo::Dinic),
        ] {
            group.bench(&format!("{name}/{size}"), || {
                black_box(net.min_cut_with(s, t, algo))
            });
        }
    }
    group.finish();
}

fn coco_compile_time() {
    let mut group = BenchGroup::new("coco_compile_time");
    group.sample_size(10);
    for (name, algo) in [
        ("edmonds_karp", MaxFlowAlgo::EdmondsKarp),
        ("dinic", MaxFlowAlgo::Dinic),
    ] {
        // Pre-compute inputs for all workloads once.
        let inputs: Vec<_> = gmt_workloads::catalog()
            .into_iter()
            .map(|w| {
                let train = w.run_train().unwrap();
                let pdg = Pdg::build(&w.function);
                let partition = gmt_sched::dswp::partition(
                    &w.function,
                    &pdg,
                    &train.profile,
                    &gmt_sched::dswp::DswpConfig::default(),
                ).unwrap();
                (w, train.profile, pdg, partition)
            })
            .collect();
        let config = CocoConfig { algo, ..CocoConfig::default() };
        group.bench(name, || {
            for (w, profile, pdg, partition) in &inputs {
                black_box(gmt_core::optimize(&w.function, pdg, partition, profile, &config));
            }
        });
    }
    group.finish();
}

fn main() {
    solvers();
    coco_compile_time();
}
