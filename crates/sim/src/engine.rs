//! The pre-decoded cycle-level simulation engine.
//!
//! [`simulate`] lowers the thread functions once into flat
//! [`DecodedProgram`] streams and then runs the same in-order,
//! multi-issue, stall-on-use machine model as
//! [`simulate_reference`](crate::simulate_reference) — without the
//! per-issue `Op` clone, the per-check `Op::uses` allocation, or the
//! block/instruction ID indirection of the reference path. The
//! `decoded_equivalence` integration tests hold the two engines
//! byte-identical (cycles, outputs, stall and hit statistics).

use crate::cache::{Hierarchy, HitLevel};
use crate::config::MachineConfig;
use crate::core::{CoreStats, StallReason};
use crate::sa::{PendingConsume, SyncArray};
use crate::sim::SimResult;
use crate::trace::{NoTrace, TraceEvent, TraceSink};
use gmt_ir::decoded::{DecodedFunction, DecodedOp, DecodedProgram, NO_USE};
use gmt_ir::interp::{BlockedOp, DeadlockInfo, ExecError, Memory, MemoryLayout};
use gmt_ir::{Function, Operand, QueueId, Reg};

/// Runs `threads` (one per core) to completion on the machine, through
/// the pre-decoded engine. Drop-in replacement for the reference
/// simulator — same results, same errors.
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate(
    threads: &[Function],
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
) -> Result<SimResult, ExecError> {
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    config.validate().map_err(ExecError::InvalidConfig)?;
    let program = DecodedProgram::decode(threads)?;
    simulate_decoded(&program, args, init, config)
}

/// [`simulate_decoded`] with a [`TraceSink`] observing every issue,
/// stall, and queue operation (see [`crate::trace`]). The sink is
/// statically dispatched; passing [`NoTrace`] is exactly
/// [`simulate_decoded`].
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate_decoded_traced<S: TraceSink>(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
    sink: &mut S,
) -> Result<SimResult, ExecError> {
    run_engine(program, args, init, config, sink)
}

/// [`simulate`] on an already-decoded program (what GREMIO arbitration
/// uses to avoid re-decoding candidate schedules).
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate_decoded(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
) -> Result<SimResult, ExecError> {
    run_engine(program, args, init, config, &mut NoTrace)
}

/// Decoded-stream twin of [`crate::sim::check_queue_ids`]: every
/// communication slot must target a queue the array actually has, so a
/// bad id is an [`ExecError::InvalidConfig`] at load time rather than a
/// mid-simulation [`ExecError::BadQueue`].
fn check_decoded_queue_ids(
    threads: &[DecodedFunction],
    num_queues: usize,
) -> Result<(), ExecError> {
    for d in threads {
        for pc in 0..d.num_slots() as u32 {
            let q = match d.op(pc) {
                DecodedOp::Produce { queue, .. }
                | DecodedOp::Consume { queue, .. }
                | DecodedOp::ProduceSync { queue }
                | DecodedOp::ConsumeSync { queue } => queue,
                _ => continue,
            };
            if q.index() >= num_queues {
                return Err(ExecError::InvalidConfig(format!(
                    "decoded slot {pc} targets queue {} but the synchronization array has \
                     {num_queues} queues",
                    q.0
                )));
            }
        }
    }
    Ok(())
}

fn run_engine<S: TraceSink>(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
    sink: &mut S,
) -> Result<SimResult, ExecError> {
    let threads = program.threads();
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    config.validate().map_err(ExecError::InvalidConfig)?;
    check_decoded_queue_ids(threads, config.sa.num_queues)?;
    let mut memory = Memory::for_layout(program.layout());
    init(program.layout(), &mut memory);

    let ncores = threads.len();
    let mut cores: Vec<DCore> = threads.iter().map(|d| DCore::new(d, args)).collect();
    for d in threads {
        d.check_args(args)?;
    }
    let mut hierarchy = Hierarchy::new(ncores, config);
    let mut sa = SyncArray::new(config.sa.num_queues, &config.sa.depths, config.sa.latency);
    let mut output = Vec::new();
    let mut return_value = None;
    let mut hits = [0u64; 4];

    let mut cycle: u64 = 0;
    let mut last_progress: u64 = 0;
    const NO_PROGRESS_WINDOW: u64 = 100_000;

    while cores.iter().any(|c| !c.finished) {
        if cycle >= config.max_cycles {
            return Err(ExecError::OutOfFuel);
        }
        if cycle - last_progress > NO_PROGRESS_WINDOW {
            return Err(ExecError::Deadlock(deadlock_info(&cores, threads, &sa, cycle)));
        }
        let mut sa_ports_left = config.sa.ports;
        // Rotate the start core for SA-port fairness.
        for k in 0..ncores {
            let ci = (k + cycle as usize % ncores) % ncores;
            let progressed = issue_core(
                ci,
                &mut cores,
                threads,
                &mut memory,
                &mut hierarchy,
                &mut sa,
                &mut sa_ports_left,
                &mut output,
                &mut return_value,
                &mut hits,
                config,
                cycle,
                sink,
            )?;
            if progressed {
                last_progress = cycle;
            }
        }
        cycle += 1;
    }

    let cycles = cores.iter().map(|c| c.stats.finished_at).max().unwrap_or(cycle);
    if S::ENABLED {
        sink.run_end(cycles);
    }
    Ok(SimResult {
        cycles,
        cores: cores.into_iter().map(|c| c.stats).collect(),
        output,
        return_value,
        hits_l1: hits[0],
        hits_l2: hits[1],
        hits_l3: hits[2],
        hits_mem: hits[3],
    })
}

fn sa_overflow() -> String {
    "synchronization array produce overran the configured queue depth".to_string()
}

/// Attributes a no-progress timeout to the first unfinished core whose
/// next operation is provably queue-blocked: a produce against a full
/// queue, a `consume.sync` against an empty one, or an operand still
/// pending on an outstanding consume delivery.
fn deadlock_info(
    cores: &[DCore],
    threads: &[DecodedFunction],
    sa: &SyncArray,
    now: u64,
) -> Option<DeadlockInfo> {
    for (ci, core) in cores.iter().enumerate() {
        if core.finished {
            continue;
        }
        let d = &threads[ci];
        let pc = core.pc;
        match d.op(pc) {
            DecodedOp::Produce { queue, .. } | DecodedOp::ProduceSync { queue }
                if queue.index() < sa.len() && !sa.can_produce(queue.index()) =>
            {
                return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ProduceFull });
            }
            DecodedOp::ConsumeSync { queue }
                if queue.index() < sa.len() && !sa.has_visible_entry(queue.index(), now) =>
            {
                return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ConsumeEmpty });
            }
            _ => {}
        }
        for &u in d.uses(pc).iter() {
            if u != NO_USE && core.ready[u as usize] == u64::MAX {
                if let Some(queue) = core.pending_queue[u as usize] {
                    return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ConsumeEmpty });
                }
            }
        }
    }
    None
}

/// Core state for the decoded engine: same microarchitectural model as
/// [`Core`](crate::Core), with the block/pos cursor replaced by a flat
/// pc and no per-core layout (leas are pre-folded at decode time).
struct DCore {
    regs: Vec<i64>,
    /// Cycle at which each register's value becomes usable;
    /// `u64::MAX` marks a pending (outstanding consume) register.
    ready: Vec<u64>,
    /// Monotonic write token per register, guarding late consume
    /// deliveries against intervening redefinitions.
    token: Vec<u64>,
    /// Queue each pending register's outstanding consume issued
    /// against (deadlock attribution only).
    pending_queue: Vec<Option<QueueId>>,
    next_token: u64,
    pc: u32,
    finished: bool,
    /// Loads still in flight (dest not yet ready); pruned on every
    /// [`DCore::outstanding_loads`] query so it stays O(outstanding).
    inflight_loads: Vec<u64>,
    fetch_stalled_until: u64,
    stats: CoreStats,
}

impl DCore {
    fn new(d: &DecodedFunction, args: &[i64]) -> DCore {
        let n = d.num_regs() as usize;
        let mut regs = vec![0i64; n];
        for (r, &v) in d.params().iter().zip(args) {
            regs[r.index()] = v;
        }
        DCore {
            regs,
            ready: vec![0; n],
            token: vec![0; n],
            pending_queue: vec![None; n],
            next_token: 1,
            pc: d.entry_pc(),
            finished: false,
            inflight_loads: Vec::new(),
            fetch_stalled_until: 0,
            stats: CoreStats::default(),
        }
    }

    #[inline]
    fn operands_ready(&self, uses: [u32; 2], now: u64) -> bool {
        uses.iter().all(|&u| u == NO_USE || self.ready[u as usize] <= now)
    }

    #[inline]
    fn operand(&self, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn cell_addr(&self, a: gmt_ir::AddrMode) -> i64 {
        self.regs[a.base.index()].wrapping_add(a.offset)
    }

    #[inline]
    fn byte_addr(&self, a: gmt_ir::AddrMode) -> i64 {
        self.cell_addr(a).wrapping_mul(8)
    }

    #[inline]
    fn write(&mut self, dst: Reg, value: i64, ready_at: u64) -> u64 {
        self.regs[dst.index()] = value;
        self.ready[dst.index()] = ready_at;
        self.pending_queue[dst.index()] = None;
        let t = self.next_token;
        self.next_token += 1;
        self.token[dst.index()] = t;
        t
    }

    #[inline]
    fn mark_pending(&mut self, dst: Reg, queue: QueueId) -> u64 {
        self.ready[dst.index()] = u64::MAX;
        self.pending_queue[dst.index()] = Some(queue);
        let t = self.next_token;
        self.next_token += 1;
        self.token[dst.index()] = t;
        t
    }

    #[inline]
    fn deliver(&mut self, dst: Reg, token: u64, value: i64, ready_at: u64) {
        if self.token[dst.index()] == token {
            self.regs[dst.index()] = value;
            self.ready[dst.index()] = ready_at;
            self.pending_queue[dst.index()] = None;
        }
    }

    #[inline]
    fn outstanding_loads(&mut self, now: u64) -> usize {
        self.inflight_loads.retain(|&t| t > now);
        self.inflight_loads.len()
    }
}

/// Issues as many instructions as possible on core `ci` this cycle;
/// returns whether at least one instruction issued. Mirrors the
/// reference `issue_core` decision-for-decision (stall order, stat
/// updates, issue-group breaks).
#[allow(clippy::too_many_arguments)]
fn issue_core<S: TraceSink>(
    ci: usize,
    cores: &mut [DCore],
    threads: &[DecodedFunction],
    memory: &mut Memory,
    hierarchy: &mut Hierarchy,
    sa: &mut SyncArray,
    sa_ports_left: &mut usize,
    output: &mut Vec<i64>,
    return_value: &mut Option<i64>,
    hits: &mut [u64; 4],
    config: &MachineConfig,
    now: u64,
    sink: &mut S,
) -> Result<bool, ExecError> {
    let d = &threads[ci];
    // Event emission is gated on the sink's compile-time switch, so
    // the NoTrace instantiation carries no tracing code at all.
    macro_rules! trace {
        ($ev:expr) => {
            if S::ENABLED {
                sink.event(&$ev);
            }
        };
    }
    if cores[ci].fetch_stalled_until > now {
        cores[ci].stats.record_stall(StallReason::Mispredict);
        trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::Mispredict, queue: None });
        return Ok(false);
    }
    let mut issued = 0usize;
    let mut used = [0usize; 4]; // alu, mem, fp, branch
    let limits = [config.alu_units, config.mem_ports, config.fp_units, config.branch_units];
    let mut progressed = false;

    while !cores[ci].finished && issued < config.issue_width {
        let pc = cores[ci].pc;
        let op = d.op(pc);
        let ui = d.unit(pc) as usize;
        if used[ui] >= limits[ui] {
            cores[ci].stats.record_stall(StallReason::Structural);
            trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::Structural, queue: None });
            break;
        }
        if !cores[ci].operands_ready(d.uses(pc), now) {
            cores[ci].stats.record_stall(StallReason::Operand);
            trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::Operand, queue: None });
            break;
        }
        // SA port check for communication instructions.
        if op.is_communication()
            && *sa_ports_left == 0 {
                cores[ci].stats.record_stall(StallReason::SaPort);
                trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::SaPort, queue: None });
                break;
            }
        let mut end_group = false;
        match op {
            DecodedOp::Const(dst, v) => {
                cores[ci].write(dst, v, now + 1);
                cores[ci].pc += 1;
            }
            DecodedOp::LeaAbs(dst, addr) => {
                cores[ci].write(dst, addr, now + 1);
                cores[ci].pc += 1;
            }
            DecodedOp::Bin(b, dst, x, y) => {
                let v = b.eval(cores[ci].operand(x), cores[ci].operand(y));
                let lat = d.latency(pc) as u64;
                cores[ci].write(dst, v, now + lat);
                cores[ci].pc += 1;
            }
            DecodedOp::Un(u, dst, x) => {
                let v = u.eval(cores[ci].operand(x));
                cores[ci].write(dst, v, now + 1);
                cores[ci].pc += 1;
            }
            DecodedOp::Load(dst, a) => {
                if cores[ci].outstanding_loads(now) >= 16 {
                    cores[ci].stats.record_stall(StallReason::LoadLimit);
                    trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::LoadLimit, queue: None });
                    break;
                }
                let cell = cores[ci].cell_addr(a);
                let v = memory.read(cell)?;
                let (lat, level) = hierarchy.load(ci, cores[ci].byte_addr(a) as u64);
                hits[match level {
                    HitLevel::L1 => 0,
                    HitLevel::L2 => 1,
                    HitLevel::L3 => 2,
                    HitLevel::Memory => 3,
                }] += 1;
                let ready = now + lat;
                cores[ci].write(dst, v, ready);
                cores[ci].inflight_loads.push(ready);
                cores[ci].pc += 1;
            }
            DecodedOp::Store(a, v) => {
                let cell = cores[ci].cell_addr(a);
                let value = cores[ci].operand(v);
                memory.write(cell, value)?;
                let _ = hierarchy.store(ci, cores[ci].byte_addr(a) as u64);
                cores[ci].pc += 1;
            }
            DecodedOp::Output(v) => {
                output.push(cores[ci].operand(v));
                cores[ci].pc += 1;
            }
            DecodedOp::Produce { queue, value } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                if !sa.can_produce(queue.index()) {
                    cores[ci].stats.record_stall(StallReason::QueueFull);
                    trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::QueueFull, queue: Some(queue.0) });
                    break;
                }
                *sa_ports_left -= 1;
                let v = cores[ci].operand(value);
                match sa.produce(queue.index(), v, now) {
                    Ok(Some(del)) => {
                        if let Some(dst) = del.pending.dst {
                            cores[del.pending.core]
                                .deliver(dst, del.pending.token, del.value, del.ready_at);
                        }
                    }
                    Ok(None) => {}
                    // `can_produce` held above; losing the value here
                    // would corrupt the run, so refuse to continue.
                    Err(_) => return Err(ExecError::InvalidConfig(sa_overflow())),
                }
                trace!(TraceEvent::Issue { cycle: now, core: ci, src: d.src(pc) });
                trace!(TraceEvent::Produce { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()) });
                cores[ci].stats.communication += 1;
                cores[ci].pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::Consume { dst, queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                *sa_ports_left -= 1;
                let token = cores[ci].mark_pending(dst, queue);
                let pending = PendingConsume { core: ci, dst: Some(dst), token };
                let mut deferred = true;
                if let Ok((v, ready)) = sa.consume(queue.index(), now, pending) {
                    cores[ci].deliver(dst, token, v, ready);
                    deferred = false;
                }
                trace!(TraceEvent::Issue { cycle: now, core: ci, src: d.src(pc) });
                trace!(TraceEvent::Consume { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()), deferred });
                cores[ci].stats.communication += 1;
                cores[ci].pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::ProduceSync { queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                if !sa.can_produce(queue.index()) {
                    cores[ci].stats.record_stall(StallReason::QueueFull);
                    trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::QueueFull, queue: Some(queue.0) });
                    break;
                }
                *sa_ports_left -= 1;
                if sa.produce(queue.index(), 1, now).is_err() {
                    return Err(ExecError::InvalidConfig(sa_overflow()));
                }
                trace!(TraceEvent::Issue { cycle: now, core: ci, src: d.src(pc) });
                trace!(TraceEvent::Produce { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()) });
                cores[ci].stats.synchronization += 1;
                cores[ci].pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::ConsumeSync { queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                // Acquire semantics: block issue until the token is
                // visible.
                if !sa.has_visible_entry(queue.index(), now) {
                    cores[ci].stats.record_stall(StallReason::QueueEmpty);
                    trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::QueueEmpty, queue: Some(queue.0) });
                    break;
                }
                *sa_ports_left -= 1;
                // Gated on `has_visible_entry` above; an empty pop is
                // harmless but counts as no token consumed.
                let _ = sa.pop_token(queue.index(), now);
                trace!(TraceEvent::Issue { cycle: now, core: ci, src: d.src(pc) });
                trace!(TraceEvent::Consume { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()), deferred: false });
                cores[ci].stats.synchronization += 1;
                cores[ci].pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::Branch { cond, then_pc, else_pc, backward } => {
                let taken = cores[ci].regs[cond.index()] != 0;
                // Static backward-taken/forward-not-taken prediction:
                // predict taken iff the taken target does not move
                // forward in block order (a loop back edge) — folded
                // into `backward` at decode time.
                if let crate::config::BranchModel::StaticBtfn { penalty } = config.branch_model {
                    let predict_taken = backward;
                    if predict_taken != taken {
                        cores[ci].stats.mispredicts += 1;
                        cores[ci].fetch_stalled_until = now + penalty;
                    }
                }
                cores[ci].pc = if taken { then_pc } else { else_pc };
                end_group = true;
            }
            DecodedOp::Jump(t) => {
                cores[ci].pc = t;
                end_group = true;
            }
            DecodedOp::Ret(v) => {
                if let Some(v) = v {
                    *return_value = Some(cores[ci].operand(v));
                }
                cores[ci].finished = true;
                cores[ci].stats.finished_at = now + 1;
                trace!(TraceEvent::Finish { cycle: now, core: ci });
                end_group = true;
            }
            DecodedOp::Nop => {
                cores[ci].pc += 1;
            }
            DecodedOp::Unterminated => panic!("verified function"),
        }
        trace!(TraceEvent::Issue { cycle: now, core: ci, src: d.src(pc) });
        cores[ci].stats.computation += 1;
        issued += 1;
        used[ui] += 1;
        progressed = true;
        if end_group {
            break; // simple front end: nothing issues past a taken redirect
        }
    }
    Ok(progressed)
}
