//! The pre-decoded cycle-level simulation engine.
//!
//! [`simulate`] lowers the thread functions once into flat
//! [`DecodedProgram`] streams and then runs the same in-order,
//! multi-issue, stall-on-use machine model as
//! [`simulate_reference`](crate::simulate_reference) — without the
//! per-issue `Op` clone, the per-check `Op::uses` allocation, or the
//! block/instruction ID indirection of the reference path. The
//! `decoded_equivalence` integration tests hold the two engines
//! byte-identical (cycles, outputs, stall and hit statistics).
//!
//! # Event-driven stall fast-forward
//!
//! Queue-coupled executions spend most of their simulated cycles in
//! ticks where *no* core can issue: queue-empty/queue-full waits at
//! DSWP's depth-32 configurations, mispredict refills, and load-miss
//! latencies. On such a cycle the engine computes, per core, the
//! earliest cycle it could possibly issue again — the mispredict
//! refill deadline, the scoreboard's operand-ready times, in-flight
//! load completion, or the synchronization array's next token
//! visibility ([`crate::SyncArray::next_visible_at`]) — and jumps
//! straight to the minimum wakeup, bulk-crediting every skipped cycle
//! to the same per-reason stall counter the per-cycle engine would
//! have ticked. Cores blocked only on *peer* progress (a full queue, a
//! truly empty queue, an operand pending on an outstanding consume)
//! have no self-wakeup; when every core is in that state nothing is
//! skipped and the existing deadlock window fires unchanged. The jump
//! target is clamped to the deadlock and `max_cycles` boundaries, so
//! results — cycles, [`CoreStats`], traces, and errors — stay
//! byte-identical to per-cycle execution ([`SimOptions::fast_forward`]
//! = false, or `GMT_SIM_SKIP=0`, is the A/B escape hatch).
//!
//! The fast-forward also memoizes *individual* stalled cores: when a
//! core's recorded stall has a **stable** self-wakeup — one no peer
//! action can move earlier (mispredict refill, operand readiness,
//! load completion, or an already-visible token on a queue with a
//! single consumer) — its whole stall span is credited up front and
//! the core sleeps until that cycle, skipping its re-evaluation on
//! every tick in between. This is what makes mixed cycles cheap: one
//! core issuing no longer forces full stall re-checks of its blocked
//! peers. Sleeping is transparent to the global jump (a sleeper's
//! wakeup is exactly what `skip_target` would compute, and the bulk
//! credit loop skips cores already credited), so the byte-identity
//! guarantee is unchanged.

use crate::cache::{Hierarchy, HitLevel};
use crate::config::MachineConfig;
use crate::core::{CoreStats, StallReason};
use crate::sa::{PendingConsume, SyncArray};
use crate::sim::SimResult;
use crate::trace::{Arrival, NoTrace, TraceEvent, TraceSink};
use gmt_ir::decoded::{DecodedFunction, DecodedOp, DecodedProgram, NO_USE};
use gmt_ir::interp::{BlockedOp, DeadlockInfo, ExecError, Memory, MemoryLayout};
use gmt_ir::{Function, Operand, QueueId, Reg};

/// Engine execution knobs, orthogonal to the machine description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimOptions {
    /// Event-driven stall fast-forward: on an all-stall cycle, jump to
    /// the earliest core wakeup instead of ticking through the dead
    /// window (see the [module docs](crate::engine)). On by default;
    /// results are byte-identical either way — turn off only for A/B
    /// debugging of the engine itself.
    pub fast_forward: bool,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions { fast_forward: true }
    }
}

impl SimOptions {
    /// The defaults, overridden by the environment: `GMT_SIM_SKIP=0`
    /// disables the fast-forward (any other value, or unset, leaves it
    /// on). The entry points without an explicit `SimOptions` argument
    /// read this once per run.
    pub fn from_env() -> SimOptions {
        let fast_forward = std::env::var("GMT_SIM_SKIP").map_or(true, |v| v != "0");
        SimOptions { fast_forward }
    }
}

/// Runs `threads` (one per core) to completion on the machine, through
/// the pre-decoded engine. Drop-in replacement for the reference
/// simulator — same results, same errors.
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate(
    threads: &[Function],
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
) -> Result<SimResult, ExecError> {
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    config.validate().map_err(ExecError::InvalidConfig)?;
    let program = DecodedProgram::decode(threads)?;
    simulate_decoded(&program, args, init, config)
}

/// [`simulate_decoded`] with a [`TraceSink`] observing every issue,
/// stall, and queue operation (see [`crate::trace`]). The sink is
/// statically dispatched; passing [`NoTrace`] is exactly
/// [`simulate_decoded`].
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate_decoded_traced<S: TraceSink>(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
    sink: &mut S,
) -> Result<SimResult, ExecError> {
    run_engine(program, args, init, config, sink, SimOptions::from_env())
}

/// [`simulate_decoded_traced`] with explicit [`SimOptions`] instead of
/// the environment default — the race-free way for tests and benches
/// to A/B the fast-forward in one process.
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate_decoded_traced_opts<S: TraceSink>(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
    sink: &mut S,
    opts: SimOptions,
) -> Result<SimResult, ExecError> {
    run_engine(program, args, init, config, sink, opts)
}

/// [`simulate`] on an already-decoded program (what GREMIO arbitration
/// uses to avoid re-decoding candidate schedules).
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate_decoded(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
) -> Result<SimResult, ExecError> {
    run_engine(program, args, init, config, &mut NoTrace, SimOptions::from_env())
}

/// [`simulate_decoded`] with explicit [`SimOptions`] instead of the
/// environment default.
///
/// # Errors
///
/// See [`simulate_reference`](crate::simulate_reference).
pub fn simulate_decoded_opts(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
    opts: SimOptions,
) -> Result<SimResult, ExecError> {
    run_engine(program, args, init, config, &mut NoTrace, opts)
}

/// Decoded-stream twin of [`crate::sim::check_queue_ids`]: every
/// communication slot must target a queue the array actually has, so a
/// bad id is an [`ExecError::InvalidConfig`] at load time rather than a
/// mid-simulation [`ExecError::BadQueue`].
fn check_decoded_queue_ids(
    threads: &[DecodedFunction],
    num_queues: usize,
) -> Result<(), ExecError> {
    for d in threads {
        for pc in 0..d.num_slots() as u32 {
            let q = match d.op(pc) {
                DecodedOp::Produce { queue, .. }
                | DecodedOp::Consume { queue, .. }
                | DecodedOp::ProduceSync { queue }
                | DecodedOp::ConsumeSync { queue } => queue,
                _ => continue,
            };
            if q.index() >= num_queues {
                return Err(ExecError::InvalidConfig(format!(
                    "decoded slot {pc} targets queue {} but the synchronization array has \
                     {num_queues} queues",
                    q.0
                )));
            }
        }
    }
    Ok(())
}

fn run_engine<S: TraceSink>(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
    sink: &mut S,
    opts: SimOptions,
) -> Result<SimResult, ExecError> {
    let threads = program.threads();
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    config.validate().map_err(ExecError::InvalidConfig)?;
    check_decoded_queue_ids(threads, config.sa.num_queues)?;
    let mut memory = Memory::for_layout(program.layout())?;
    init(program.layout(), &mut memory);

    let ncores = threads.len();
    let mut cores: Vec<DCore> = threads.iter().map(|d| DCore::new(d, args)).collect();
    for d in threads {
        d.check_args(args)?;
    }
    let mut hierarchy = Hierarchy::new(ncores, config);
    let mut sa = SyncArray::new(config.sa.num_queues, &config.sa.depths, config.sa.latency);
    let mut output = Vec::new();
    let mut return_value = None;
    let mut hits = [0u64; 4];

    let mut cycle: u64 = 0;
    let mut last_progress: u64 = 0;
    let mut engine_steps: u64 = 0;
    let mut skipped_cycles: u64 = 0;
    // What blocked each core on the cycle just evaluated (reason +
    // queue, exactly as recorded in its stall counters) — the input to
    // the fast-forward's wakeup computation.
    let mut stalls: Vec<Option<(StallReason, Option<QueueId>)>> = vec![None; ncores];
    // Per-core stall memoization (fast-forward only): a core whose
    // recorded stall has a *stable* self-wakeup — one no peer action
    // can move earlier — would replay the identical stall on every
    // cycle before that wakeup, so its whole span is credited up front
    // and the core sleeps until `asleep_until[ci]` while its peers keep
    // issuing. Stability per reason: Mispredict/Operand/LoadLimit read
    // only the core's own state (pending-consume operands, which peers
    // *can* deliver, are excluded by `self_wakeup`); QueueEmpty trusts
    // the FIFO front entry's fixed visibility cycle, which holds only
    // when no other core can pop that front mid-sleep.
    let mut asleep_until: Vec<u64> = vec![0; ncores];
    let single_consumer = single_consumer_queues(threads, config.sa.num_queues);
    // Cross-core consume deliveries handed back by `issue_core` (which
    // borrows only its own core) — drained after every call.
    let mut deliveries: Vec<CrossDelivery> = Vec::new();

    while cores.iter().any(|c| !c.finished) {
        if cycle >= config.max_cycles {
            return Err(ExecError::OutOfFuel);
        }
        if cycle - last_progress > NO_PROGRESS_WINDOW {
            return Err(ExecError::Deadlock(deadlock_info(&cores, threads, &sa, cycle)));
        }
        engine_steps += 1;
        let mut sa_ports_left = config.sa.ports;
        let mut any_progress = false;
        // Rotate the start core for SA-port fairness.
        for k in 0..ncores {
            let ci = (k + cycle as usize % ncores) % ncores;
            // A sleeping core replays `stalls[ci]` (already credited
            // through its wakeup) without re-evaluation; it issues
            // nothing and touches no shared state, exactly like the
            // per-cycle engine's early-out would.
            if asleep_until[ci] > cycle {
                continue;
            }
            let outcome = issue_core(
                ci,
                &mut cores[ci],
                &mut deliveries,
                threads,
                &mut memory,
                &mut hierarchy,
                &mut sa,
                &mut sa_ports_left,
                &mut output,
                &mut return_value,
                &mut hits,
                config,
                cycle,
                sink,
            )?;
            for del in deliveries.drain(..) {
                cores[del.core].deliver(del.dst, del.token, del.value, del.ready_at);
            }
            if outcome.progressed {
                last_progress = cycle;
                any_progress = true;
            }
            stalls[ci] = outcome.stall;
            // Memoize the stall when its wakeup is stable (see
            // `asleep_until`): credit the whole span now and skip
            // re-evaluating this core until the wakeup. Cycles that
            // also issued are left alone — their trailing stall is
            // usually a one-cycle stall-on-use bubble, so attempting
            // to memoize there would tax every issuing cycle for
            // nothing; a window worth sleeping through re-records the
            // same stall on the next, progress-free evaluation.
            if opts.fast_forward && !outcome.progressed && !cores[ci].finished {
                if let Some((reason, queue)) = outcome.stall {
                    let stable = match reason {
                        StallReason::QueueEmpty => {
                            queue.is_some_and(|q| single_consumer[q.index()])
                        }
                        _ => true, // remaining reasons are per-core state only
                    };
                    if stable {
                        if let Some(w) =
                            self_wakeup(&cores[ci], &threads[ci], &sa, reason, queue)
                        {
                            debug_assert!(w > cycle, "core {ci}: stale self-wakeup {w} at {cycle}");
                            if w > cycle + 1 {
                                cores[ci].stats.record_stalls(reason, w - cycle - 1);
                                if S::ENABLED {
                                    sink.event(&TraceEvent::StallSpan {
                                        from: cycle + 1,
                                        until: w,
                                        core: ci,
                                        reason,
                                        queue: queue.map(|q| q.0),
                                    });
                                }
                                asleep_until[ci] = w;
                            }
                        }
                    }
                }
            }
        }
        if opts.fast_forward && !any_progress {
            if let Some(target) =
                skip_target(&cores, threads, &sa, &stalls, cycle, last_progress, config)
            {
                // Every cycle in (cycle, target) would replay exactly
                // the stalls just recorded: nothing issued anywhere, so
                // no queue, scoreboard, or memory state can change
                // before the earliest wakeup. Credit the whole window
                // at once and resume at the wakeup (or at the deadlock
                // / fuel boundary, whichever comes first — the loop-top
                // checks then fire exactly as the per-cycle engine's
                // would).
                let span = target - cycle - 1;
                for (ci, core) in cores.iter_mut().enumerate() {
                    if core.finished {
                        continue;
                    }
                    // A sleeping core was already credited through its
                    // wakeup when it was memoized, and the jump target
                    // cannot pass that wakeup (`skip_target` minimizes
                    // over the same stable per-core wakeups) — crediting
                    // it again here would double-count the window.
                    if asleep_until[ci] > cycle {
                        debug_assert!(target <= asleep_until[ci]);
                        continue;
                    }
                    // `skip_target` returned Some, so every unfinished
                    // core has a recorded stall.
                    if let Some((reason, queue)) = stalls[ci] {
                        core.stats.record_stalls(reason, span);
                        if S::ENABLED {
                            sink.event(&TraceEvent::StallSpan {
                                from: cycle + 1,
                                until: target,
                                core: ci,
                                reason,
                                queue: queue.map(|q| q.0),
                            });
                        }
                    }
                }
                skipped_cycles += span;
                cycle = target;
                continue;
            }
        }
        cycle += 1;
    }

    let cycles = cores.iter().map(|c| c.stats.finished_at).max().unwrap_or(cycle);
    if S::ENABLED {
        sink.run_end(cycles);
    }
    Ok(SimResult {
        cycles,
        cores: cores.into_iter().map(|c| c.stats).collect(),
        output,
        return_value,
        hits_l1: hits[0],
        hits_l2: hits[1],
        hits_l3: hits[2],
        hits_mem: hits[3],
        engine_steps,
        skipped_cycles,
    })
}

const NO_PROGRESS_WINDOW: u64 = 100_000;

/// Which queues are consumed by at most one core. A core sleeping on a
/// `QueueEmpty` stall trusts the front entry's visibility cycle to stay
/// put; that holds only when no *other* core can pop the front out from
/// under it mid-sleep. MTCG queues are single-consumer by construction,
/// but the engine must stay correct for arbitrary decoded programs, so
/// the property is checked, not assumed.
fn single_consumer_queues(threads: &[DecodedFunction], num_queues: usize) -> Vec<bool> {
    let mut consumer: Vec<Option<usize>> = vec![None; num_queues];
    let mut single = vec![true; num_queues];
    for (ci, d) in threads.iter().enumerate() {
        for pc in 0..d.num_slots() as u32 {
            let q = match d.op(pc) {
                DecodedOp::Consume { queue, .. } | DecodedOp::ConsumeSync { queue } => queue,
                _ => continue,
            };
            let qi = q.index();
            if qi < num_queues {
                match consumer[qi] {
                    None => consumer[qi] = Some(ci),
                    Some(owner) if owner == ci => {}
                    Some(_) => single[qi] = false,
                }
            }
        }
    }
    single
}

/// The earliest cycle at which `core`, stalled at `now` for `reason`,
/// could possibly issue again *without any peer action* — or `None`
/// when no such self-wakeup exists (the stall is peer-driven or the
/// wakeup is unbounded). Shared by the global all-stall fast-forward
/// and the per-core stall memoization; both require the returned cycle
/// to be strictly after `now`.
///
/// Per-reason wakeups:
///
/// - `Mispredict` — the refill deadline `fetch_stalled_until`;
/// - `Operand` — the latest scoreboard ready-time among the stalled
///   instruction's uses, unless one is pending on an outstanding
///   consume (`u64::MAX`): that delivery needs a peer's produce;
/// - `QueueEmpty` — the in-flight front token's visibility cycle
///   ([`SyncArray::next_visible_at`]); an empty queue has none;
/// - `LoadLimit` — the earliest in-flight load completion (the set was
///   pruned to `> now` when the stall was recorded);
/// - `QueueFull` — none: only a peer's consume frees an entry.
///   `Structural`/`SaPort` cannot be recorded on an all-stall cycle
///   (no issue consumed a unit or port before the stall) and depend on
///   per-cycle shared state anyway, so they never self-wake.
fn self_wakeup(
    core: &DCore,
    d: &DecodedFunction,
    sa: &SyncArray,
    reason: StallReason,
    queue: Option<QueueId>,
) -> Option<u64> {
    match reason {
        StallReason::Mispredict => Some(core.fetch_stalled_until),
        StallReason::Operand => {
            let mut latest = 0u64;
            for &u in d.uses(core.pc).iter() {
                if u != NO_USE {
                    latest = latest.max(core.ready[u as usize]);
                }
            }
            (latest != u64::MAX).then_some(latest)
        }
        StallReason::QueueEmpty => queue.and_then(|q| sa.next_visible_at(q.index())),
        StallReason::LoadLimit => core.inflight_loads.iter().copied().min(),
        StallReason::QueueFull | StallReason::Structural | StallReason::SaPort => None,
    }
}

/// Computes the fast-forward target after an all-stall cycle at `now`:
/// the minimum over every unfinished core's earliest possible next
/// issue cycle ([`self_wakeup`]), clamped to the deadlock-window and
/// `max_cycles` boundaries. Returns `None` when skipping is impossible
/// or useless — some core's stall went unrecorded (defensive), every
/// core waits only on peer progress (no self-wakeup exists at all), or
/// the target is within one tick. Queues popped by several cores need
/// no special case here: nothing can be consumed during an all-stall
/// window, so every front entry stays put until the jump target.
fn skip_target(
    cores: &[DCore],
    threads: &[DecodedFunction],
    sa: &SyncArray,
    stalls: &[Option<(StallReason, Option<QueueId>)>],
    now: u64,
    last_progress: u64,
    config: &MachineConfig,
) -> Option<u64> {
    let mut min_wakeup: Option<u64> = None;
    for (ci, core) in cores.iter().enumerate() {
        if core.finished {
            continue;
        }
        // An unfinished, unprogressed core always records exactly one
        // stall; if that invariant ever broke, skipping would
        // under-credit it — refuse instead.
        let (reason, queue) = stalls[ci]?;
        if let Some(w) = self_wakeup(core, &threads[ci], sa, reason, queue) {
            debug_assert!(w > now, "core {ci}: self-wakeup {w} not after stall cycle {now}");
            if w <= now {
                return None; // defensive: never skip on a broken wakeup
            }
            min_wakeup = Some(min_wakeup.map_or(w, |m| m.min(w)));
        }
    }
    let target = min_wakeup?
        .min(last_progress + NO_PROGRESS_WINDOW + 1)
        .min(config.max_cycles);
    (target > now + 1).then_some(target)
}

fn sa_overflow() -> String {
    "synchronization array produce overran the configured queue depth".to_string()
}

/// A produce's delivery to an outstanding consume on a *different*
/// core, handed back to the engine loop because [`issue_core`] holds a
/// mutable borrow of its own core only. Applied immediately after the
/// producing core's call returns — before any other core is evaluated
/// that cycle — which is observably the same instant as the in-place
/// delivery the reference engine performs.
struct CrossDelivery {
    core: usize,
    dst: Reg,
    token: u64,
    value: i64,
    ready_at: u64,
}

/// Attributes a no-progress timeout to the first unfinished core whose
/// next operation is provably queue-blocked: a produce against a full
/// queue, a `consume.sync` against an empty one, or an operand still
/// pending on an outstanding consume delivery.
fn deadlock_info(
    cores: &[DCore],
    threads: &[DecodedFunction],
    sa: &SyncArray,
    now: u64,
) -> Option<DeadlockInfo> {
    for (ci, core) in cores.iter().enumerate() {
        if core.finished {
            continue;
        }
        let d = &threads[ci];
        let pc = core.pc;
        match d.op(pc) {
            DecodedOp::Produce { queue, .. } | DecodedOp::ProduceSync { queue }
                if queue.index() < sa.len() && !sa.can_produce(queue.index()) =>
            {
                return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ProduceFull });
            }
            DecodedOp::ConsumeSync { queue }
                if queue.index() < sa.len() && !sa.has_visible_entry(queue.index(), now) =>
            {
                return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ConsumeEmpty });
            }
            _ => {}
        }
        for &u in d.uses(pc).iter() {
            if u != NO_USE && core.ready[u as usize] == u64::MAX {
                if let Some(queue) = core.pending_queue[u as usize] {
                    return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ConsumeEmpty });
                }
            }
        }
    }
    None
}

/// Core state for the decoded engine: same microarchitectural model as
/// [`Core`](crate::Core), with the block/pos cursor replaced by a flat
/// pc and no per-core layout (leas are pre-folded at decode time).
struct DCore {
    regs: Vec<i64>,
    /// Cycle at which each register's value becomes usable;
    /// `u64::MAX` marks a pending (outstanding consume) register.
    ready: Vec<u64>,
    /// Monotonic write token per register, guarding late consume
    /// deliveries against intervening redefinitions.
    token: Vec<u64>,
    /// Queue each pending register's outstanding consume issued
    /// against (deadlock attribution only).
    pending_queue: Vec<Option<QueueId>>,
    next_token: u64,
    pc: u32,
    finished: bool,
    /// Loads still in flight (dest not yet ready); pruned on every
    /// [`DCore::outstanding_loads`] query so it stays O(outstanding).
    inflight_loads: Vec<u64>,
    fetch_stalled_until: u64,
    stats: CoreStats,
    /// Per-core issue index of the last instruction to write each
    /// register (`u64::MAX` = never written), feeding [`Arrival::Data`]
    /// edges. Trace-only: maintained when a sink is attached.
    writer: Vec<u64>,
    /// Instructions issued so far on this core (trace-only).
    issued_nodes: u64,
    /// The stall most recently recorded for this core, consumed by the
    /// next issue to derive its last-arrival edge (trace-only).
    last_stall: Option<(StallReason, Option<QueueId>)>,
}

impl DCore {
    fn new(d: &DecodedFunction, args: &[i64]) -> DCore {
        let n = d.num_regs() as usize;
        let mut regs = vec![0i64; n];
        for (r, &v) in d.params().iter().zip(args) {
            regs[r.index()] = v;
        }
        DCore {
            regs,
            ready: vec![0; n],
            token: vec![0; n],
            pending_queue: vec![None; n],
            next_token: 1,
            pc: d.entry_pc(),
            finished: false,
            inflight_loads: Vec::new(),
            fetch_stalled_until: 0,
            stats: CoreStats::default(),
            writer: vec![u64::MAX; n],
            issued_nodes: 0,
            last_stall: None,
        }
    }

    #[inline]
    fn operands_ready(&self, uses: [u32; 2], now: u64) -> bool {
        uses.iter().all(|&u| u == NO_USE || self.ready[u as usize] <= now)
    }

    #[inline]
    fn operand(&self, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn cell_addr(&self, a: gmt_ir::AddrMode) -> i64 {
        self.regs[a.base.index()].wrapping_add(a.offset)
    }

    #[inline]
    fn byte_addr(&self, a: gmt_ir::AddrMode) -> i64 {
        self.cell_addr(a).wrapping_mul(8)
    }

    #[inline]
    fn write(&mut self, dst: Reg, value: i64, ready_at: u64) -> u64 {
        self.regs[dst.index()] = value;
        self.ready[dst.index()] = ready_at;
        self.pending_queue[dst.index()] = None;
        let t = self.next_token;
        self.next_token += 1;
        self.token[dst.index()] = t;
        t
    }

    #[inline]
    fn mark_pending(&mut self, dst: Reg, queue: QueueId) -> u64 {
        self.ready[dst.index()] = u64::MAX;
        self.pending_queue[dst.index()] = Some(queue);
        let t = self.next_token;
        self.next_token += 1;
        self.token[dst.index()] = t;
        t
    }

    #[inline]
    fn deliver(&mut self, dst: Reg, token: u64, value: i64, ready_at: u64) {
        if self.token[dst.index()] == token {
            self.regs[dst.index()] = value;
            self.ready[dst.index()] = ready_at;
            self.pending_queue[dst.index()] = None;
        }
    }

    #[inline]
    fn outstanding_loads(&mut self, now: u64) -> usize {
        self.inflight_loads.retain(|&t| t > now);
        self.inflight_loads.len()
    }
}

/// The register an op defines, if any — the scoreboard entry the
/// tracing layer tags with the writer's issue index.
#[inline]
fn def_of(op: DecodedOp) -> Option<Reg> {
    match op {
        DecodedOp::Const(dst, _)
        | DecodedOp::LeaAbs(dst, _)
        | DecodedOp::Bin(_, dst, _, _)
        | DecodedOp::Un(_, dst, _)
        | DecodedOp::Load(dst, _)
        | DecodedOp::Consume { dst, .. } => Some(dst),
        _ => None,
    }
}

/// Converts the stall recorded for the instruction at `pc` — if any —
/// into its last-arrival edge, consuming it. Called right before the
/// op executes, so for an operand stall the scoreboard still holds the
/// pre-issue ready times and writer tags of the uses (a def may alias
/// one of its own uses). No recorded stall means the in-order front
/// end was the only constraint.
#[inline]
fn take_arrival(core: &mut DCore, d: &DecodedFunction, pc: u32) -> Arrival {
    match core.last_stall.take() {
        None => Arrival::InOrder,
        Some((StallReason::Operand, _)) => {
            // The binding operand is the one that became ready last.
            let mut best: Option<(u64, u64)> = None;
            for &u in d.uses(pc).iter() {
                if u != NO_USE {
                    let ready = core.ready[u as usize];
                    if best.map_or(true, |(r, _)| ready > r) {
                        best = Some((ready, core.writer[u as usize]));
                    }
                }
            }
            match best {
                Some((_, w)) if w != u64::MAX => Arrival::Data { writer: w },
                _ => Arrival::InOrder,
            }
        }
        Some((StallReason::QueueEmpty, q)) => {
            q.map_or(Arrival::InOrder, |q| Arrival::QueueVisible { queue: q.0 })
        }
        Some((StallReason::QueueFull, q)) => {
            q.map_or(Arrival::InOrder, |q| Arrival::QueueSpace { queue: q.0 })
        }
        Some((StallReason::Mispredict, _)) => Arrival::Refill,
        Some((r, _)) => Arrival::Resource(r),
    }
}

/// What one core did in one cycle: whether anything issued, and — when
/// the issue group ended on a stall — the reason and queue that were
/// recorded, exactly as written to the stall counters and trace. On an
/// all-stall cycle (no core progressed) the `stall` fields are the
/// fast-forward's wakeup inputs.
#[derive(Clone, Copy, Debug)]
struct IssueOutcome {
    progressed: bool,
    stall: Option<(StallReason, Option<QueueId>)>,
}

/// Issues as many instructions as possible on core `ci` this cycle;
/// returns whether at least one instruction issued and what (if
/// anything) ended the issue group. Mirrors the reference `issue_core`
/// decision-for-decision (stall order, stat updates, issue-group
/// breaks).
#[allow(clippy::too_many_arguments)]
fn issue_core<S: TraceSink>(
    ci: usize,
    core: &mut DCore,
    deliveries: &mut Vec<CrossDelivery>,
    threads: &[DecodedFunction],
    memory: &mut Memory,
    hierarchy: &mut Hierarchy,
    sa: &mut SyncArray,
    sa_ports_left: &mut usize,
    output: &mut Vec<i64>,
    return_value: &mut Option<i64>,
    hits: &mut [u64; 4],
    config: &MachineConfig,
    now: u64,
    sink: &mut S,
) -> Result<IssueOutcome, ExecError> {
    let d = &threads[ci];
    // Event emission is gated on the sink's compile-time switch, so
    // the NoTrace instantiation carries no tracing code at all.
    macro_rules! trace {
        ($ev:expr) => {
            if S::ENABLED {
                sink.event(&$ev);
            }
        };
    }
    if core.fetch_stalled_until > now {
        core.stats.record_stall(StallReason::Mispredict);
        trace!(TraceEvent::Stall { cycle: now, core: ci, reason: StallReason::Mispredict, queue: None });
        if S::ENABLED {
            core.last_stall = Some((StallReason::Mispredict, None));
        }
        return Ok(IssueOutcome {
            progressed: false,
            stall: Some((StallReason::Mispredict, None)),
        });
    }
    let mut issued = 0usize;
    let mut used = [0usize; 4]; // alu, mem, fp, branch
    let limits = [config.alu_units, config.mem_ports, config.fp_units, config.branch_units];
    let mut progressed = false;
    let mut stall: Option<(StallReason, Option<QueueId>)> = None;
    // Records a stall (counter + trace) and remembers it for the
    // outcome — every `break` below goes through this. The traced
    // engine also keeps it as the pending last-arrival edge of the
    // instruction that eventually issues at this pc.
    macro_rules! stall {
        ($reason:expr, $queue:expr) => {{
            let (r, q): (StallReason, Option<QueueId>) = ($reason, $queue);
            core.stats.record_stall(r);
            trace!(TraceEvent::Stall { cycle: now, core: ci, reason: r, queue: q.map(|q| q.0) });
            if S::ENABLED {
                core.last_stall = Some((r, q));
            }
            stall = Some((r, q));
        }};
    }
    // Emits the Issue event with the pending last-arrival edge and
    // tags the def's scoreboard entry with this issue's per-core
    // index. Compiled out entirely for the NoTrace sink.
    macro_rules! issue_ev {
        ($pc:expr, $op:expr, $arrival:expr) => {
            if S::ENABLED {
                sink.event(&TraceEvent::Issue {
                    cycle: now,
                    core: ci,
                    src: d.src($pc),
                    arrival: $arrival,
                });
                if let Some(dst) = def_of($op) {
                    core.writer[dst.index()] = core.issued_nodes;
                }
                core.issued_nodes += 1;
            }
        };
    }

    while !core.finished && issued < config.issue_width {
        let pc = core.pc;
        let op = d.op(pc);
        let ui = d.unit(pc) as usize;
        if used[ui] >= limits[ui] {
            stall!(StallReason::Structural, None);
            break;
        }
        if !core.operands_ready(d.uses(pc), now) {
            stall!(StallReason::Operand, None);
            break;
        }
        // SA port check for communication instructions.
        if op.is_communication()
            && *sa_ports_left == 0 {
                stall!(StallReason::SaPort, None);
                break;
            }
        // The last-arrival edge of the instruction about to issue —
        // taken before the op executes (a def may overwrite the
        // scoreboard entry of one of its own uses). Discarded
        // harmlessly when a later check in this iteration stalls
        // instead: that stall re-records `last_stall`, which is the
        // binding constraint from then on.
        let arrival = if S::ENABLED { take_arrival(core, d, pc) } else { Arrival::InOrder };
        let mut end_group = false;
        match op {
            DecodedOp::Const(dst, v) => {
                core.write(dst, v, now + 1);
                core.pc += 1;
            }
            DecodedOp::LeaAbs(dst, addr) => {
                core.write(dst, addr, now + 1);
                core.pc += 1;
            }
            DecodedOp::Bin(b, dst, x, y) => {
                let v = b.eval(core.operand(x), core.operand(y));
                let lat = d.latency(pc) as u64;
                core.write(dst, v, now + lat);
                core.pc += 1;
            }
            DecodedOp::Un(u, dst, x) => {
                let v = u.eval(core.operand(x));
                core.write(dst, v, now + 1);
                core.pc += 1;
            }
            DecodedOp::Load(dst, a) => {
                if core.outstanding_loads(now) >= 16 {
                    stall!(StallReason::LoadLimit, None);
                    break;
                }
                let cell = core.cell_addr(a);
                let v = memory.read(cell)?;
                let (lat, level) = hierarchy.load(ci, core.byte_addr(a) as u64);
                hits[match level {
                    HitLevel::L1 => 0,
                    HitLevel::L2 => 1,
                    HitLevel::L3 => 2,
                    HitLevel::Memory => 3,
                }] += 1;
                let ready = now + lat;
                core.write(dst, v, ready);
                core.inflight_loads.push(ready);
                core.pc += 1;
            }
            DecodedOp::Store(a, v) => {
                let cell = core.cell_addr(a);
                let value = core.operand(v);
                memory.write(cell, value)?;
                let _ = hierarchy.store(ci, core.byte_addr(a) as u64);
                core.pc += 1;
            }
            DecodedOp::Output(v) => {
                output.push(core.operand(v));
                core.pc += 1;
            }
            DecodedOp::Produce { queue, value } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                if !sa.can_produce(queue.index()) {
                    stall!(StallReason::QueueFull, Some(queue));
                    break;
                }
                *sa_ports_left -= 1;
                let v = core.operand(value);
                match sa.produce(queue.index(), v, now) {
                    Ok(Some(del)) => {
                        if let Some(dst) = del.pending.dst {
                            // A delivery to this very core lands now (a
                            // later op in this group may observe the
                            // scoreboard entry); a peer's is applied by
                            // the caller right after this call returns,
                            // before any other core is evaluated —
                            // observably the same instant.
                            if del.pending.core == ci {
                                core.deliver(dst, del.pending.token, del.value, del.ready_at);
                            } else {
                                deliveries.push(CrossDelivery {
                                    core: del.pending.core,
                                    dst,
                                    token: del.pending.token,
                                    value: del.value,
                                    ready_at: del.ready_at,
                                });
                            }
                        }
                    }
                    Ok(None) => {}
                    // `can_produce` held above; losing the value here
                    // would corrupt the run, so refuse to continue.
                    Err(_) => return Err(ExecError::InvalidConfig(sa_overflow())),
                }
                issue_ev!(pc, op, arrival);
                trace!(TraceEvent::Produce { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()) });
                core.stats.communication += 1;
                core.pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::Consume { dst, queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                *sa_ports_left -= 1;
                let token = core.mark_pending(dst, queue);
                let pending = PendingConsume { core: ci, dst: Some(dst), token };
                let mut deferred = true;
                if let Ok((v, ready)) = sa.consume(queue.index(), now, pending) {
                    core.deliver(dst, token, v, ready);
                    deferred = false;
                }
                issue_ev!(pc, op, arrival);
                trace!(TraceEvent::Consume { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()), deferred });
                core.stats.communication += 1;
                core.pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::ProduceSync { queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                if !sa.can_produce(queue.index()) {
                    stall!(StallReason::QueueFull, Some(queue));
                    break;
                }
                *sa_ports_left -= 1;
                if sa.produce(queue.index(), 1, now).is_err() {
                    return Err(ExecError::InvalidConfig(sa_overflow()));
                }
                issue_ev!(pc, op, arrival);
                trace!(TraceEvent::Produce { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()) });
                core.stats.synchronization += 1;
                core.pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::ConsumeSync { queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(d.src(pc)));
                }
                // Acquire semantics: block issue until the token is
                // visible.
                if !sa.has_visible_entry(queue.index(), now) {
                    stall!(StallReason::QueueEmpty, Some(queue));
                    break;
                }
                *sa_ports_left -= 1;
                // Gated on `has_visible_entry` above; an empty pop is
                // harmless but counts as no token consumed.
                let _ = sa.pop_token(queue.index(), now);
                issue_ev!(pc, op, arrival);
                trace!(TraceEvent::Consume { cycle: now, core: ci, queue: queue.0, occupancy: sa.occupancy(queue.index()), deferred: false });
                core.stats.synchronization += 1;
                core.pc += 1;
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            DecodedOp::Branch { cond, then_pc, else_pc, backward } => {
                let taken = core.regs[cond.index()] != 0;
                // Static backward-taken/forward-not-taken prediction:
                // predict taken iff the taken target does not move
                // forward in block order (a loop back edge) — folded
                // into `backward` at decode time.
                if let crate::config::BranchModel::StaticBtfn { penalty } = config.branch_model {
                    let predict_taken = backward;
                    if predict_taken != taken {
                        core.stats.mispredicts += 1;
                        core.fetch_stalled_until = now + penalty;
                    }
                }
                core.pc = if taken { then_pc } else { else_pc };
                end_group = true;
            }
            DecodedOp::Jump(t) => {
                core.pc = t;
                end_group = true;
            }
            DecodedOp::Ret(v) => {
                if let Some(v) = v {
                    *return_value = Some(core.operand(v));
                }
                core.finished = true;
                core.stats.finished_at = now + 1;
                trace!(TraceEvent::Finish { cycle: now, core: ci });
                end_group = true;
            }
            DecodedOp::Nop => {
                core.pc += 1;
            }
            DecodedOp::Unterminated => {
                return Err(gmt_ir::interp::unterminated(d.block(pc)));
            }
        }
        issue_ev!(pc, op, arrival);
        core.stats.computation += 1;
        issued += 1;
        used[ui] += 1;
        progressed = true;
        if end_group {
            break; // simple front end: nothing issues past a taken redirect
        }
    }
    Ok(IssueOutcome { progressed, stall })
}
