//! Dynamic critical-path profiling of a traced run.
//!
//! The paper's speedups are bounded by two things the end-of-run
//! aggregates cannot see: the longest dynamic dependence *recurrence*
//! (§2's thesis — the schedule can never beat the slowest cycle in the
//! dependence graph) and the behavior of the synchronization-array
//! queues that stitch the threads together. [`CritPathSink`] makes
//! both visible: the engine tags every issued instruction with its
//! *last-arrival edge* ([`Arrival`]) — the predecessor event that
//! determined its issue cycle — and this sink chains those edges into
//! the run's dynamic critical path.
//!
//! The construction is the classic last-arrival-edge critical-path
//! model for in-order pipelines: each dynamic instruction has exactly
//! one binding predecessor (the constraint that was satisfied last),
//! so the walk backward from the final retire is a single connected
//! path from cycle 0 to the total cycle count. That gives the same
//! kind of exact accounting [`check_attribution`](crate::trace) gives
//! for per-core cycles: the path's segment lengths provably sum to
//! [`SimResult::cycles`] ([`check_critical_path`]), so a report built
//! from it can say "X% of the run is the `adpcmdec` recurrence, Y% is
//! queue 3 backpressure" with nothing left over.
//!
//! Cross-thread edges need the queue pairing the raw events do not
//! carry: the sink mirrors each queue's FIFO discipline (produces
//! enqueue, consumes pop in order, pending register-consumes pair with
//! the next produce) to resolve *which* produce fed a consume and
//! *which* consume freed the slot a backpressured produce waited for.
//! The mirror is exact because the engine emits queue events in global
//! evaluation order and never fast-forwards across a queue operation.

use crate::sim::SimResult;
use crate::trace::{Arrival, TraceEvent, TraceSink};
use gmt_ir::decoded::{DecodedOp, DecodedProgram};
use gmt_ir::{BlockId, InstrId};
use std::collections::{HashMap, VecDeque};

/// Which kind of last-arrival edge a critical-path segment crossed —
/// the "why was this cycle spent" classification of the path walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CpKind {
    /// In-order fetch: the instruction issued as soon as the front end
    /// reached it (program-order predecessor).
    InOrder,
    /// Intra-thread dataflow: waiting on an operand's writer (compute
    /// latency, or the SA delivery latency of an earlier consume).
    Dataflow,
    /// Dataflow whose binding writer was a load — memory latency.
    Load,
    /// Cross-thread value/token arrival: the matching produce on the
    /// other end of a queue bound the issue cycle.
    QueueData,
    /// Queue backpressure: the consume that freed a slot in a full
    /// queue bound a produce's issue cycle.
    QueueSpace,
    /// Synchronization-array request-port contention.
    SaPort,
    /// Issue-width or functional-unit contention.
    Structural,
    /// The outstanding-load limit.
    LoadLimit,
    /// Front-end refill after a branch mispredict.
    Refill,
    /// The tail segment from the path's last issue to the run's final
    /// cycle (the retire of the longest-running core).
    Retire,
}

impl CpKind {
    /// Stable kebab-case name (report and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            CpKind::InOrder => "in-order",
            CpKind::Dataflow => "dataflow",
            CpKind::Load => "load",
            CpKind::QueueData => "queue-data",
            CpKind::QueueSpace => "queue-space",
            CpKind::SaPort => "sa-port",
            CpKind::Structural => "structural",
            CpKind::LoadLimit => "load-limit",
            CpKind::Refill => "refill",
            CpKind::Retire => "retire",
        }
    }

    /// Every kind, in display order.
    pub const ALL: [CpKind; 10] = [
        CpKind::InOrder,
        CpKind::Dataflow,
        CpKind::Load,
        CpKind::QueueData,
        CpKind::QueueSpace,
        CpKind::SaPort,
        CpKind::Structural,
        CpKind::LoadLimit,
        CpKind::Refill,
        CpKind::Retire,
    ];

    fn index(self) -> usize {
        CpKind::ALL.iter().position(|&k| k == self).unwrap_or(0)
    }
}

/// Sentinel for "no queue involved" in a node.
const NO_QUEUE: u32 = u32::MAX;

/// What a deferred piece of the node's last-arrival edge still needs
/// from the queue event that follows its issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fill {
    /// Edge fully resolved at issue.
    Done,
    /// A `consume.sync` that waited for visibility: the matching
    /// produce (learned when this node's `Consume` event pops the
    /// FIFO) becomes the predecessor.
    Producer,
    /// A produce that waited for space: the queue's most recent pop
    /// (the consume that freed the slot) becomes the predecessor.
    LastPop,
}

/// One dynamic instruction in the last-arrival graph.
#[derive(Clone, Copy, Debug)]
struct Node {
    cycle: u64,
    src: InstrId,
    kind: CpKind,
    /// The binding predecessor `(core, per-core index)`; `None` only
    /// for a core's first instruction with no recorded wait.
    pred: Option<(usize, usize)>,
    queue: u32,
    is_consume: bool,
    fill: Fill,
}

/// One aggregated critical-path entry: all walked edges that share a
/// static instruction, edge kind, and queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpSegment {
    /// Core the bound instruction issued on.
    pub core: usize,
    /// The bound instruction's original-program id.
    pub src: InstrId,
    /// Its basic block in the thread function (best-effort: the first
    /// decoded slot carrying this id).
    pub block: BlockId,
    /// The edge kind.
    pub kind: CpKind,
    /// The queue involved, for queue edges.
    pub queue: Option<u32>,
    /// How many path edges aggregated here.
    pub count: u64,
    /// Total cycles those edges cover.
    pub cycles: u64,
}

/// The reconstructed dynamic critical path of one run, aggregated
/// three ways. All three decompositions sum to [`CritPath::total`].
#[derive(Clone, Debug, Default)]
pub struct CritPath {
    /// Total cycles covered — equals `SimResult::cycles` on a
    /// conserving walk ([`check_critical_path`]).
    pub total: u64,
    /// Number of edges walked (dynamic path length).
    pub edges: u64,
    /// Edges that crossed cores (queue pairings).
    pub crossings: u64,
    /// Cycles per edge kind, indexed like [`CpKind::ALL`].
    pub by_kind: [u64; 10],
    /// Per (static instruction, kind, queue) segments, most expensive
    /// first.
    pub segments: Vec<CpSegment>,
    /// Cycles per (core, basic block), most expensive first.
    pub by_block: Vec<((usize, BlockId), u64)>,
    /// Cycles per queue (queue-data + queue-space edges), most
    /// expensive first.
    pub by_queue: Vec<(u32, u64)>,
}

impl CritPath {
    /// Cycles attributed to `kind`.
    pub fn kind_cycles(&self, kind: CpKind) -> u64 {
        self.by_kind[kind.index()]
    }
}

/// A [`TraceSink`] that records every issued instruction's last-arrival
/// edge and mirrors the queues' FIFO pairing, then reconstructs the
/// dynamic critical path with [`CritPathSink::critical_path`].
///
/// Ignores `Stall`/`StallSpan` events entirely, so it observes the
/// identical graph whether or not the engine's stall fast-forward is
/// on.
#[derive(Debug)]
pub struct CritPathSink {
    nodes: Vec<Vec<Node>>,
    /// Per-core: original ids whose decoded op is a load (classifies a
    /// binding dataflow writer as memory latency).
    loads: Vec<HashMap<InstrId, ()>>,
    /// Per-core: original id → basic block, for report positions.
    blocks: Vec<HashMap<InstrId, BlockId>>,
    /// Per-queue FIFO mirror: producer nodes whose values sit in the
    /// queue.
    entries: Vec<VecDeque<(usize, usize)>>,
    /// Per-queue: register consumes that found the queue empty and
    /// went pending (pair with the next produce, oldest first).
    pending: Vec<VecDeque<(usize, usize)>>,
    /// Consume node → the produce node that fed it.
    pairing: HashMap<(usize, usize), (usize, usize)>,
    /// Per-queue: the consume node that most recently freed a slot.
    last_pop: Vec<Option<(usize, usize)>>,
    finished_at: Vec<u64>,
    cycles: u64,
    ended: bool,
}

impl CritPathSink {
    /// A sink for a run of `program` on `num_queues` queues.
    pub fn new(program: &DecodedProgram, num_queues: usize) -> CritPathSink {
        let ncores = program.threads().len();
        let mut loads = Vec::with_capacity(ncores);
        let mut blocks = Vec::with_capacity(ncores);
        for d in program.threads() {
            let mut lm = HashMap::new();
            let mut bm = HashMap::new();
            for pc in 0..d.num_slots() as u32 {
                if matches!(d.op(pc), DecodedOp::Load(..)) {
                    lm.insert(d.src(pc), ());
                }
                bm.entry(d.src(pc)).or_insert_with(|| d.block(pc));
            }
            loads.push(lm);
            blocks.push(bm);
        }
        CritPathSink {
            nodes: vec![Vec::new(); ncores],
            loads,
            blocks,
            entries: vec![VecDeque::new(); num_queues],
            pending: vec![VecDeque::new(); num_queues],
            pairing: HashMap::new(),
            last_pop: vec![None; num_queues],
            finished_at: vec![0; ncores],
            cycles: 0,
            ended: false,
        }
    }

    /// Dynamic instructions recorded (graph size).
    pub fn num_nodes(&self) -> u64 {
        self.nodes.iter().map(|n| n.len() as u64).sum()
    }

    /// Resolves an [`Arrival::Data`] edge at issue time: if the
    /// binding writer was a register consume whose value arrived
    /// *after* the consume issued (the stall-on-use deferred-delivery
    /// path), the real constraint is the cross-thread produce — the
    /// edge is redirected through the FIFO pairing. Otherwise the
    /// writer itself binds (memory latency for loads, compute latency
    /// or local SA delivery for the rest).
    fn resolve_data(
        &self,
        core: usize,
        writer: u64,
        fallback: Option<(usize, usize)>,
    ) -> (CpKind, Option<(usize, usize)>, u32) {
        let w = writer as usize;
        if writer == u64::MAX || w >= self.nodes[core].len() {
            return (CpKind::Dataflow, fallback, NO_QUEUE);
        }
        let wn = self.nodes[core][w];
        if wn.is_consume {
            if let Some(&prod) = self.pairing.get(&(core, w)) {
                let pn = self.nodes[prod.0][prod.1];
                if pn.cycle >= wn.cycle {
                    return (CpKind::QueueData, Some(prod), pn.queue);
                }
            }
            return (CpKind::Dataflow, Some((core, w)), wn.queue);
        }
        let kind = if self.loads[core].contains_key(&wn.src) {
            CpKind::Load
        } else {
            CpKind::Dataflow
        };
        (kind, Some((core, w)), NO_QUEUE)
    }

    /// Reconstructs the critical path: a backward walk over binding
    /// predecessors from the last instruction of the core that retired
    /// last, down to a node with no predecessor. Each edge's length is
    /// the cycle gap it covers, attributed to the *bound* (successor)
    /// instruction; the leading wait of the start node (if its first
    /// issue was not at cycle 0) and the trailing retire close the
    /// accounting, so the segments sum exactly to the run's cycles.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: called before
    /// `run_end`, an empty graph, a predecessor later than its
    /// successor, or a walk longer than the node count (a cycle —
    /// impossible by construction, guarded anyway).
    pub fn critical_path(&self) -> Result<CritPath, String> {
        if !self.ended {
            return Err("critical_path before run_end".to_string());
        }
        let mut start_core = None;
        for (ci, &fin) in self.finished_at.iter().enumerate() {
            if start_core.map_or(true, |(_, best)| fin > best) {
                start_core = Some((ci, fin));
            }
        }
        let (start_core, _) = start_core.ok_or("no cores in trace")?;
        if self.nodes[start_core].is_empty() {
            return Err(format!("core {start_core} finished last but issued nothing"));
        }

        let mut cp = CritPath::default();
        let mut segs: HashMap<(usize, InstrId, CpKind, u32), (u64, u64)> = HashMap::new();
        let mut blocks: HashMap<(usize, BlockId), u64> = HashMap::new();
        let mut queues: HashMap<u32, u64> = HashMap::new();
        let mut add = |cp: &mut CritPath, node: &Node, core: usize, kind: CpKind, len: u64| {
            cp.total += len;
            cp.by_kind[kind.index()] += len;
            let e = segs.entry((core, node.src, kind, node.queue)).or_insert((0, 0));
            e.0 += 1;
            e.1 += len;
            let block =
                self.blocks[core].get(&node.src).copied().unwrap_or(BlockId(u32::MAX));
            *blocks.entry((core, block)).or_insert(0) += len;
            if matches!(kind, CpKind::QueueData | CpKind::QueueSpace) && node.queue != NO_QUEUE {
                *queues.entry(node.queue).or_insert(0) += len;
            }
        };

        let mut cur = (start_core, self.nodes[start_core].len() - 1);
        let start = &self.nodes[cur.0][cur.1];
        if start.cycle > self.cycles {
            return Err(format!(
                "last issue at cycle {} past run end {}",
                start.cycle, self.cycles
            ));
        }
        add(&mut cp, start, cur.0, CpKind::Retire, self.cycles - start.cycle);
        let limit = self.num_nodes() + 1;
        let mut hops = 0u64;
        loop {
            let n = self.nodes[cur.0][cur.1];
            match n.pred {
                Some(p) => {
                    let pn = &self.nodes[p.0][p.1];
                    if pn.cycle > n.cycle {
                        return Err(format!(
                            "predecessor at cycle {} after successor at cycle {} \
                             (core {} node {} kind {})",
                            pn.cycle,
                            n.cycle,
                            cur.0,
                            cur.1,
                            n.kind.name()
                        ));
                    }
                    add(&mut cp, &n, cur.0, n.kind, n.cycle - pn.cycle);
                    cp.edges += 1;
                    if p.0 != cur.0 {
                        cp.crossings += 1;
                    }
                    cur = p;
                }
                None => {
                    // The path's origin: any cycles before its issue
                    // were spent waiting on whatever its own edge kind
                    // names (e.g. a peer hogging the SA ports), with
                    // no earlier event to anchor to.
                    if n.cycle > 0 {
                        add(&mut cp, &n, cur.0, n.kind, n.cycle);
                        cp.edges += 1;
                    }
                    break;
                }
            }
            hops += 1;
            if hops > limit {
                return Err("last-arrival walk exceeded node count (cycle in graph)".to_string());
            }
        }

        cp.segments = segs
            .into_iter()
            .map(|((core, src, kind, queue), (count, cycles))| CpSegment {
                core,
                src,
                block: self.blocks[core].get(&src).copied().unwrap_or(BlockId(u32::MAX)),
                kind,
                queue: (queue != NO_QUEUE).then_some(queue),
                count,
                cycles,
            })
            .collect();
        cp.segments
            .sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| {
                (a.core, a.src.0, a.kind, a.queue).cmp(&(b.core, b.src.0, b.kind, b.queue))
            }));
        cp.by_block = sorted_desc(blocks);
        cp.by_queue = sorted_desc(queues);
        Ok(cp)
    }

    fn last_node(&mut self, core: usize) -> Option<&mut Node> {
        self.nodes[core].last_mut()
    }
}

fn sorted_desc<K: Ord + Copy>(m: HashMap<K, u64>) -> Vec<(K, u64)> {
    let mut v: Vec<(K, u64)> = m.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

impl TraceSink for CritPathSink {
    fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Issue { cycle, core, src, arrival } => {
                let idx = self.nodes[core].len();
                let prev = idx.checked_sub(1).map(|i| (core, i));
                let (kind, pred, queue, fill) = match arrival {
                    Arrival::InOrder => (CpKind::InOrder, prev, NO_QUEUE, Fill::Done),
                    Arrival::Refill => (CpKind::Refill, prev, NO_QUEUE, Fill::Done),
                    Arrival::Resource(r) => {
                        use crate::core::StallReason;
                        let kind = match r {
                            StallReason::Structural => CpKind::Structural,
                            StallReason::SaPort => CpKind::SaPort,
                            StallReason::LoadLimit => CpKind::LoadLimit,
                            // Unreachable via the engine (those reasons
                            // map to dedicated arrivals); classify
                            // sensibly anyway.
                            StallReason::Operand => CpKind::Dataflow,
                            StallReason::QueueEmpty => CpKind::QueueData,
                            StallReason::QueueFull => CpKind::QueueSpace,
                            StallReason::Mispredict => CpKind::Refill,
                        };
                        (kind, prev, NO_QUEUE, Fill::Done)
                    }
                    Arrival::Data { writer } => {
                        let (kind, pred, queue) = self.resolve_data(core, writer, prev);
                        (kind, pred, queue, Fill::Done)
                    }
                    Arrival::QueueVisible { queue } => {
                        (CpKind::QueueData, prev, queue, Fill::Producer)
                    }
                    Arrival::QueueSpace { queue } => {
                        (CpKind::QueueSpace, prev, queue, Fill::LastPop)
                    }
                };
                self.nodes[core].push(Node {
                    cycle,
                    src,
                    kind,
                    pred,
                    queue,
                    is_consume: false,
                    fill,
                });
            }
            TraceEvent::Produce { core, queue, .. } => {
                let q = queue as usize;
                let pop = self.last_pop[q];
                let pending = self.pending[q].pop_front();
                let idx = match self.last_node(core) {
                    Some(node) => {
                        node.queue = queue;
                        if node.fill == Fill::LastPop {
                            // Backpressured produce: the consume that
                            // freed the slot binds. Keep the in-order
                            // fallback if the mirror has no pop (a
                            // defensive case — a full queue can only
                            // drain via a pop).
                            if let Some(p) = pop {
                                node.pred = Some(p);
                            }
                            node.fill = Fill::Done;
                        }
                        self.nodes[core].len() - 1
                    }
                    None => return,
                };
                match pending {
                    // The value bypasses the queue straight into the
                    // oldest pending register consume.
                    Some(consumer) => {
                        self.pairing.insert(consumer, (core, idx));
                    }
                    None => self.entries[q].push_back((core, idx)),
                }
            }
            TraceEvent::Consume { core, queue, deferred, .. } => {
                let q = queue as usize;
                let popped = if deferred { None } else { self.entries[q].pop_front() };
                let idx = match self.last_node(core) {
                    Some(node) => {
                        node.queue = queue;
                        node.is_consume = true;
                        if node.fill == Fill::Producer {
                            // A consume.sync that waited for
                            // visibility: the matching produce binds.
                            if let Some(p) = popped {
                                node.pred = Some(p);
                            }
                            node.fill = Fill::Done;
                        }
                        self.nodes[core].len() - 1
                    }
                    None => return,
                };
                if deferred {
                    self.pending[q].push_back((core, idx));
                } else if let Some(prod) = popped {
                    self.pairing.insert((core, idx), prod);
                    self.last_pop[q] = Some((core, idx));
                }
            }
            TraceEvent::Finish { cycle, core } => {
                self.finished_at[core] = cycle + 1;
            }
            // The critical path is about issues, not waits: the stall
            // stream (per-cycle or fast-forwarded spans) carries no
            // extra information once each issue knows its binding
            // edge.
            TraceEvent::Stall { .. } | TraceEvent::StallSpan { .. } => {}
        }
    }

    fn run_end(&mut self, cycles: u64) {
        self.cycles = cycles;
        self.ended = true;
    }
}

/// Checks critical-path conservation on a finished sink against the
/// run it observed: the reconstructed path must cover the run's cycle
/// count exactly — the analogue of
/// [`check_attribution`](crate::trace::check_attribution).
///
/// # Errors
///
/// Returns the walk error, or a description of the shortfall if the
/// path's segments do not sum to `result.cycles`.
pub fn check_critical_path(sink: &CritPathSink, result: &SimResult) -> Result<CritPath, String> {
    let cp = sink.critical_path()?;
    if cp.total != result.cycles {
        return Err(format!(
            "critical path covers {} cycles but the run took {}",
            cp.total, result.cycles
        ));
    }
    let by_kind: u64 = cp.by_kind.iter().sum();
    if by_kind != cp.total {
        return Err(format!(
            "by-kind decomposition sums to {by_kind}, path total is {}",
            cp.total
        ));
    }
    Ok(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::StallReason;
    use gmt_ir::{BinOp, FunctionBuilder};

    fn program_one_chain() -> DecodedProgram {
        let mut b = FunctionBuilder::new("chain");
        let x = b.param();
        let y = b.bin(BinOp::Mul, x, 3i64);
        let z = b.bin(BinOp::Add, y, 1i64);
        b.ret(Some(z.into()));
        DecodedProgram::decode(&[b.finish().unwrap()]).unwrap()
    }

    fn issue(cycle: u64, core: usize, src: u32, arrival: Arrival) -> TraceEvent {
        TraceEvent::Issue { cycle, core, src: InstrId(src), arrival }
    }

    #[test]
    fn straight_line_walk_conserves() {
        let p = program_one_chain();
        let mut s = CritPathSink::new(&p, 0);
        s.event(&issue(0, 0, 0, Arrival::InOrder));
        s.event(&issue(3, 0, 1, Arrival::Data { writer: 0 }));
        s.event(&issue(4, 0, 2, Arrival::Data { writer: 1 }));
        s.event(&TraceEvent::Finish { cycle: 4, core: 0 });
        s.run_end(5);
        let cp = s.critical_path().unwrap();
        assert_eq!(cp.total, 5);
        assert_eq!(cp.kind_cycles(CpKind::Dataflow), 4);
        assert_eq!(cp.kind_cycles(CpKind::Retire), 1);
        assert_eq!(cp.crossings, 0);
        assert_eq!(cp.edges, 2);
    }

    #[test]
    fn queue_visible_edge_crosses_to_producer() {
        // Core 0 produces at cycle 2; core 1's consume.sync waits and
        // issues at cycle 4 once the token is visible.
        let p = DecodedProgram::decode(&{
            let mut b = FunctionBuilder::new("t");
            b.ret(None);
            vec![b.finish().unwrap(), {
                let mut b = FunctionBuilder::new("u");
                b.ret(None);
                b.finish().unwrap()
            }]
        })
        .unwrap();
        let mut s = CritPathSink::new(&p, 1);
        s.event(&issue(2, 0, 0, Arrival::InOrder));
        s.event(&TraceEvent::Produce { cycle: 2, core: 0, queue: 0, occupancy: 1 });
        s.event(&issue(3, 0, 1, Arrival::InOrder));
        s.event(&TraceEvent::Finish { cycle: 3, core: 0 });
        s.event(&issue(4, 1, 0, Arrival::QueueVisible { queue: 0 }));
        s.event(&TraceEvent::Consume { cycle: 4, core: 1, queue: 0, occupancy: 0, deferred: false });
        s.event(&issue(5, 1, 1, Arrival::InOrder));
        s.event(&TraceEvent::Finish { cycle: 5, core: 1 });
        s.run_end(6);
        let cp = s.critical_path().unwrap();
        // Walk: retire(6-5=1) <- in-order(5-4=1) <- queue-data(4-2=2)
        // <- [core 0 produce at 2] in-order back to cycle... produce's
        // pred is None at idx 0, so its leading 2 cycles close the sum.
        assert_eq!(cp.total, 6);
        assert_eq!(cp.kind_cycles(CpKind::QueueData), 2);
        assert_eq!(cp.crossings, 1);
        assert_eq!(cp.by_queue, vec![(0, 2)]);
    }

    #[test]
    fn deferred_consume_redirects_to_producer() {
        // Core 1: register consume at cycle 1 (deferred), user stalls
        // on the operand until core 0's produce at cycle 5 delivers
        // (ready at 6); user issues at 6 with a Data edge through the
        // consume — which must redirect to the produce.
        let p = DecodedProgram::decode(&{
            let mut b = FunctionBuilder::new("t");
            b.ret(None);
            vec![b.finish().unwrap(), {
                let mut b = FunctionBuilder::new("u");
                b.ret(None);
                b.finish().unwrap()
            }]
        })
        .unwrap();
        let mut s = CritPathSink::new(&p, 1);
        s.event(&issue(1, 1, 0, Arrival::InOrder));
        s.event(&TraceEvent::Consume { cycle: 1, core: 1, queue: 0, occupancy: 0, deferred: true });
        s.event(&issue(5, 0, 0, Arrival::InOrder));
        s.event(&TraceEvent::Produce { cycle: 5, core: 0, queue: 0, occupancy: 0 });
        s.event(&TraceEvent::Finish { cycle: 5, core: 0 });
        s.event(&issue(6, 1, 1, Arrival::Data { writer: 0 }));
        s.event(&TraceEvent::Finish { cycle: 6, core: 1 });
        s.run_end(7);
        let cp = s.critical_path().unwrap();
        assert_eq!(cp.total, 7);
        // user <- produce is 1 cycle of queue-data; produce's leading
        // 5 cycles close at its in-order origin.
        assert_eq!(cp.kind_cycles(CpKind::QueueData), 1);
        assert_eq!(cp.crossings, 1);
    }

    #[test]
    fn queue_space_edge_points_at_freeing_consume() {
        let p = DecodedProgram::decode(&{
            let mut b = FunctionBuilder::new("t");
            b.ret(None);
            vec![b.finish().unwrap(), {
                let mut b = FunctionBuilder::new("u");
                b.ret(None);
                b.finish().unwrap()
            }]
        })
        .unwrap();
        let mut s = CritPathSink::new(&p, 1);
        // Fill the depth-1 queue at cycle 0, consumer pops at cycle 4,
        // the backpressured second produce issues at cycle 4.
        s.event(&issue(0, 0, 0, Arrival::InOrder));
        s.event(&TraceEvent::Produce { cycle: 0, core: 0, queue: 0, occupancy: 1 });
        s.event(&issue(4, 1, 0, Arrival::QueueVisible { queue: 0 }));
        s.event(&TraceEvent::Consume { cycle: 4, core: 1, queue: 0, occupancy: 0, deferred: false });
        s.event(&TraceEvent::Finish { cycle: 4, core: 1 });
        s.event(&issue(4, 0, 1, Arrival::QueueSpace { queue: 0 }));
        s.event(&TraceEvent::Produce { cycle: 4, core: 0, queue: 0, occupancy: 1 });
        s.event(&issue(5, 0, 2, Arrival::InOrder));
        s.event(&TraceEvent::Finish { cycle: 5, core: 0 });
        s.run_end(6);
        let cp = s.critical_path().unwrap();
        assert_eq!(cp.total, 6);
        // retire(1) <- in-order(1) <- queue-space(0) <- queue-data at
        // the freeing consume (4-0=4) <- produce origin at cycle 0.
        assert_eq!(cp.kind_cycles(CpKind::QueueSpace), 0);
        assert_eq!(cp.kind_cycles(CpKind::QueueData), 4);
        assert_eq!(cp.crossings, 2);
    }

    #[test]
    fn conservation_check_rejects_shortfall() {
        let p = program_one_chain();
        let mut s = CritPathSink::new(&p, 0);
        s.event(&issue(0, 0, 0, Arrival::InOrder));
        s.event(&TraceEvent::Finish { cycle: 0, core: 0 });
        s.run_end(1);
        let cp = s.critical_path().unwrap();
        assert_eq!(cp.total, 1);
        assert_eq!(cp.kind_cycles(CpKind::Retire), 1);
    }

    #[test]
    fn resource_arrival_classifies_by_reason() {
        let p = program_one_chain();
        let mut s = CritPathSink::new(&p, 0);
        s.event(&issue(0, 0, 0, Arrival::InOrder));
        s.event(&issue(3, 0, 1, Arrival::Resource(StallReason::Structural)));
        s.event(&issue(9, 0, 2, Arrival::Resource(StallReason::LoadLimit)));
        s.event(&TraceEvent::Finish { cycle: 9, core: 0 });
        s.run_end(10);
        let cp = s.critical_path().unwrap();
        assert_eq!(cp.total, 10);
        assert_eq!(cp.kind_cycles(CpKind::Structural), 3);
        assert_eq!(cp.kind_cycles(CpKind::LoadLimit), 6);
        assert_eq!(cp.kind_cycles(CpKind::Retire), 1);
    }
}
