//! A cycle-level chip-multiprocessor model in the mold of the paper's
//! evaluation machine (Figure 6a): in-order, 6-issue cores with
//! stall-on-use semantics, a private L1D/L2 + shared L3 hierarchy with
//! snoop write-invalidate coherence, 141-cycle main memory, and a
//! synchronization-array scalar-queue interconnect with 1-cycle access
//! and 4 shared request ports.
//!
//! Key modeled behaviors the paper's results hinge on:
//!
//! - `produce`/`consume` issue on the memory (M-type) ports, competing
//!   with loads and stores (at most 4 such instructions per cycle);
//! - a register `consume` does **not** block the pipeline while its
//!   queue is empty — only a *use* of the consumed register stalls
//!   (stall-on-use), so register communication is comparatively cheap;
//! - `consume.sync` **does** block until its token arrives (acquire
//!   semantics), which is why removing memory synchronizations buys
//!   more than removing register communication (§4);
//! - duplicated branches consume and then *use* their operand, so
//!   control dependences stall — the other big COCO win;
//! - private L2s mean a two-thread split doubles effective L2 capacity
//!   (the `456.gromacs` effect).
//!
//! # Example
//!
//! ```
//! use gmt_ir::{FunctionBuilder, BinOp};
//! use gmt_sim::{simulate, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("f");
//! let x = b.param();
//! let y = b.bin(BinOp::Mul, x, 3i64);
//! b.ret(Some(y.into()));
//! let f = b.finish()?;
//! let r = simulate(&[f], &[5], |_, _| {}, &MachineConfig::default())?;
//! assert_eq!(r.return_value, Some(15));
//! assert!(r.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod core;
pub mod critpath;
mod engine;
mod sa;
mod sim;
pub mod trace;

pub use cache::{Cache, Hierarchy, HitLevel};
pub use config::{BranchModel, CacheConfig, MachineConfig, SaConfig};
pub use core::{Core, CoreStats, StallReason};
pub use engine::{
    simulate, simulate_decoded, simulate_decoded_opts, simulate_decoded_traced,
    simulate_decoded_traced_opts, SimOptions,
};
pub use sa::{Delivery, PendingConsume, QueueFull, SyncArray};
pub use sim::{simulate_reference, SimResult};
pub use critpath::{check_critical_path, CpKind, CpSegment, CritPath, CritPathSink};
pub use trace::{
    check_attribution, Arrival, ChromeTraceSink, CycleAttribution, NoTrace, OccupancySummary,
    QueueTraceStats, TraceAggregator, TraceEvent, TraceSink,
};

