//! Machine configuration, defaulting to the paper's Figure 6(a).

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        (self.size_bytes / (self.assoc * self.line_bytes).max(1)).max(1)
    }

    /// Checks that the geometry is realizable: the address math divides
    /// by both the associativity and the line size, and a fill needs at
    /// least one way to land in.
    pub fn validate(&self) -> Result<(), String> {
        if self.assoc == 0 {
            return Err("cache associativity must be at least 1".to_string());
        }
        if self.line_bytes == 0 {
            return Err("cache line size must be at least 1 byte".to_string());
        }
        Ok(())
    }
}

/// Branch handling in the front end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchModel {
    /// Redirects are free beyond ending the issue group (the default;
    /// an idealized predictor).
    Ideal,
    /// Static backward-taken / forward-not-taken prediction: a
    /// mispredicted conditional branch stalls the front end for the
    /// given penalty.
    StaticBtfn {
        /// Refill penalty in cycles.
        penalty: u64,
    },
}

/// Synchronization array parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaConfig {
    /// Number of queues.
    pub num_queues: usize,
    /// Per-queue entry capacities. A single element is broadcast to
    /// every queue — the uniform configuration (depth 1 in the base SA;
    /// 32 for DSWP) — otherwise queue `q` gets `depths[q]`, as produced
    /// by the profile-weighted allocator in `gmt_mtcg::queues`.
    /// [`MachineConfig::validate`] rejects any other length.
    pub depths: Vec<usize>,
    /// Access latency in cycles.
    pub latency: u64,
    /// Request ports shared between all cores per cycle.
    pub ports: usize,
}

impl SaConfig {
    /// The capacity of queue `q` under the broadcast rule.
    pub fn depth_of(&self, q: usize) -> usize {
        if self.depths.len() == 1 {
            self.depths[0]
        } else {
            self.depths.get(q).copied().unwrap_or(1)
        }
    }

    /// Compact rendering of the depth vector: `[32]` when uniform,
    /// the full vector otherwise.
    pub fn depths_summary(&self) -> String {
        if self.depths.windows(2).all(|w| w[0] == w[1]) {
            format!("[{}]", self.depths.first().copied().unwrap_or(1))
        } else {
            format!("{:?}", self.depths)
        }
    }
}

/// Full machine description.
///
/// Defaults reproduce the evaluated machine: dual-core, 6-issue
/// in-order cores with 6 ALU / 4 memory / 2 FP / 3 branch units, 16 KB
/// 4-way L1D (1 cycle), 256 KB 8-way private L2 (7 cycles), 1.5 MB
/// 12-way shared L3 (12 cycles), 141-cycle main memory, snoop-based
/// write-invalidate coherence, and a 256-queue synchronization array
/// with 1-cycle access and 4 shared ports.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Instructions issued per cycle per core.
    pub issue_width: usize,
    /// ALU units per core.
    pub alu_units: usize,
    /// Memory (M-type) issue ports per core — shared by loads, stores,
    /// and all produce/consume instructions, as on Itanium 2.
    pub mem_ports: usize,
    /// Floating-point units per core.
    pub fp_units: usize,
    /// Branch units per core.
    pub branch_units: usize,
    /// L1 data cache (private, per core).
    pub l1d: CacheConfig,
    /// L2 cache (private, per core).
    pub l2: CacheConfig,
    /// L3 cache (shared).
    pub l3: CacheConfig,
    /// Main memory latency in cycles.
    pub mem_latency: u64,
    /// Synchronization array.
    pub sa: SaConfig,
    /// Branch handling.
    pub branch_model: BranchModel,
    /// Simulation cycle budget (deadlock/livelock guard).
    pub max_cycles: u64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            issue_width: 6,
            alu_units: 6,
            mem_ports: 4,
            fp_units: 2,
            branch_units: 3,
            l1d: CacheConfig { size_bytes: 16 * 1024, assoc: 4, line_bytes: 64, latency: 1 },
            l2: CacheConfig { size_bytes: 256 * 1024, assoc: 8, line_bytes: 128, latency: 7 },
            l3: CacheConfig {
                size_bytes: 1536 * 1024,
                assoc: 12,
                line_bytes: 128,
                latency: 12,
            },
            mem_latency: 141,
            sa: SaConfig { num_queues: 256, depths: vec![32], latency: 1, ports: 4 },
            branch_model: BranchModel::Ideal,
            max_cycles: 2_000_000_000,
        }
    }
}

impl MachineConfig {
    /// Sets a *uniform default* depth: every queue gets `depth` entries
    /// (the base single-element synchronization array used for GREMIO
    /// is `with_queue_depth(1)`). Per-queue heterogeneous capacities go
    /// through [`MachineConfig::with_queue_depths`] instead.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> MachineConfig {
        self.sa.depths = vec![depth];
        self
    }

    /// Sets heterogeneous per-queue depths, e.g. the profile-weighted
    /// allocation from `gmt_mtcg::queues::allocate_depths`. The vector
    /// must hold one entry per queue (or a single broadcast element);
    /// [`MachineConfig::validate`] enforces this.
    #[must_use]
    pub fn with_queue_depths(mut self, depths: Vec<usize>) -> MachineConfig {
        self.sa.depths = depths;
        self
    }

    /// Checks the whole machine description for values the simulator
    /// cannot model: a zero-width or unit-less core would never issue
    /// (permanent structural stall), a port-less synchronization array
    /// can never serve a communication instruction, and degenerate
    /// cache geometry breaks the set-index math.
    ///
    /// [`crate::simulate`] runs this up front so untrusted
    /// configurations produce an error instead of a hang or panic.
    pub fn validate(&self) -> Result<(), String> {
        for (name, n) in [
            ("issue_width", self.issue_width),
            ("alu_units", self.alu_units),
            ("mem_ports", self.mem_ports),
            ("fp_units", self.fp_units),
            ("branch_units", self.branch_units),
            ("sa.ports", self.sa.ports),
        ] {
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
        }
        // A depth-0 queue can never accept a produce: the producing
        // core would spin on queue-full stalls until `max_cycles` —
        // a 2-billion-cycle hang, not a simulation.
        if self.sa.num_queues > 0 {
            if self.sa.depths.is_empty() {
                return Err("sa.depths must hold at least one entry".to_string());
            }
            if self.sa.depths.len() != 1 && self.sa.depths.len() != self.sa.num_queues {
                return Err(format!(
                    "sa.depths must hold 1 (broadcast) or num_queues ({}) entries, got {}",
                    self.sa.num_queues,
                    self.sa.depths.len()
                ));
            }
            if self.sa.depths.iter().any(|&d| d == 0) {
                return Err("sa.depth must be at least 1 for every queue".to_string());
            }
        }
        // The event-driven fast-forward requires every self-wakeup to
        // be strictly in the future: a zero mispredict penalty makes
        // the refill deadline (`fetch_stalled_until = now + penalty`)
        // coincide with the stall cycle itself, and a zero-latency
        // array is the only other knob that can push wakeup sources
        // onto that boundary. Either alone stays well-formed (the
        // penalty-0 stall simply never records; latency-0 entries are
        // still visible one cycle out) — only the combination on a
        // machine that actually has queues leaves no strictly-future
        // wakeup source at all, so reject exactly that.
        if let BranchModel::StaticBtfn { penalty: 0 } = self.branch_model {
            if self.sa.latency == 0 && self.sa.num_queues > 0 {
                return Err(
                    "StaticBtfn with penalty 0 combined with a zero-latency synchronization \
                     array leaves the stall wakeup computation degenerate; give the branch \
                     penalty or the SA latency at least 1 cycle (or use BranchModel::Ideal)"
                        .to_string(),
                );
            }
        }
        for (name, c) in [("l1d", self.l1d), ("l2", self.l2), ("l3", self.l3)] {
            c.validate().map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(())
    }

    /// Renders the Figure 6(a) machine-details table.
    pub fn describe(&self) -> String {
        format!(
            "Core        | {}-issue, {} ALU, {} memory, {} FP, {} branch\n\
             L1D Cache   | {} cycle, {} KB, {}-way, {}B lines\n\
             L2 Cache    | {} cycles, {} KB, {}-way, {}B lines\n\
             Shared L3   | {} cycles, {} KB, {}-way, {}B lines\n\
             Main Memory | {} cycles\n\
             Coherence   | snoop-based write-invalidate\n\
             Sync Array  | {} queues x {} entries, {}-cycle, {} ports",
            self.issue_width,
            self.alu_units,
            self.mem_ports,
            self.fp_units,
            self.branch_units,
            self.l1d.latency,
            self.l1d.size_bytes / 1024,
            self.l1d.assoc,
            self.l1d.line_bytes,
            self.l2.latency,
            self.l2.size_bytes / 1024,
            self.l2.assoc,
            self.l2.line_bytes,
            self.l3.latency,
            self.l3.size_bytes / 1024,
            self.l3.assoc,
            self.l3.line_bytes,
            self.mem_latency,
            self.sa.num_queues,
            self.sa.depths_summary(),
            self.sa.latency,
            self.sa.ports,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_figure_6a() {
        let m = MachineConfig::default();
        assert_eq!(m.issue_width, 6);
        assert_eq!(m.mem_ports, 4);
        assert_eq!(m.l1d.size_bytes, 16 * 1024);
        assert_eq!(m.l2.latency, 7);
        assert_eq!(m.mem_latency, 141);
        assert_eq!(m.sa.num_queues, 256);
    }

    #[test]
    fn cache_set_math() {
        let c = CacheConfig { size_bytes: 16 * 1024, assoc: 4, line_bytes: 64, latency: 1 };
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    fn describe_mentions_key_figures() {
        let d = MachineConfig::default().describe();
        assert!(d.contains("6-issue"));
        assert!(d.contains("141 cycles"));
        assert!(d.contains("256 queues"));
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(MachineConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_values_rejected() {
        let mut m = MachineConfig::default();
        m.issue_width = 0;
        assert!(m.validate().unwrap_err().contains("issue_width"));

        let mut m = MachineConfig::default();
        m.l2.assoc = 0;
        assert!(m.validate().unwrap_err().contains("l2"));

        let mut m = MachineConfig::default();
        m.sa.ports = 0;
        assert!(m.validate().unwrap_err().contains("sa.ports"));

        // Depth 0 would hang every produce on queue-full; queue-less
        // machines (pure single-thread) legitimately have no depth.
        let mut m = MachineConfig::default();
        m.sa.depths = vec![0];
        assert!(m.validate().unwrap_err().contains("sa.depth"));
        m.sa.num_queues = 0;
        assert_eq!(m.validate(), Ok(()));

        // A per-queue vector must cover every queue (or broadcast).
        let mut m = MachineConfig::default();
        m.sa.depths = vec![32, 1];
        assert!(m.validate().unwrap_err().contains("sa.depths"));
        let mut m = MachineConfig::default();
        m.sa.depths = Vec::new();
        assert!(m.validate().unwrap_err().contains("sa.depths"));
        let mut m = MachineConfig::default();
        m.sa.depths = vec![1; 256];
        m.sa.depths[17] = 0;
        assert!(m.validate().unwrap_err().contains("sa.depth"));
    }

    #[test]
    fn zero_penalty_with_zero_latency_sa_rejected() {
        let mut m = MachineConfig::default();
        m.branch_model = BranchModel::StaticBtfn { penalty: 0 };
        assert_eq!(m.validate(), Ok(()), "penalty 0 alone is fine");
        m.sa.latency = 0;
        assert!(m.validate().unwrap_err().contains("degenerate"));
        m.sa.num_queues = 0;
        assert_eq!(m.validate(), Ok(()), "queue-less machines have no SA wakeups");
        let mut m = MachineConfig::default();
        m.sa.latency = 0;
        assert_eq!(m.validate(), Ok(()), "zero-latency SA alone is fine");
    }

    #[test]
    fn degenerate_cache_set_math_is_total() {
        // Invalid geometry still yields a positive set count, so the
        // tag-only cache structures stay constructible.
        let c = CacheConfig { size_bytes: 1024, assoc: 0, line_bytes: 0, latency: 1 };
        assert!(c.validate().is_err());
        assert_eq!(c.num_sets(), 1024);
    }

    #[test]
    fn queue_depth_override() {
        let m = MachineConfig::default().with_queue_depth(1);
        assert_eq!(m.sa.depths, vec![1], "uniform default broadcasts");
        assert_eq!(m.sa.depth_of(0), 1);
        assert_eq!(m.sa.depth_of(255), 1);
    }

    #[test]
    fn per_queue_depths_override() {
        let mut depths = vec![1; 256];
        depths[3] = 32;
        let m = MachineConfig::default().with_queue_depths(depths);
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(m.sa.depth_of(3), 32);
        assert_eq!(m.sa.depth_of(4), 1);
        let d = m.describe();
        assert!(d.contains("entries"), "{d}");
    }

    #[test]
    fn describe_prints_depth_vector() {
        let d = MachineConfig::default().describe();
        assert!(d.contains("256 queues x [32] entries"), "{d}");
        let m = MachineConfig::default().with_queue_depths(vec![2, 5]);
        assert!(m.describe().contains("[2, 5] entries"), "{}", m.describe());
    }
}
