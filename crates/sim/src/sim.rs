//! The cycle-level simulation driver.

use crate::cache::{Hierarchy, HitLevel};
use crate::config::MachineConfig;
use crate::core::{Core, CoreStats, StallReason};
use crate::sa::{PendingConsume, SyncArray};
use gmt_ir::interp::{BlockedOp, DeadlockInfo, ExecError, Memory, MemoryLayout};
use gmt_ir::{BinOp, Function, Op};

/// The result of a timed simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Total cycles until the last core retired.
    pub cycles: u64,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// The observable output trace.
    pub output: Vec<i64>,
    /// The returned value, if any thread returned one.
    pub return_value: Option<i64>,
    /// Cache accesses served per level, across all cores.
    pub hits_l1: u64,
    /// See [`SimResult::hits_l1`].
    pub hits_l2: u64,
    /// See [`SimResult::hits_l1`].
    pub hits_l3: u64,
    /// Accesses served by main memory.
    pub hits_mem: u64,
    /// Main-loop iterations the engine actually evaluated. The
    /// per-cycle reference engine steps once per cycle
    /// (`engine_steps == cycles` unless the run errored); the
    /// event-driven engine steps once per *non-skipped* cycle, so
    /// `engine_steps + skipped_cycles` equals the per-cycle step count.
    pub engine_steps: u64,
    /// Cycles the event-driven fast-forward jumped over instead of
    /// ticking (0 for the reference engine and with `GMT_SIM_SKIP=0`).
    /// Every skipped cycle is still credited to the stalled cores'
    /// counters — results are byte-identical either way.
    pub skipped_cycles: u64,
}

impl SimResult {
    /// Instructions per cycle, across all cores.
    pub fn ipc(&self) -> f64 {
        let instrs: u64 = self.cores.iter().map(CoreStats::total_instrs).sum();
        instrs as f64 / self.cycles.max(1) as f64
    }
}

/// How an instruction classifies for issue resources.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Unit {
    Alu,
    Mem,
    Fp,
    Branch,
}

fn unit_of(op: &Op) -> Unit {
    match op {
        Op::Bin(b, ..) if b.is_float_class() => Unit::Fp,
        Op::Load(..)
        | Op::Store(..)
        | Op::Produce { .. }
        | Op::Consume { .. }
        | Op::ProduceSync { .. }
        | Op::ConsumeSync { .. } => Unit::Mem,
        Op::Branch { .. } | Op::Jump(_) | Op::Ret(_) => Unit::Branch,
        _ => Unit::Alu,
    }
}

fn exec_latency(op: &Op) -> u64 {
    match op {
        Op::Bin(b, ..) => match b {
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 12,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
            BinOp::FDiv => 16,
            _ => 1,
        },
        _ => 1,
    }
}

/// Runs `threads` (one per core) to completion on the machine through
/// the ID-walking reference engine.
///
/// This is the semantic oracle for the pre-decoded engine
/// ([`simulate`](crate::simulate)), which produces byte-identical
/// results without the per-issue `Op` clone and ID indirection.
///
/// All cores receive the same `args`; memory is laid out from
/// `threads[0]`'s object table and initialized by `init`.
///
/// # Errors
///
/// - [`ExecError::InvalidConfig`] when `threads` is empty or
///   [`MachineConfig::validate`] rejects the machine;
/// - [`ExecError::Deadlock`] when no core makes progress for an entire
///   no-progress window (every latency in the machine is far smaller);
/// - [`ExecError::OutOfFuel`] when `config.max_cycles` elapses;
/// - [`ExecError::MemoryFault`] on wild accesses.
pub fn simulate_reference(
    threads: &[Function],
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &MachineConfig,
) -> Result<SimResult, ExecError> {
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    config.validate().map_err(ExecError::InvalidConfig)?;
    check_queue_ids(threads, config.sa.num_queues)?;
    let layout = MemoryLayout::of(&threads[0]);
    let mut memory = Memory::for_layout(&layout)?;
    init(&layout, &mut memory);

    let ncores = threads.len();
    let mut cores: Vec<Core> = threads.iter().map(|f| Core::new(f, args, &layout)).collect();
    for (f, _) in threads.iter().zip(&cores) {
        if args.len() < f.params.len() {
            return Err(ExecError::MissingArguments);
        }
    }
    let mut hierarchy = Hierarchy::new(ncores, config);
    let mut sa = SyncArray::new(config.sa.num_queues, &config.sa.depths, config.sa.latency);
    let mut output = Vec::new();
    let mut return_value = None;
    let mut hits = [0u64; 4];

    let mut cycle: u64 = 0;
    let mut last_progress: u64 = 0;
    const NO_PROGRESS_WINDOW: u64 = 100_000;

    while cores.iter().any(|c| !c.finished) {
        if cycle >= config.max_cycles {
            return Err(ExecError::OutOfFuel);
        }
        if cycle - last_progress > NO_PROGRESS_WINDOW {
            return Err(ExecError::Deadlock(deadlock_info(&cores, threads, &sa, cycle)));
        }
        let mut sa_ports_left = config.sa.ports;
        // Rotate the start core for SA-port fairness.
        for k in 0..ncores {
            let ci = (k + cycle as usize % ncores) % ncores;
            let progressed = issue_core(
                ci,
                &mut cores,
                threads,
                &mut memory,
                &mut hierarchy,
                &mut sa,
                &mut sa_ports_left,
                &mut output,
                &mut return_value,
                &mut hits,
                config,
                cycle,
            )?;
            if progressed {
                last_progress = cycle;
            }
        }
        cycle += 1;
    }

    let cycles = cores.iter().map(|c| c.stats.finished_at).max().unwrap_or(cycle);
    Ok(SimResult {
        cycles,
        cores: cores.into_iter().map(|c| c.stats).collect(),
        output,
        return_value,
        hits_l1: hits[0],
        hits_l2: hits[1],
        hits_l3: hits[2],
        hits_mem: hits[3],
        engine_steps: cycle,
        skipped_cycles: 0,
    })
}

/// Rejects programs whose communication instructions target a queue the
/// synchronization array does not have, *before* the first cycle runs.
/// Without this, a bad queue id only surfaced as
/// [`ExecError::BadQueue`] when (and if) the instruction issued
/// mid-simulation.
pub(crate) fn check_queue_ids(threads: &[Function], num_queues: usize) -> Result<(), ExecError> {
    for f in threads {
        for b in f.blocks() {
            for i in f.block(b).all_instrs() {
                let q = match *f.instr(i) {
                    Op::Produce { queue, .. }
                    | Op::Consume { queue, .. }
                    | Op::ProduceSync { queue }
                    | Op::ConsumeSync { queue } => queue,
                    _ => continue,
                };
                if q.index() >= num_queues {
                    return Err(ExecError::InvalidConfig(format!(
                        "{i:?} targets queue {} but the synchronization array has {num_queues} queues",
                        q.0
                    )));
                }
            }
        }
    }
    Ok(())
}

fn sa_overflow() -> String {
    "synchronization array produce overran the configured queue depth".to_string()
}

/// Attributes a no-progress timeout to the first unfinished core whose
/// next operation is provably queue-blocked: a produce against a full
/// queue, a `consume.sync` against an empty one, or an operand still
/// pending on an outstanding consume delivery. Mirrors the decoded
/// engine's attribution decision-for-decision.
fn deadlock_info(
    cores: &[Core],
    threads: &[Function],
    sa: &SyncArray,
    now: u64,
) -> Option<DeadlockInfo> {
    for (ci, core) in cores.iter().enumerate() {
        if core.finished {
            continue;
        }
        let f = &threads[ci];
        let Ok(instr) = core.current_instr(f) else { continue };
        let op = f.instr(instr);
        match *op {
            Op::Produce { queue, .. } | Op::ProduceSync { queue }
                if queue.index() < sa.len() && !sa.can_produce(queue.index()) =>
            {
                return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ProduceFull });
            }
            Op::ConsumeSync { queue }
                if queue.index() < sa.len() && !sa.has_visible_entry(queue.index(), now) =>
            {
                return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ConsumeEmpty });
            }
            _ => {}
        }
        for r in op.uses() {
            if core.ready[r.index()] == u64::MAX {
                if let Some(queue) = core.pending_queue[r.index()] {
                    return Some(DeadlockInfo { core: ci, queue, op: BlockedOp::ConsumeEmpty });
                }
            }
        }
    }
    None
}

/// Issues as many instructions as possible on core `ci` this cycle;
/// returns whether at least one instruction issued.
#[allow(clippy::too_many_arguments)]
fn issue_core(
    ci: usize,
    cores: &mut [Core],
    threads: &[Function],
    memory: &mut Memory,
    hierarchy: &mut Hierarchy,
    sa: &mut SyncArray,
    sa_ports_left: &mut usize,
    output: &mut Vec<i64>,
    return_value: &mut Option<i64>,
    hits: &mut [u64; 4],
    config: &MachineConfig,
    now: u64,
) -> Result<bool, ExecError> {
    let f = &threads[ci];
    if cores[ci].fetch_stalled_until > now {
        cores[ci].stats.record_stall(StallReason::Mispredict);
        return Ok(false);
    }
    let mut issued = 0usize;
    let mut used = [0usize; 4]; // alu, mem, fp, branch
    let limits = [config.alu_units, config.mem_ports, config.fp_units, config.branch_units];
    let mut progressed = false;

    while !cores[ci].finished && issued < config.issue_width {
        let instr = cores[ci].current_instr(f)?;
        let op = f.instr(instr).clone();
        let unit = unit_of(&op);
        let ui = unit as usize;
        if used[ui] >= limits[ui] {
            cores[ci].stats.record_stall(StallReason::Structural);
            break;
        }
        if !cores[ci].operands_ready(&op, now) {
            cores[ci].stats.record_stall(StallReason::Operand);
            break;
        }
        // SA port check for communication instructions.
        if op.is_communication()
            && *sa_ports_left == 0 {
                cores[ci].stats.record_stall(StallReason::SaPort);
                break;
            }
        let mut end_group = false;
        match op {
            Op::Const(d, v) => {
                cores[ci].write(d, v, now + 1);
                cores[ci].advance();
            }
            Op::Lea(d, obj, off) => {
                let v = cores[ci].lea(obj, off);
                cores[ci].write(d, v, now + 1);
                cores[ci].advance();
            }
            Op::Bin(b, d, x, y) => {
                let v = b.eval(cores[ci].operand(x), cores[ci].operand(y));
                let lat = exec_latency(&op);
                cores[ci].write(d, v, now + lat);
                cores[ci].advance();
            }
            Op::Un(u, d, x) => {
                let v = u.eval(cores[ci].operand(x));
                cores[ci].write(d, v, now + 1);
                cores[ci].advance();
            }
            Op::Load(d, a) => {
                if cores[ci].outstanding_loads(now) >= 16 {
                    cores[ci].stats.record_stall(StallReason::LoadLimit);
                    break;
                }
                let cell = cores[ci].cell_addr(a);
                let v = memory.read(cell)?;
                let (lat, level) = hierarchy.load(ci, cores[ci].byte_addr(a) as u64);
                hits[match level {
                    HitLevel::L1 => 0,
                    HitLevel::L2 => 1,
                    HitLevel::L3 => 2,
                    HitLevel::Memory => 3,
                }] += 1;
                let ready = now + lat;
                cores[ci].write(d, v, ready);
                cores[ci].inflight_loads.push(ready);
                cores[ci].advance();
            }
            Op::Store(a, v) => {
                let cell = cores[ci].cell_addr(a);
                let value = cores[ci].operand(v);
                memory.write(cell, value)?;
                let _ = hierarchy.store(ci, cores[ci].byte_addr(a) as u64);
                cores[ci].advance();
            }
            Op::Output(v) => {
                output.push(cores[ci].operand(v));
                cores[ci].advance();
            }
            Op::Produce { queue, value } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(instr));
                }
                if !sa.can_produce(queue.index()) {
                    cores[ci].stats.record_stall(StallReason::QueueFull);
                    break;
                }
                *sa_ports_left -= 1;
                let v = cores[ci].operand(value);
                match sa.produce(queue.index(), v, now) {
                    Ok(Some(d)) => {
                        if let Some(dst) = d.pending.dst {
                            cores[d.pending.core]
                                .deliver(dst, d.pending.token, d.value, d.ready_at);
                        }
                    }
                    Ok(None) => {}
                    // `can_produce` held above; losing the value here
                    // would corrupt the run, so refuse to continue.
                    Err(_) => return Err(ExecError::InvalidConfig(sa_overflow())),
                }
                cores[ci].stats.communication += 1;
                cores[ci].advance();
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            Op::Consume { dst, queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(instr));
                }
                *sa_ports_left -= 1;
                let token = cores[ci].mark_pending(dst, queue);
                let pending = PendingConsume { core: ci, dst: Some(dst), token };
                if let Ok((v, ready)) = sa.consume(queue.index(), now, pending) {
                    cores[ci].deliver(dst, token, v, ready);
                }
                cores[ci].stats.communication += 1;
                cores[ci].advance();
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            Op::ProduceSync { queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(instr));
                }
                if !sa.can_produce(queue.index()) {
                    cores[ci].stats.record_stall(StallReason::QueueFull);
                    break;
                }
                *sa_ports_left -= 1;
                if sa.produce(queue.index(), 1, now).is_err() {
                    return Err(ExecError::InvalidConfig(sa_overflow()));
                }
                cores[ci].stats.synchronization += 1;
                cores[ci].advance();
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            Op::ConsumeSync { queue } => {
                if queue.index() >= sa.len() {
                    return Err(ExecError::BadQueue(instr));
                }
                // Acquire semantics: block issue until the token is
                // visible.
                if !sa.has_visible_entry(queue.index(), now) {
                    cores[ci].stats.record_stall(StallReason::QueueEmpty);
                    break;
                }
                *sa_ports_left -= 1;
                // Gated on `has_visible_entry` above; an empty pop is
                // harmless but counts as no token consumed.
                let _ = sa.pop_token(queue.index(), now);
                cores[ci].stats.synchronization += 1;
                cores[ci].advance();
                issued += 1;
                used[ui] += 1;
                progressed = true;
                continue;
            }
            Op::Branch { cond, then_bb, else_bb } => {
                let taken = cores[ci].regs[cond.index()] != 0;
                // Static backward-taken/forward-not-taken prediction:
                // predict taken iff the taken target does not move
                // forward in block order (a loop back edge).
                if let crate::config::BranchModel::StaticBtfn { penalty } = config.branch_model {
                    let predict_taken = then_bb <= cores[ci].block;
                    if predict_taken != taken {
                        cores[ci].stats.mispredicts += 1;
                        cores[ci].fetch_stalled_until = now + penalty;
                    }
                }
                cores[ci].jump_to(if taken { then_bb } else { else_bb });
                end_group = true;
            }
            Op::Jump(t) => {
                cores[ci].jump_to(t);
                end_group = true;
            }
            Op::Ret(v) => {
                if let Some(v) = v {
                    *return_value = Some(cores[ci].operand(v));
                }
                cores[ci].finished = true;
                cores[ci].stats.finished_at = now + 1;
                end_group = true;
            }
            Op::Nop => {
                cores[ci].advance();
            }
        }
        cores[ci].stats.computation += 1;
        issued += 1;
        used[ui] += 1;
        progressed = true;
        if end_group {
            break; // simple front end: nothing issues past a taken redirect
        }
    }
    Ok(progressed)
}
