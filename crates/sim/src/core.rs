//! One in-order, multi-issue, stall-on-use core.

use gmt_ir::interp::{ExecError, MemoryLayout};
use gmt_ir::{AddrMode, BlockId, Function, InstrId, Op, Operand, QueueId, Reg};

/// Why a core could not issue its next instruction this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// A source operand was not ready (stall-on-use).
    Operand,
    /// A structural resource (issue slot / FU) was exhausted.
    Structural,
    /// The synchronization array ports were exhausted.
    SaPort,
    /// A produce found its queue full.
    QueueFull,
    /// A `consume.sync` waited for its token.
    QueueEmpty,
    /// The outstanding-load limit was reached.
    LoadLimit,
    /// The front end was refilling after a branch mispredict.
    Mispredict,
}

impl StallReason {
    /// Stable kebab-case label used in trace output and reports.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Operand => "operand",
            StallReason::Structural => "structural",
            StallReason::SaPort => "sa-port",
            StallReason::QueueFull => "queue-full",
            StallReason::QueueEmpty => "queue-empty",
            StallReason::LoadLimit => "load-limit",
            StallReason::Mispredict => "mispredict",
        }
    }
}

/// Issue statistics of one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Computation instructions issued.
    pub computation: u64,
    /// Register communication instructions issued.
    pub communication: u64,
    /// Memory synchronization instructions issued.
    pub synchronization: u64,
    /// Cycle at which the core retired its `ret`.
    pub finished_at: u64,
    /// Stall cycles by cause.
    pub stall_operand: u64,
    /// See [`StallReason::Structural`].
    pub stall_structural: u64,
    /// See [`StallReason::SaPort`].
    pub stall_sa_port: u64,
    /// See [`StallReason::QueueFull`].
    pub stall_queue_full: u64,
    /// See [`StallReason::QueueEmpty`].
    pub stall_queue_empty: u64,
    /// See [`StallReason::LoadLimit`].
    pub stall_load_limit: u64,
    /// See [`StallReason::Mispredict`].
    pub stall_mispredict: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
}

impl CoreStats {
    /// Total instructions issued.
    pub fn total_instrs(&self) -> u64 {
        self.computation + self.communication + self.synchronization
    }

    /// Records a stall.
    pub fn record_stall(&mut self, r: StallReason) {
        self.record_stalls(r, 1);
    }

    /// Bulk-credits `n` stall cycles of one reason — what the
    /// event-driven engine's fast-forward uses to account for a whole
    /// skipped window in one write. `record_stalls(r, n)` must leave
    /// the counters exactly as `n` calls to
    /// [`CoreStats::record_stall`] would.
    pub fn record_stalls(&mut self, r: StallReason, n: u64) {
        match r {
            StallReason::Operand => self.stall_operand += n,
            StallReason::Structural => self.stall_structural += n,
            StallReason::SaPort => self.stall_sa_port += n,
            StallReason::QueueFull => self.stall_queue_full += n,
            StallReason::QueueEmpty => self.stall_queue_empty += n,
            StallReason::LoadLimit => self.stall_load_limit += n,
            StallReason::Mispredict => self.stall_mispredict += n,
        }
    }
}

/// Architectural + microarchitectural state of one core. Borrows the
/// run's shared [`MemoryLayout`] rather than cloning it per core.
#[derive(Clone, Debug)]
pub struct Core<'a> {
    /// Register values.
    pub regs: Vec<i64>,
    /// Cycle at which each register's value becomes usable;
    /// `u64::MAX` marks a pending (outstanding consume) register.
    pub ready: Vec<u64>,
    /// Monotonic write token per register, guarding late consume
    /// deliveries against intervening redefinitions.
    pub token: Vec<u64>,
    /// Queue each pending register's outstanding consume issued
    /// against (deadlock attribution only).
    pub pending_queue: Vec<Option<QueueId>>,
    next_token: u64,
    /// Current block.
    pub block: BlockId,
    /// Position within the block (== body length means terminator).
    pub pos: usize,
    /// Whether the core has retired its return.
    pub finished: bool,
    /// Loads still in flight (dest not yet ready).
    pub inflight_loads: Vec<u64>,
    /// The front end is refilling after a branch mispredict until this
    /// cycle.
    pub fetch_stalled_until: u64,
    /// Statistics.
    pub stats: CoreStats,
    layout: &'a MemoryLayout,
}

impl<'a> Core<'a> {
    /// A core about to execute `f` with the given arguments.
    pub fn new(f: &Function, args: &[i64], layout: &'a MemoryLayout) -> Core<'a> {
        let n = f.num_regs() as usize;
        let mut regs = vec![0i64; n];
        for (r, &v) in f.params.iter().zip(args) {
            regs[r.index()] = v;
        }
        Core {
            regs,
            ready: vec![0; n],
            token: vec![0; n],
            pending_queue: vec![None; n],
            next_token: 1,
            block: f.entry(),
            pos: 0,
            finished: false,
            inflight_loads: Vec::new(),
            fetch_stalled_until: 0,
            stats: CoreStats::default(),
            layout,
        }
    }

    /// The instruction the core will issue next.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidConfig`] when the core sits at the end of a
    /// terminator-less block (only possible on unverified functions).
    pub fn current_instr(&self, f: &Function) -> Result<InstrId, ExecError> {
        let block = f.block(self.block);
        if self.pos < block.instrs.len() {
            Ok(block.instrs[self.pos])
        } else {
            block.terminator.ok_or_else(|| gmt_ir::interp::unterminated(self.block))
        }
    }

    /// Whether all source registers of `op` are ready at `now`.
    pub fn operands_ready(&self, op: &Op, now: u64) -> bool {
        op.uses().iter().all(|r| self.ready[r.index()] <= now)
    }

    /// The value of an operand (operands are checked ready first).
    pub fn operand(&self, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    /// The effective byte address of a memory operand (cells are 8
    /// bytes wide for cache indexing).
    pub fn byte_addr(&self, a: AddrMode) -> i64 {
        self.cell_addr(a).wrapping_mul(8)
    }

    /// The effective cell address of a memory operand.
    pub fn cell_addr(&self, a: AddrMode) -> i64 {
        self.regs[a.base.index()].wrapping_add(a.offset)
    }

    /// Resolves a `lea`.
    pub fn lea(&self, obj: gmt_ir::ObjectId, off: i64) -> i64 {
        self.layout.base(obj) as i64 + off
    }

    /// Writes `value` into `dst`, ready at `ready_at`; returns the
    /// write token.
    pub fn write(&mut self, dst: Reg, value: i64, ready_at: u64) -> u64 {
        self.regs[dst.index()] = value;
        self.ready[dst.index()] = ready_at;
        self.pending_queue[dst.index()] = None;
        let t = self.next_token;
        self.next_token += 1;
        self.token[dst.index()] = t;
        t
    }

    /// Marks `dst` pending (outstanding consume from `queue`); returns
    /// the token.
    pub fn mark_pending(&mut self, dst: Reg, queue: QueueId) -> u64 {
        self.ready[dst.index()] = u64::MAX;
        self.pending_queue[dst.index()] = Some(queue);
        let t = self.next_token;
        self.next_token += 1;
        self.token[dst.index()] = t;
        t
    }

    /// Applies a late consume delivery if the register has not been
    /// redefined since the consume issued.
    pub fn deliver(&mut self, dst: Reg, token: u64, value: i64, ready_at: u64) {
        if self.token[dst.index()] == token {
            self.regs[dst.index()] = value;
            self.ready[dst.index()] = ready_at;
            self.pending_queue[dst.index()] = None;
        }
    }

    /// Advances past the current (non-terminator) instruction.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// Jumps to the start of `target`.
    pub fn jump_to(&mut self, target: BlockId) {
        self.block = target;
        self.pos = 0;
    }

    /// Drops completed loads from the in-flight set and returns the
    /// number still outstanding.
    pub fn outstanding_loads(&mut self, now: u64) -> usize {
        self.inflight_loads.retain(|&t| t > now);
        self.inflight_loads.len()
    }
}
