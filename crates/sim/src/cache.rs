//! Timing-only cache hierarchy with snoop write-invalidate coherence.
//!
//! Values live in the shared functional memory; caches track only tags
//! and LRU state to compute access latencies. This "timing-directed,
//! functional-first" split is sound here because every program the
//! simulator runs is properly synchronized by construction (MTCG
//! inserts synchronization for every inter-thread memory dependence),
//! so data values never depend on cache timing.

use crate::config::CacheConfig;

/// One set-associative, LRU, tag-only cache.
///
/// Storage is a flat `set * ways + way` array and the addr→(set, tag)
/// split is precomputed as shift/mask when the geometry is a power of
/// two (the common case), so the per-access cost is a masked shift and
/// one short linear scan — no divisions on the hot path.
#[derive(Clone, Debug)]
pub struct Cache {
    latency: u64,
    ways: usize,
    num_sets: u64,
    line_bytes: u64,
    /// `Some(shift)` when `line_bytes` is a power of two.
    line_shift: Option<u32>,
    /// `Some(mask)` when `num_sets` is a power of two.
    set_mask: Option<u64>,
    /// `tags[set * ways + way]`, holding `tag + 1` (0 = empty way) so
    /// a fresh cache is all-zero and the allocation stays a lazy
    /// `calloc` — no eager touch of hundreds of KB per simulation.
    tags: Vec<u64>,
    lru: Vec<u64>,
    tick: u64,
    /// Statistics.
    pub hits: u64,
    /// Statistics.
    pub misses: u64,
}

fn pow2_log(v: u64) -> Option<u32> {
    (v > 0 && v.is_power_of_two()).then(|| v.trailing_zeros())
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.num_sets() as usize;
        let ways = config.assoc as usize;
        let line_bytes = config.line_bytes.max(1);
        Cache {
            latency: config.latency,
            ways,
            num_sets: config.num_sets(),
            line_bytes,
            line_shift: pow2_log(line_bytes),
            set_mask: pow2_log(config.num_sets()).map(|s| (1u64 << s) - 1),
            tags: vec![0; sets * ways],
            lru: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.line_bytes,
        };
        match self.set_mask {
            Some(m) => ((line & m) as usize, line >> m.count_ones()),
            None => ((line % self.num_sets) as usize, line / self.num_sets),
        }
    }

    /// Probes for `addr`; returns whether it hit, and touches LRU.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        for way in base..base + self.ways {
            if self.tags[way] == tag + 1 {
                self.lru[way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Fills the line containing `addr`, evicting the LRU way.
    pub fn fill(&mut self, addr: u64) {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        // Already present (racing fill)?
        if self.tags[base..base + self.ways].contains(&(tag + 1)) {
            return;
        }
        // A zero-way cache (assoc 0 — rejected by `validate`, but this
        // type stays total anyway) simply never holds lines.
        let Some(victim) = (base..base + self.ways)
            .min_by_key(|&w| ((self.tags[w] != 0) as u64, self.lru[w]))
        else {
            return;
        };
        self.tags[victim] = tag + 1;
        self.lru[victim] = self.tick;
    }

    /// Invalidates the line containing `addr` (snoop hit from the other
    /// core's write). Returns whether a line was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        for way in base..base + self.ways {
            if self.tags[way] == tag + 1 {
                self.tags[way] = 0;
                return true;
            }
        }
        false
    }

    /// The hit latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

/// The memory hierarchy of one machine: per-core private L1D/L2, a
/// shared L3, and main memory.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Private (L1, L2) per core.
    pub private: Vec<(Cache, Cache)>,
    /// Shared L3.
    pub l3: Cache,
    mem_latency: u64,
}

/// Per-access outcome for statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by main memory.
    Memory,
}

impl Hierarchy {
    /// Builds the hierarchy for `cores` cores.
    pub fn new(cores: usize, config: &crate::config::MachineConfig) -> Hierarchy {
        Hierarchy {
            private: (0..cores)
                .map(|_| (Cache::new(config.l1d), Cache::new(config.l2)))
                .collect(),
            l3: Cache::new(config.l3),
            mem_latency: config.mem_latency,
        }
    }

    /// A load by `core` at byte address `addr`: returns (latency, level).
    pub fn load(&mut self, core: usize, addr: u64) -> (u64, HitLevel) {
        let (l1, l2) = &mut self.private[core];
        if l1.access(addr) {
            return (l1.latency(), HitLevel::L1);
        }
        if l2.access(addr) {
            let lat = l1.latency() + l2.latency();
            self.private[core].0.fill(addr);
            return (lat, HitLevel::L2);
        }
        let (lat, level) = if self.l3.access(addr) {
            (self.l3.latency(), HitLevel::L3)
        } else {
            self.l3.fill(addr);
            (self.mem_latency, HitLevel::Memory)
        };
        let (l1, l2) = &mut self.private[core];
        l1.fill(addr);
        l2.fill(addr);
        (lat, level)
    }

    /// A store by `core`: write-through L1 with write-allocate in L2;
    /// snoop-invalidates the line in every other core's private caches.
    /// Stores retire through a store buffer, so the returned latency is
    /// the L1 latency regardless of where the line lives.
    pub fn store(&mut self, core: usize, addr: u64) -> u64 {
        for (other, (l1, l2)) in self.private.iter_mut().enumerate() {
            if other != core {
                l1.invalidate(addr);
                l2.invalidate(addr);
            }
        }
        let (l1, l2) = &mut self.private[core];
        if !l1.access(addr) {
            l1.fill(addr);
        }
        if !l2.access(addr) {
            l2.fill(addr);
        }
        if !self.l3.access(addr) {
            self.l3.fill(addr);
        }
        self.private[core].0.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 });
        assert!(!c.access(0));
        c.fill(0);
        assert!(c.access(0));
        assert!(c.access(8), "same line");
        assert!(!c.access(64), "next line");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction() {
        // 2-way set: fill three conflicting lines, first one evicted.
        let cfg = CacheConfig { size_bytes: 128, assoc: 2, line_bytes: 64, latency: 1 };
        assert_eq!(cfg.num_sets(), 1);
        let mut c = Cache::new(cfg);
        c.fill(0);
        c.fill(64);
        assert!(c.access(0)); // touch 0 so 64 is LRU
        c.fill(128);
        assert!(c.access(0));
        assert!(!c.access(64), "LRU way evicted");
    }

    #[test]
    fn hierarchy_miss_then_hit() {
        let cfg = MachineConfig::default();
        let mut h = Hierarchy::new(2, &cfg);
        let (lat, level) = h.load(0, 0x1000);
        assert_eq!(level, HitLevel::Memory);
        assert_eq!(lat, cfg.mem_latency);
        let (lat2, level2) = h.load(0, 0x1000);
        assert_eq!(level2, HitLevel::L1);
        assert_eq!(lat2, cfg.l1d.latency);
        // Other core misses its private caches but hits shared L3.
        let (_, level3) = h.load(1, 0x1000);
        assert_eq!(level3, HitLevel::L3);
    }

    #[test]
    fn store_invalidates_other_core() {
        let cfg = MachineConfig::default();
        let mut h = Hierarchy::new(2, &cfg);
        let _ = h.load(0, 0x40);
        assert_eq!(h.load(0, 0x40).1, HitLevel::L1);
        h.store(1, 0x40);
        // Core 0's copy was invalidated; next load refetches below L1.
        assert_ne!(h.load(0, 0x40).1, HitLevel::L1);
    }

    #[test]
    fn zero_way_cache_never_holds_lines() {
        let mut c = Cache::new(CacheConfig { size_bytes: 0, assoc: 0, line_bytes: 0, latency: 1 });
        c.fill(0);
        assert!(!c.access(0));
        assert!(!c.invalidate(0));
    }

    #[test]
    fn invalidate_reports_presence() {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 });
        c.fill(0);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
    }
}
