//! Timing-only cache hierarchy with snoop write-invalidate coherence.
//!
//! Values live in the shared functional memory; caches track only tags
//! and LRU state to compute access latencies. This "timing-directed,
//! functional-first" split is sound here because every program the
//! simulator runs is properly synchronized by construction (MTCG
//! inserts synchronization for every inter-thread memory dependence),
//! so data values never depend on cache timing.

use crate::config::CacheConfig;

/// One set-associative, LRU, tag-only cache.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set][way]` = Some(tag), with `lru[set][way]` as timestamp.
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<Vec<u64>>,
    tick: u64,
    /// Statistics.
    pub hits: u64,
    /// Statistics.
    pub misses: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.num_sets() as usize;
        let ways = config.assoc as usize;
        Cache {
            config,
            tags: vec![vec![None; ways]; sets],
            lru: vec![vec![0; ways]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes.max(1);
        let set = (line % self.config.num_sets()) as usize;
        let tag = line / self.config.num_sets();
        (set, tag)
    }

    /// Probes for `addr`; returns whether it hit, and touches LRU.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        for way in 0..self.tags[set].len() {
            if self.tags[set][way] == Some(tag) {
                self.lru[set][way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Fills the line containing `addr`, evicting the LRU way.
    pub fn fill(&mut self, addr: u64) {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        // Already present (racing fill)?
        if self.tags[set].contains(&Some(tag)) {
            return;
        }
        // A zero-way cache (assoc 0 — rejected by `validate`, but this
        // type stays total anyway) simply never holds lines.
        let Some(victim) = (0..self.tags[set].len())
            .min_by_key(|&w| (self.tags[set][w].is_some() as u64, self.lru[set][w]))
        else {
            return;
        };
        self.tags[set][victim] = Some(tag);
        self.lru[set][victim] = self.tick;
    }

    /// Invalidates the line containing `addr` (snoop hit from the other
    /// core's write). Returns whether a line was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for way in 0..self.tags[set].len() {
            if self.tags[set][way] == Some(tag) {
                self.tags[set][way] = None;
                return true;
            }
        }
        false
    }

    /// The hit latency.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }
}

/// The memory hierarchy of one machine: per-core private L1D/L2, a
/// shared L3, and main memory.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Private (L1, L2) per core.
    pub private: Vec<(Cache, Cache)>,
    /// Shared L3.
    pub l3: Cache,
    mem_latency: u64,
}

/// Per-access outcome for statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by main memory.
    Memory,
}

impl Hierarchy {
    /// Builds the hierarchy for `cores` cores.
    pub fn new(cores: usize, config: &crate::config::MachineConfig) -> Hierarchy {
        Hierarchy {
            private: (0..cores)
                .map(|_| (Cache::new(config.l1d), Cache::new(config.l2)))
                .collect(),
            l3: Cache::new(config.l3),
            mem_latency: config.mem_latency,
        }
    }

    /// A load by `core` at byte address `addr`: returns (latency, level).
    pub fn load(&mut self, core: usize, addr: u64) -> (u64, HitLevel) {
        let (l1, l2) = &mut self.private[core];
        if l1.access(addr) {
            return (l1.latency(), HitLevel::L1);
        }
        if l2.access(addr) {
            let lat = l1.latency() + l2.latency();
            self.private[core].0.fill(addr);
            return (lat, HitLevel::L2);
        }
        let (lat, level) = if self.l3.access(addr) {
            (self.l3.latency(), HitLevel::L3)
        } else {
            self.l3.fill(addr);
            (self.mem_latency, HitLevel::Memory)
        };
        let (l1, l2) = &mut self.private[core];
        l1.fill(addr);
        l2.fill(addr);
        (lat, level)
    }

    /// A store by `core`: write-through L1 with write-allocate in L2;
    /// snoop-invalidates the line in every other core's private caches.
    /// Stores retire through a store buffer, so the returned latency is
    /// the L1 latency regardless of where the line lives.
    pub fn store(&mut self, core: usize, addr: u64) -> u64 {
        for (other, (l1, l2)) in self.private.iter_mut().enumerate() {
            if other != core {
                l1.invalidate(addr);
                l2.invalidate(addr);
            }
        }
        let (l1, l2) = &mut self.private[core];
        if !l1.access(addr) {
            l1.fill(addr);
        }
        if !l2.access(addr) {
            l2.fill(addr);
        }
        if !self.l3.access(addr) {
            self.l3.fill(addr);
        }
        self.private[core].0.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 });
        assert!(!c.access(0));
        c.fill(0);
        assert!(c.access(0));
        assert!(c.access(8), "same line");
        assert!(!c.access(64), "next line");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction() {
        // 2-way set: fill three conflicting lines, first one evicted.
        let cfg = CacheConfig { size_bytes: 128, assoc: 2, line_bytes: 64, latency: 1 };
        assert_eq!(cfg.num_sets(), 1);
        let mut c = Cache::new(cfg);
        c.fill(0);
        c.fill(64);
        assert!(c.access(0)); // touch 0 so 64 is LRU
        c.fill(128);
        assert!(c.access(0));
        assert!(!c.access(64), "LRU way evicted");
    }

    #[test]
    fn hierarchy_miss_then_hit() {
        let cfg = MachineConfig::default();
        let mut h = Hierarchy::new(2, &cfg);
        let (lat, level) = h.load(0, 0x1000);
        assert_eq!(level, HitLevel::Memory);
        assert_eq!(lat, cfg.mem_latency);
        let (lat2, level2) = h.load(0, 0x1000);
        assert_eq!(level2, HitLevel::L1);
        assert_eq!(lat2, cfg.l1d.latency);
        // Other core misses its private caches but hits shared L3.
        let (_, level3) = h.load(1, 0x1000);
        assert_eq!(level3, HitLevel::L3);
    }

    #[test]
    fn store_invalidates_other_core() {
        let cfg = MachineConfig::default();
        let mut h = Hierarchy::new(2, &cfg);
        let _ = h.load(0, 0x40);
        assert_eq!(h.load(0, 0x40).1, HitLevel::L1);
        h.store(1, 0x40);
        // Core 0's copy was invalidated; next load refetches below L1.
        assert_ne!(h.load(0, 0x40).1, HitLevel::L1);
    }

    #[test]
    fn zero_way_cache_never_holds_lines() {
        let mut c = Cache::new(CacheConfig { size_bytes: 0, assoc: 0, line_bytes: 0, latency: 1 });
        c.fill(0);
        assert!(!c.access(0));
        assert!(!c.invalidate(0));
    }

    #[test]
    fn invalidate_reports_presence() {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 });
        c.fill(0);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
    }
}
