//! Cycle-level structured tracing of the decoded engine.
//!
//! The paper's evaluation is an argument about *where cycles go*:
//! communication instructions, queue-full/queue-empty stalls, and the
//! synchronization-array interconnect. End-of-run [`CoreStats`]
//! aggregates cannot answer "which queue backed up, when" — this
//! module can. The decoded engine
//! ([`simulate_decoded_traced`](crate::simulate_decoded_traced))
//! narrates every issue, stall, and queue operation to a [`TraceSink`];
//! the sink decides what to keep.
//!
//! Tracing is **zero-cost when off**: the engine is generic over the
//! sink and gates every event behind the associated constant
//! [`TraceSink::ENABLED`]. The [`NoTrace`] sink sets it to `false`, so
//! the untraced instantiation compiles to exactly the code it had
//! before this module existed — the CI golden-figure diff and the
//! `exec_throughput` bench hold that path to the pre-trace behavior.
//!
//! Two sinks ship with the crate:
//!
//! - [`TraceAggregator`] — a bounded ring buffer of recent events plus
//!   running tables: a per-core *cycle attribution* (every cycle of
//!   every core classified as compute, one of the [`StallReason`]s, or
//!   idle — the decomposition sums exactly to the run's cycle count)
//!   and per-queue communication counters (produces, consumes,
//!   deferred consumes, occupancy high-water mark).
//! - [`ChromeTraceSink`] — emits Chrome-trace-format JSON (the
//!   `chrome://tracing` / Perfetto interchange format): one track per
//!   core carrying compute/stall spans, one counter track per active
//!   queue carrying its occupancy over time.

use crate::core::StallReason;
use crate::sim::SimResult;
use gmt_ir::InstrId;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// The *last-arrival edge* of an issued instruction: which predecessor
/// event determined its issue cycle. The engine derives it from the
/// stall (if any) recorded for the instruction on the cycles before it
/// issued — the constraint that was still unmet latest is the one that
/// set the issue time. [`crate::critpath::CritPathSink`] chains these
/// edges into the run's dynamic critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// No recorded wait: the instruction issued as soon as the in-order
    /// front end reached it. Predecessor: the previous instruction
    /// issued on the same core.
    InOrder,
    /// The last-arriving source operand bound the issue cycle.
    Data {
        /// Per-core issue index of the instruction that wrote the
        /// last-arriving operand (`u64::MAX` when it was never written
        /// — a parameter — in which case the edge degrades to
        /// [`Arrival::InOrder`] semantics).
        writer: u64,
    },
    /// A `consume.sync` waited for the queue's front token to become
    /// visible — the matching produce bound the issue cycle.
    QueueVisible {
        /// The queue waited on.
        queue: u32,
    },
    /// A produce waited for queue space — the consume that freed the
    /// slot bound the issue cycle (backpressure).
    QueueSpace {
        /// The queue waited on.
        queue: u32,
    },
    /// The front end was refilling after a branch mispredict.
    Refill,
    /// A shared-resource stall bound the issue cycle: structural
    /// (FU/issue width), SA request ports, or the outstanding-load
    /// limit.
    Resource(StallReason),
}

/// One engine event. `cycle` is the cycle the event occurred on;
/// `core` is the issuing core's index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction issued on `core` (any kind, including the
    /// communication ops, which additionally raise a queue event).
    Issue {
        /// Cycle of issue.
        cycle: u64,
        /// Issuing core.
        core: usize,
        /// The original-program instruction (pre-decode id).
        src: InstrId,
        /// The last-arrival edge that determined this issue cycle.
        arrival: Arrival,
    },
    /// `core` could not issue its next instruction this cycle.
    Stall {
        /// Cycle of the stall.
        cycle: u64,
        /// Stalled core.
        core: usize,
        /// Why issue stopped.
        reason: StallReason,
        /// The queue involved, for [`StallReason::QueueFull`] and
        /// [`StallReason::QueueEmpty`]; `None` otherwise.
        queue: Option<u32>,
    },
    /// A `produce`/`produce.sync` put a value into `queue` (or handed
    /// it straight to a pending consume).
    Produce {
        /// Cycle of the produce.
        cycle: u64,
        /// Producing core.
        core: usize,
        /// Target queue.
        queue: u32,
        /// Entries in the queue after the operation.
        occupancy: usize,
    },
    /// A `consume`/`consume.sync` took a value from `queue` (or
    /// registered as pending when the queue was empty).
    Consume {
        /// Cycle of the consume.
        cycle: u64,
        /// Consuming core.
        core: usize,
        /// Source queue.
        queue: u32,
        /// Entries in the queue after the operation.
        occupancy: usize,
        /// Whether the queue was empty and the consume went pending
        /// (the register delivery happens later, on the matching
        /// produce).
        deferred: bool,
    },
    /// `core` stalled for the same reason on every cycle of
    /// `from..until` — the event-driven engine's batched form of
    /// [`TraceEvent::Stall`], emitted when the fast-forward skips a
    /// window of dead ticks. The engine emits a per-cycle `Stall` for
    /// the cycle it actually evaluated, then one `StallSpan` covering
    /// the skipped cycles, so `from` always follows a `Stall` of the
    /// same core and reason at `from - 1`.
    StallSpan {
        /// First skipped cycle (inclusive).
        from: u64,
        /// One past the last skipped cycle (exclusive; `until > from`).
        until: u64,
        /// Stalled core.
        core: usize,
        /// Why issue stayed blocked across the whole window.
        reason: StallReason,
        /// The queue involved, for [`StallReason::QueueFull`] and
        /// [`StallReason::QueueEmpty`]; `None` otherwise.
        queue: Option<u32>,
    },
    /// `core` retired its `ret` (`finished_at = cycle + 1`).
    Finish {
        /// Cycle the return issued.
        cycle: u64,
        /// Finishing core.
        core: usize,
    },
}

impl TraceEvent {
    /// The cycle the event occurred on (the first covered cycle for
    /// [`TraceEvent::StallSpan`]).
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Issue { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::Produce { cycle, .. }
            | TraceEvent::Consume { cycle, .. }
            | TraceEvent::Finish { cycle, .. } => cycle,
            TraceEvent::StallSpan { from, .. } => from,
        }
    }
}

/// A consumer of engine events.
///
/// The engine calls [`TraceSink::event`] once per event, in cycle
/// order per core, and [`TraceSink::run_end`] exactly once after the
/// last core retires. Implementations must not assume global cycle
/// monotonicity across cores within a cycle (the engine rotates its
/// core-service order for SA-port fairness).
pub trait TraceSink {
    /// Compile-time switch: when `false` the engine emits no events at
    /// all and the whole tracing layer vanishes from the generated
    /// code. Leave `true` for real sinks.
    const ENABLED: bool = true;

    /// Receives one event.
    fn event(&mut self, ev: &TraceEvent);

    /// Called once, after the run completes, with the final cycle
    /// count (`SimResult::cycles`).
    fn run_end(&mut self, cycles: u64);
}

/// The disabled sink: `ENABLED = false`, every call a no-op. This is
/// what [`simulate`](crate::simulate) and
/// [`simulate_decoded`](crate::simulate_decoded) instantiate the
/// engine with.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: &TraceEvent) {}

    #[inline(always)]
    fn run_end(&mut self, _cycles: u64) {}
}

/// Where one core's cycles went: every cycle of the run is classified
/// as exactly one of these buckets, so the fields sum to the run's
/// total cycle count. This is the per-thread decomposition needed to
/// evaluate a COCO cut: cycles COCO can reclaim show up under
/// `queue_full`/`queue_empty`/`operand`, not `compute`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles on which the core issued at least one instruction.
    pub compute: u64,
    /// Issue blocked on an unready source operand.
    pub operand: u64,
    /// Issue blocked on an exhausted FU or issue slot.
    pub structural: u64,
    /// Issue blocked on the shared SA request ports.
    pub sa_port: u64,
    /// Issue blocked on a full queue (produce backpressure).
    pub queue_full: u64,
    /// Issue blocked waiting for a `consume.sync` token.
    pub queue_empty: u64,
    /// Issue blocked on the outstanding-load limit.
    pub load_limit: u64,
    /// Front end refilling after a branch mispredict.
    pub mispredict: u64,
    /// Cycles after the core retired its `ret` (a finished core waits
    /// for its siblings).
    pub idle: u64,
}

impl CycleAttribution {
    /// Sum of all buckets; equals the run's cycle count.
    pub fn total(&self) -> u64 {
        self.compute
            + self.operand
            + self.structural
            + self.sa_port
            + self.queue_full
            + self.queue_empty
            + self.load_limit
            + self.mispredict
            + self.idle
    }

    /// All stall buckets (everything but `compute` and `idle`).
    pub fn stalled(&self) -> u64 {
        self.total() - self.compute - self.idle
    }

    fn bucket(&mut self, r: StallReason) -> &mut u64 {
        match r {
            StallReason::Operand => &mut self.operand,
            StallReason::Structural => &mut self.structural,
            StallReason::SaPort => &mut self.sa_port,
            StallReason::QueueFull => &mut self.queue_full,
            StallReason::QueueEmpty => &mut self.queue_empty,
            StallReason::LoadLimit => &mut self.load_limit,
            StallReason::Mispredict => &mut self.mispredict,
        }
    }
}

/// Per-queue communication counters observed by a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueTraceStats {
    /// Values produced into the queue.
    pub produces: u64,
    /// Values consumed from the queue.
    pub consumes: u64,
    /// Consumes that found the queue empty and went pending.
    pub deferred_consumes: u64,
    /// Produce attempts stalled on a full queue (cycles, not ops).
    pub full_stall_cycles: u64,
    /// `consume.sync` attempts stalled on an empty queue (cycles).
    pub empty_stall_cycles: u64,
    /// Occupancy high-water mark.
    pub max_occupancy: usize,
}

impl QueueTraceStats {
    /// Whether the queue saw any traffic or contention at all.
    pub fn is_active(&self) -> bool {
        self.produces + self.consumes + self.full_stall_cycles + self.empty_stall_cycles > 0
    }
}

/// Time-weighted occupancy distribution of one queue over the whole
/// run: on what fraction of the run's cycles did the queue hold ≤ N
/// entries. Unlike [`QueueTraceStats::max_occupancy`] (a high-water
/// mark of post-op occupancy, which may last zero cycles), these are
/// dwell-time percentiles — the numbers that say whether a depth-32
/// queue actually *used* its depth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancySummary {
    /// Smallest occupancy level at or below which the queue spent at
    /// least half the run's cycles.
    pub p50: usize,
    /// Smallest occupancy level at or below which the queue spent at
    /// least 95% of the run's cycles.
    pub p95: usize,
    /// Highest occupancy level the queue dwelled at for ≥ 1 cycle.
    pub max: usize,
}

/// Per-queue occupancy-over-time fold: dwell cycles per occupancy
/// level, updated on every queue event (occupancy only changes on
/// produce/consume, so the fold is exact — including under the
/// engine's stall fast-forward, which never skips across a queue op).
#[derive(Clone, Debug, Default)]
struct OccupancyFold {
    last: usize,
    since: u64,
    hist: Vec<u64>,
}

impl OccupancyFold {
    fn observe(&mut self, cycle: u64, occupancy: usize) {
        self.credit(cycle);
        self.last = occupancy;
        self.since = cycle;
    }

    fn credit(&mut self, until: u64) {
        let dwell = until.saturating_sub(self.since);
        if dwell > 0 {
            if self.hist.len() <= self.last {
                self.hist.resize(self.last + 1, 0);
            }
            self.hist[self.last] += dwell;
        }
    }

    fn summary(&self, cycles: u64) -> OccupancySummary {
        let total: u64 = self.hist.iter().sum::<u64>().max(cycles);
        let mut s = OccupancySummary::default();
        let mut cum = 0u64;
        let mut p50_done = false;
        let mut p95_done = false;
        for (level, &dwell) in self.hist.iter().enumerate() {
            cum += dwell;
            if dwell > 0 {
                s.max = level;
            }
            // Levels past the end of the histogram never occurred;
            // cycles before the first event dwell at level 0 and are
            // covered because `since` starts at 0.
            if !p50_done && cum * 2 >= total {
                s.p50 = level;
                p50_done = true;
            }
            if !p95_done && cum * 20 >= total * 19 {
                s.p95 = level;
                p95_done = true;
            }
        }
        s
    }
}

/// What one core did on one cycle, folded from that cycle's events.
/// Issue wins over stall (a core that issued three ops and then hit a
/// structural limit had a compute cycle, not a structural-stall one);
/// among stalls the first recorded reason — the one that actually
/// blocked the *next* instruction — wins.
#[derive(Clone, Copy, Debug)]
enum CycleClass {
    Compute,
    Stalled(StallReason),
}

/// A [`TraceSink`] that keeps a bounded ring buffer of the most recent
/// events and folds the full stream into summary tables:
/// [`CycleAttribution`] per core and [`QueueTraceStats`] per queue.
///
/// The ring buffer bounds memory on arbitrarily long runs — when full,
/// the oldest event is dropped ([`TraceAggregator::dropped_events`]
/// counts how many). The summary tables always cover the *whole* run.
#[derive(Debug)]
pub struct TraceAggregator {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    cores: Vec<CycleAttributionFold>,
    queues: Vec<QueueTraceStats>,
    occ: Vec<OccupancyFold>,
    cycles: u64,
    ended: bool,
}

#[derive(Debug)]
struct CycleAttributionFold {
    attr: CycleAttribution,
    cur: Option<(u64, CycleClass)>,
    finished_at: Option<u64>,
}

impl TraceAggregator {
    /// An aggregator for `ncores` cores and `nqueues` queues keeping at
    /// most `ring_capacity` raw events.
    pub fn new(ncores: usize, nqueues: usize, ring_capacity: usize) -> TraceAggregator {
        TraceAggregator {
            ring: VecDeque::with_capacity(ring_capacity.min(1 << 16)),
            capacity: ring_capacity,
            dropped: 0,
            cores: (0..ncores)
                .map(|_| CycleAttributionFold {
                    attr: CycleAttribution::default(),
                    cur: None,
                    finished_at: None,
                })
                .collect(),
            queues: vec![QueueTraceStats::default(); nqueues],
            occ: vec![OccupancyFold::default(); nqueues],
            cycles: 0,
            ended: false,
        }
    }

    /// The most recent events, oldest first (bounded by the ring
    /// capacity).
    pub fn recent_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Events discarded from the ring because the run outgrew it (the
    /// summary tables still cover them).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Total cycles reported by [`TraceSink::run_end`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The finished per-core cycle attributions. Call after the run;
    /// each attribution's [`CycleAttribution::total`] equals
    /// [`TraceAggregator::cycles`].
    pub fn core_attribution(&self) -> Vec<CycleAttribution> {
        assert!(self.ended, "core_attribution before run_end");
        self.cores.iter().map(|c| c.attr).collect()
    }

    /// The per-queue communication counters.
    pub fn queue_stats(&self) -> &[QueueTraceStats] {
        &self.queues
    }

    /// Time-weighted occupancy percentiles per queue. Call after the
    /// run (the final dwell is closed by [`TraceSink::run_end`]).
    pub fn queue_occupancy(&self) -> Vec<OccupancySummary> {
        assert!(self.ended, "queue_occupancy before run_end");
        self.occ.iter().map(|o| o.summary(self.cycles)).collect()
    }

    fn push_ring(&mut self, ev: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*ev);
    }

    fn fold_core(&mut self, core: usize, cycle: u64, class: CycleClass) {
        let fold = &mut self.cores[core];
        match fold.cur {
            None => fold.cur = Some((cycle, class)),
            Some((c, prev)) if c == cycle => {
                // Issue wins over stall; first stall reason wins
                // among stalls.
                if matches!(prev, CycleClass::Stalled(_))
                    && matches!(class, CycleClass::Compute)
                {
                    fold.cur = Some((c, class));
                }
            }
            Some((c, prev)) => {
                debug_assert!(c < cycle, "events arrive in cycle order per core");
                Self::commit(&mut fold.attr, prev);
                fold.cur = Some((cycle, class));
            }
        }
    }

    fn commit(attr: &mut CycleAttribution, class: CycleClass) {
        Self::commit_n(attr, class, 1);
    }

    fn commit_n(attr: &mut CycleAttribution, class: CycleClass, n: u64) {
        match class {
            CycleClass::Compute => attr.compute += n,
            CycleClass::Stalled(r) => *attr.bucket(r) += n,
        }
    }

    /// Batched form of [`TraceAggregator::fold_core`] for a
    /// [`TraceEvent::StallSpan`]: the span's cycles are all one class
    /// and can never be reclassified (the engine evaluated nothing on
    /// them), so they commit directly. Any cycle still pending in `cur`
    /// precedes the span and commits first.
    fn fold_core_span(&mut self, core: usize, from: u64, until: u64, class: CycleClass) {
        let fold = &mut self.cores[core];
        if let Some((c, prev)) = fold.cur.take() {
            debug_assert!(c < from, "span starts after the committed cycles");
            Self::commit(&mut fold.attr, prev);
        }
        Self::commit_n(&mut fold.attr, class, until.saturating_sub(from));
    }
}

impl TraceSink for TraceAggregator {
    fn event(&mut self, ev: &TraceEvent) {
        self.push_ring(ev);
        match *ev {
            TraceEvent::Issue { cycle, core, .. } => {
                self.fold_core(core, cycle, CycleClass::Compute);
            }
            TraceEvent::Stall { cycle, core, reason, queue } => {
                self.fold_core(core, cycle, CycleClass::Stalled(reason));
                if let Some(q) = queue {
                    let qs = &mut self.queues[q as usize];
                    match reason {
                        StallReason::QueueFull => qs.full_stall_cycles += 1,
                        StallReason::QueueEmpty => qs.empty_stall_cycles += 1,
                        _ => {}
                    }
                }
            }
            TraceEvent::StallSpan { from, until, core, reason, queue } => {
                self.fold_core_span(core, from, until, CycleClass::Stalled(reason));
                if let Some(q) = queue {
                    let n = until.saturating_sub(from);
                    let qs = &mut self.queues[q as usize];
                    match reason {
                        StallReason::QueueFull => qs.full_stall_cycles += n,
                        StallReason::QueueEmpty => qs.empty_stall_cycles += n,
                        _ => {}
                    }
                }
            }
            TraceEvent::Produce { cycle, queue, occupancy, .. } => {
                let qs = &mut self.queues[queue as usize];
                qs.produces += 1;
                qs.max_occupancy = qs.max_occupancy.max(occupancy);
                self.occ[queue as usize].observe(cycle, occupancy);
            }
            TraceEvent::Consume { cycle, queue, occupancy, deferred, .. } => {
                let qs = &mut self.queues[queue as usize];
                qs.consumes += 1;
                if deferred {
                    qs.deferred_consumes += 1;
                }
                qs.max_occupancy = qs.max_occupancy.max(occupancy);
                self.occ[queue as usize].observe(cycle, occupancy);
            }
            TraceEvent::Finish { cycle, core } => {
                self.cores[core].finished_at = Some(cycle + 1);
            }
        }
    }

    fn run_end(&mut self, cycles: u64) {
        self.cycles = cycles;
        self.ended = true;
        for occ in &mut self.occ {
            occ.credit(cycles);
        }
        for fold in &mut self.cores {
            if let Some((_, class)) = fold.cur.take() {
                Self::commit(&mut fold.attr, class);
            }
            // A finished core idles until the last sibling retires; a
            // core that never finished (impossible on a completed run)
            // would under-attribute, caught by the total() invariant.
            let attributed = fold.attr.total();
            fold.attr.idle += cycles.saturating_sub(attributed);
        }
    }
}

/// A [`TraceSink`] emitting [Chrome trace format] JSON: per-core
/// tracks of compute/stall spans (`"X"` complete events, one `pid` for
/// all cores) and per-queue occupancy counter tracks (`"C"` events,
/// a second `pid`). Load the file in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
///
/// Cycles map to microseconds (`ts`/`dur` are cycle numbers) — the
/// viewers have no "cycle" unit, so read `1 us = 1 cycle`.
///
/// Spans are folded: consecutive cycles of the same class (compute, or
/// one stall reason) become one span, so trace size is proportional to
/// state *changes*, not cycles. Queue counters are likewise emitted
/// only when occupancy changes, and only for queues that see traffic.
///
/// [Chrome trace format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
#[derive(Debug)]
pub struct ChromeTraceSink {
    cores: Vec<SpanFold>,
    queues: Vec<QueueCounter>,
    events: String,
    first: bool,
    cycles: u64,
    ended: bool,
}

#[derive(Clone, Copy, Debug)]
struct SpanFold {
    start: u64,
    last: u64,
    class: Option<CycleClass>,
}

#[derive(Clone, Copy, Debug, Default)]
struct QueueCounter {
    last_occupancy: Option<usize>,
    last_cycle: u64,
}

/// `pid` of the core tracks in the emitted trace.
pub const TRACE_PID_CORES: u32 = 1;
/// `pid` of the queue counter tracks in the emitted trace.
pub const TRACE_PID_QUEUES: u32 = 2;

impl ChromeTraceSink {
    /// A sink for `ncores` cores and `nqueues` queues.
    pub fn new(ncores: usize, nqueues: usize) -> ChromeTraceSink {
        ChromeTraceSink {
            cores: vec![SpanFold { start: 0, last: 0, class: None }; ncores],
            queues: vec![QueueCounter::default(); nqueues],
            events: String::new(),
            first: true,
            cycles: 0,
            ended: false,
        }
    }

    fn raw_event(&mut self, body: &str) {
        if !self.first {
            self.events.push(',');
        }
        self.first = false;
        self.events.push('\n');
        self.events.push_str(body);
    }

    fn span_event(&mut self, core: usize, start: u64, end_exclusive: u64, class: CycleClass) {
        let name = match class {
            CycleClass::Compute => "compute",
            CycleClass::Stalled(r) => r.name(),
        };
        let body = format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\
             \"pid\":{pid},\"tid\":{core}}}",
            dur = end_exclusive - start,
            pid = TRACE_PID_CORES,
        );
        self.raw_event(&body);
    }

    fn counter_event(&mut self, queue: usize, cycle: u64, occupancy: usize) {
        let body = format!(
            "{{\"name\":\"q{queue}\",\"ph\":\"C\",\"ts\":{cycle},\"pid\":{pid},\
             \"tid\":{queue},\"args\":{{\"occupancy\":{occupancy}}}}}",
            pid = TRACE_PID_QUEUES,
        );
        self.raw_event(&body);
    }

    fn fold_core(&mut self, core: usize, cycle: u64, class: CycleClass) {
        let fold = self.cores[core];
        match fold.class {
            Some(prev) if same_class(prev, class) && cycle <= fold.last + 1 => {
                self.cores[core].last = cycle;
            }
            Some(prev) => {
                // Class changed, or a gap (issue-priority fold: a
                // compute event may overwrite a stall on the same
                // cycle — handled below).
                if cycle == fold.last
                    && matches!(prev, CycleClass::Stalled(_))
                    && matches!(class, CycleClass::Compute)
                {
                    // Same cycle reclassified: issue wins. Shrink the
                    // stall span by one cycle (dropping it if empty)
                    // and start/extend a compute span.
                    if fold.start < fold.last {
                        self.span_event(core, fold.start, fold.last, prev);
                    }
                    self.cores[core] = SpanFold { start: cycle, last: cycle, class: Some(class) };
                    return;
                }
                if cycle == fold.last {
                    // Stall event on a cycle already classified
                    // (compute first, or an earlier stall): keep the
                    // first classification.
                    return;
                }
                self.span_event(core, fold.start, fold.last + 1, prev);
                self.cores[core] = SpanFold { start: cycle, last: cycle, class: Some(class) };
            }
            None => {
                self.cores[core] = SpanFold { start: cycle, last: cycle, class: Some(class) };
            }
        }
    }

    /// Range form of [`ChromeTraceSink::fold_core`] for a
    /// [`TraceEvent::StallSpan`] covering `from..until`. The engine
    /// emits the span right after the per-cycle stall at `from - 1`, so
    /// the common case merges into the open span of the same class —
    /// the rendered JSON is byte-identical to per-cycle ticking.
    fn fold_core_span(&mut self, core: usize, from: u64, until: u64, class: CycleClass) {
        let fold = self.cores[core];
        match fold.class {
            Some(prev) if same_class(prev, class) && from <= fold.last + 1 => {
                self.cores[core].last = until - 1;
            }
            Some(prev) => {
                self.span_event(core, fold.start, fold.last + 1, prev);
                self.cores[core] = SpanFold { start: from, last: until - 1, class: Some(class) };
            }
            None => {
                self.cores[core] = SpanFold { start: from, last: until - 1, class: Some(class) };
            }
        }
    }

    /// The complete trace as a JSON string. Call after the run.
    pub fn into_json(mut self) -> String {
        assert!(self.ended, "into_json before run_end");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        // Track-naming metadata.
        let ncores = self.cores.len();
        for core in 0..ncores {
            let body = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{core},\
                 \"args\":{{\"name\":\"core {core}\"}}}}",
                pid = TRACE_PID_CORES,
            );
            self.raw_event(&body);
        }
        let body = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
             \"args\":{{\"name\":\"cores\"}}}}",
            pid = TRACE_PID_CORES,
        );
        self.raw_event(&body);
        let body = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
             \"args\":{{\"name\":\"sa queues\"}}}}",
            pid = TRACE_PID_QUEUES,
        );
        self.raw_event(&body);
        out.push_str(&self.events);
        let _ = write!(out, "\n],\"otherData\":{{\"cycles\":{}}}}}\n", self.cycles);
        out
    }
}

fn same_class(a: CycleClass, b: CycleClass) -> bool {
    match (a, b) {
        (CycleClass::Compute, CycleClass::Compute) => true,
        (CycleClass::Stalled(x), CycleClass::Stalled(y)) => x == y,
        _ => false,
    }
}

impl TraceSink for ChromeTraceSink {
    fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Issue { cycle, core, .. } => {
                self.fold_core(core, cycle, CycleClass::Compute);
            }
            TraceEvent::Stall { cycle, core, reason, .. } => {
                self.fold_core(core, cycle, CycleClass::Stalled(reason));
            }
            TraceEvent::StallSpan { from, until, core, reason, .. } => {
                self.fold_core_span(core, from, until, CycleClass::Stalled(reason));
            }
            TraceEvent::Produce { cycle, queue, occupancy, .. }
            | TraceEvent::Consume { cycle, queue, occupancy, .. } => {
                let q = queue as usize;
                if self.queues[q].last_occupancy != Some(occupancy) {
                    // Emit a leading zero sample so the counter does
                    // not interpolate from the start of time.
                    if self.queues[q].last_occupancy.is_none() && cycle > 0 {
                        self.counter_event(q, 0, 0);
                    }
                    self.counter_event(q, cycle, occupancy);
                    self.queues[q].last_occupancy = Some(occupancy);
                    self.queues[q].last_cycle = cycle;
                }
            }
            TraceEvent::Finish { .. } => {}
        }
    }

    fn run_end(&mut self, cycles: u64) {
        self.cycles = cycles;
        for core in 0..self.cores.len() {
            if let Some(class) = self.cores[core].class.take() {
                let fold = self.cores[core];
                self.span_event(core, fold.start, fold.last + 1, class);
            }
        }
        // Close each active counter at the end of the run so the last
        // plateau renders with its real width.
        for q in 0..self.queues.len() {
            if let Some(occ) = self.queues[q].last_occupancy {
                if self.queues[q].last_cycle < cycles {
                    self.counter_event(q, cycles, occ);
                }
            }
        }
        self.ended = true;
    }
}

/// A pair of sinks driven from one engine run — aggregate *and* dump
/// Chrome JSON in a single pass.
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn event(&mut self, ev: &TraceEvent) {
        if A::ENABLED {
            self.0.event(ev);
        }
        if B::ENABLED {
            self.1.event(ev);
        }
    }

    fn run_end(&mut self, cycles: u64) {
        if A::ENABLED {
            self.0.run_end(cycles);
        }
        if B::ENABLED {
            self.1.run_end(cycles);
        }
    }
}

/// Checks the tracing invariant on a finished aggregator against the
/// run it observed: every core's attribution sums to the run's cycle
/// count.
///
/// # Errors
///
/// Returns a description of the first core whose decomposition does
/// not sum to `result.cycles`.
pub fn check_attribution(agg: &TraceAggregator, result: &SimResult) -> Result<(), String> {
    for (i, attr) in agg.core_attribution().iter().enumerate() {
        if attr.total() != result.cycles {
            return Err(format!(
                "core {i}: attribution sums to {} but the run took {} cycles: {attr:?}",
                attr.total(),
                result.cycles
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(cycle: u64, core: usize) -> TraceEvent {
        TraceEvent::Issue { cycle, core, src: InstrId(0), arrival: Arrival::InOrder }
    }

    fn stall(cycle: u64, core: usize, reason: StallReason) -> TraceEvent {
        TraceEvent::Stall { cycle, core, reason, queue: None }
    }

    #[test]
    fn attribution_sums_to_cycles() {
        let mut agg = TraceAggregator::new(2, 1, 16);
        // Core 0: compute, operand stall, compute, finish at 3.
        agg.event(&issue(0, 0));
        agg.event(&stall(1, 0, StallReason::Operand));
        agg.event(&issue(2, 0));
        agg.event(&TraceEvent::Finish { cycle: 2, core: 0 });
        // Core 1: queue-empty stalls all the way, finishes at 5.
        for c in 0..4 {
            agg.event(&TraceEvent::Stall {
                cycle: c,
                core: 1,
                reason: StallReason::QueueEmpty,
                queue: Some(0),
            });
        }
        agg.event(&issue(4, 1));
        agg.run_end(5);
        let attr = agg.core_attribution();
        assert_eq!(attr[0].compute, 2);
        assert_eq!(attr[0].operand, 1);
        assert_eq!(attr[0].idle, 2);
        assert_eq!(attr[0].total(), 5);
        assert_eq!(attr[1].queue_empty, 4);
        assert_eq!(attr[1].compute, 1);
        assert_eq!(attr[1].total(), 5);
        assert_eq!(agg.queue_stats()[0].empty_stall_cycles, 4);
    }

    #[test]
    fn issue_wins_over_stall_within_a_cycle() {
        let mut agg = TraceAggregator::new(1, 0, 16);
        // Issue then structural stall on the same cycle: compute.
        agg.event(&issue(0, 0));
        agg.event(&stall(0, 0, StallReason::Structural));
        // Stall arriving before an issue on the same cycle cannot
        // happen in the engine (a stall ends the issue group), but the
        // fold is defensive: issue still wins.
        agg.event(&stall(1, 0, StallReason::Operand));
        agg.event(&issue(1, 0));
        agg.run_end(2);
        let attr = agg.core_attribution();
        assert_eq!(attr[0].compute, 2);
        assert_eq!(attr[0].total(), 2);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut agg = TraceAggregator::new(1, 0, 2);
        agg.event(&issue(0, 0));
        agg.event(&issue(1, 0));
        agg.event(&issue(2, 0));
        agg.run_end(3);
        assert_eq!(agg.dropped_events(), 1);
        let cycles: Vec<u64> = agg.recent_events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![1, 2], "oldest dropped");
        assert_eq!(agg.core_attribution()[0].compute, 3, "summary covers dropped events");
    }

    #[test]
    fn queue_stats_track_occupancy_and_deferral() {
        let mut agg = TraceAggregator::new(1, 2, 16);
        agg.event(&TraceEvent::Produce { cycle: 0, core: 0, queue: 1, occupancy: 1 });
        agg.event(&TraceEvent::Produce { cycle: 1, core: 0, queue: 1, occupancy: 2 });
        agg.event(&TraceEvent::Consume { cycle: 2, core: 0, queue: 1, occupancy: 1, deferred: false });
        agg.event(&TraceEvent::Consume { cycle: 3, core: 0, queue: 0, occupancy: 0, deferred: true });
        agg.run_end(4);
        let q1 = agg.queue_stats()[1];
        assert_eq!(q1.produces, 2);
        assert_eq!(q1.consumes, 1);
        assert_eq!(q1.max_occupancy, 2);
        assert_eq!(q1.deferred_consumes, 0);
        let q0 = agg.queue_stats()[0];
        assert_eq!(q0.consumes, 1);
        assert_eq!(q0.deferred_consumes, 1);
    }

    #[test]
    fn occupancy_summary_is_time_weighted() {
        let mut agg = TraceAggregator::new(1, 2, 16);
        // Queue 0: empty for 10 cycles, at 1 for 85, at 2 for 5.
        agg.event(&TraceEvent::Produce { cycle: 10, core: 0, queue: 0, occupancy: 1 });
        agg.event(&TraceEvent::Produce { cycle: 95, core: 0, queue: 0, occupancy: 2 });
        agg.run_end(100);
        let occ = agg.queue_occupancy();
        assert_eq!(occ[0], OccupancySummary { p50: 1, p95: 1, max: 2 });
        // Queue 1 saw no events: level 0 for the whole run.
        assert_eq!(occ[1], OccupancySummary { p50: 0, p95: 0, max: 0 });
    }

    #[test]
    fn occupancy_max_is_dwell_based() {
        // A produce immediately consumed the same cycle dwells zero
        // cycles at level 1: the high-water mark sees it, the
        // dwell-time summary does not.
        let mut agg = TraceAggregator::new(1, 1, 16);
        agg.event(&TraceEvent::Produce { cycle: 3, core: 0, queue: 0, occupancy: 1 });
        agg.event(&TraceEvent::Consume { cycle: 3, core: 0, queue: 0, occupancy: 0, deferred: false });
        agg.run_end(8);
        assert_eq!(agg.queue_stats()[0].max_occupancy, 1);
        assert_eq!(agg.queue_occupancy()[0], OccupancySummary { p50: 0, p95: 0, max: 0 });
    }

    #[test]
    fn chrome_sink_emits_valid_shape() {
        let mut sink = ChromeTraceSink::new(1, 1);
        sink.event(&issue(0, 0));
        sink.event(&issue(1, 0));
        sink.event(&stall(2, 0, StallReason::QueueFull));
        sink.event(&TraceEvent::Produce { cycle: 3, core: 0, queue: 0, occupancy: 1 });
        sink.event(&issue(3, 0));
        sink.run_end(4);
        let json = sink.into_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"name\":\"queue-full\""));
        assert!(json.contains("\"name\":\"q0\""));
        assert!(json.contains("\"occupancy\":1"));
        assert!(json.contains("\"cycles\":4"));
        // Spans fold: the two leading compute cycles are one event.
        assert_eq!(json.matches("\"name\":\"compute\"").count(), 2, "folded spans");
        // Balanced braces — cheap structural sanity without a JSON
        // parser in-tree (ci.sh runs a real parser over the file).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn paired_sinks_both_observe() {
        let mut pair = (TraceAggregator::new(1, 0, 4), ChromeTraceSink::new(1, 0));
        pair.event(&issue(0, 0));
        pair.run_end(1);
        assert_eq!(pair.0.core_attribution()[0].compute, 1);
        assert!(pair.1.into_json().contains("compute"));
    }

    fn span(from: u64, until: u64, reason: StallReason, queue: Option<u32>) -> TraceEvent {
        TraceEvent::StallSpan { from, until, core: 0, reason, queue }
    }

    #[test]
    fn stall_span_attribution_matches_per_cycle() {
        // The engine's fast-forward shape — one per-cycle stall, then a
        // span over the skipped window — must aggregate exactly like
        // ticking every cycle.
        let mut a = TraceAggregator::new(1, 1, 64);
        a.event(&issue(0, 0));
        for c in 1..6 {
            a.event(&TraceEvent::Stall {
                cycle: c,
                core: 0,
                reason: StallReason::QueueEmpty,
                queue: Some(0),
            });
        }
        a.event(&issue(6, 0));
        a.run_end(8);

        let mut b = TraceAggregator::new(1, 1, 64);
        b.event(&issue(0, 0));
        b.event(&TraceEvent::Stall {
            cycle: 1,
            core: 0,
            reason: StallReason::QueueEmpty,
            queue: Some(0),
        });
        b.event(&span(2, 6, StallReason::QueueEmpty, Some(0)));
        b.event(&issue(6, 0));
        b.run_end(8);

        assert_eq!(a.core_attribution(), b.core_attribution());
        assert_eq!(a.queue_stats(), b.queue_stats());
        assert_eq!(b.core_attribution()[0].queue_empty, 5);
        assert_eq!(b.core_attribution()[0].total(), 8);
        assert_eq!(b.queue_stats()[0].empty_stall_cycles, 5);
    }

    #[test]
    fn stall_span_with_no_open_cycle_commits_directly() {
        let mut agg = TraceAggregator::new(1, 0, 4);
        agg.event(&span(0, 3, StallReason::Mispredict, None));
        agg.event(&issue(3, 0));
        agg.run_end(4);
        let attr = agg.core_attribution()[0];
        assert_eq!(attr.mispredict, 3);
        assert_eq!(attr.compute, 1);
        assert_eq!(attr.total(), 4);
    }

    #[test]
    fn chrome_span_folding_is_byte_identical_to_per_cycle() {
        let mut a = ChromeTraceSink::new(1, 0);
        a.event(&issue(0, 0));
        for c in 1..6 {
            a.event(&stall(c, 0, StallReason::Operand));
        }
        a.event(&issue(6, 0));
        a.run_end(7);

        let mut b = ChromeTraceSink::new(1, 0);
        b.event(&issue(0, 0));
        b.event(&stall(1, 0, StallReason::Operand));
        b.event(&span(2, 6, StallReason::Operand, None));
        b.event(&issue(6, 0));
        b.run_end(7);

        assert_eq!(a.into_json(), b.into_json(), "span must merge into the open stall span");
    }

    #[test]
    fn chrome_span_after_compute_flushes_previous_span() {
        // Defensive: a span arriving without a preceding same-class
        // stall still renders correctly (flush + new span).
        let mut sink = ChromeTraceSink::new(1, 0);
        sink.event(&issue(0, 0));
        sink.event(&span(1, 4, StallReason::QueueFull, Some(0)));
        sink.run_end(4);
        let json = sink.into_json();
        assert!(json.contains("\"name\":\"compute\",\"ph\":\"X\",\"ts\":0,\"dur\":1"), "{json}");
        assert!(json.contains("\"name\":\"queue-full\",\"ph\":\"X\",\"ts\":1,\"dur\":3"), "{json}");
    }

    #[test]
    fn no_trace_is_disabled() {
        assert!(!NoTrace::ENABLED);
        assert!(TraceAggregator::ENABLED);
        assert!(!<(NoTrace, NoTrace) as TraceSink>::ENABLED);
        assert!(<(NoTrace, TraceAggregator) as TraceSink>::ENABLED);
    }
}
