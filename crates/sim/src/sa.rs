//! The synchronization array: low-latency inter-core scalar queues
//! (Rangan et al. \[19\]).

use gmt_ir::Reg;
use std::collections::VecDeque;

/// An entry sitting in a queue: a value and the cycle it becomes
/// visible to consumers (producer's commit plus the SA latency).
#[derive(Clone, Copy, Debug)]
struct Entry {
    value: i64,
    avail: u64,
}

/// A consume that issued while its queue was empty: the destination
/// register will be written when the matching produce arrives.
/// `token` guards against the register being redefined in between
/// (write-after-write with a later instruction).
#[derive(Clone, Copy, Debug)]
pub struct PendingConsume {
    /// Core that issued the consume.
    pub core: usize,
    /// Destination register (`None` for `consume.sync`).
    pub dst: Option<Reg>,
    /// Register-file ownership token at issue time.
    pub token: u64,
}

/// A value delivery that the simulator must apply to a core.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// The satisfied consume.
    pub pending: PendingConsume,
    /// The produced value.
    pub value: i64,
    /// Cycle at which the consumer's register becomes ready.
    pub ready_at: u64,
}

/// Error: a produce was attempted against a queue already holding
/// `depth` entries. Callers that check [`SyncArray::can_produce`] in
/// the same cycle never see this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

/// One queue of the synchronization array.
#[derive(Clone, Debug, Default)]
struct Queue {
    entries: VecDeque<Entry>,
    pending: VecDeque<PendingConsume>,
    depth: usize,
}

/// The synchronization array.
#[derive(Clone, Debug)]
pub struct SyncArray {
    queues: Vec<Queue>,
    latency: u64,
}

impl SyncArray {
    /// An empty array with per-queue entry capacities. A single-element
    /// `depths` slice is broadcast to every queue (the uniform
    /// configuration); otherwise queue `q` gets `depths[q]`. Missing or
    /// zero entries clamp to depth 1 — a depth-0 queue would stall every
    /// produce forever.
    pub fn new(num_queues: usize, depths: &[usize], latency: u64) -> SyncArray {
        let depth_at = |q: usize| -> usize {
            let d = if depths.len() == 1 { depths[0] } else { depths.get(q).copied().unwrap_or(1) };
            d.max(1)
        };
        SyncArray {
            queues: (0..num_queues)
                .map(|q| Queue { depth: depth_at(q), ..Queue::default() })
                .collect(),
            latency,
        }
    }

    /// The entry capacity allocated to queue `q`, or 0 when `q` is not
    /// a queue of this array — a nonexistent queue holds nothing.
    pub fn depth_of(&self, q: usize) -> usize {
        self.queues.get(q).map_or(0, |queue| queue.depth)
    }

    /// Whether queue `q` can accept a produce this cycle. A queue id
    /// outside the array can never accept one; the simulators reject
    /// such programs at load ([`crate::sim::check_queue_ids`]), so this
    /// answer is only ever a conservative backstop.
    pub fn can_produce(&self, q: usize) -> bool {
        self.queues.get(q).is_some_and(|queue| queue.entries.len() < queue.depth)
    }

    /// Produces `value` into queue `q` at cycle `now` (commit at
    /// `now + 1`). If a consume is pending, returns the delivery to
    /// apply instead of enqueuing.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the queue already holds `depth`
    /// entries (callers are expected to check
    /// [`SyncArray::can_produce`] first), or when `q` is not a queue
    /// of this array at all — a nonexistent queue is permanently full.
    pub fn produce(&mut self, q: usize, value: i64, now: u64) -> Result<Option<Delivery>, QueueFull> {
        let avail = now + 1 + self.latency;
        let Some(queue) = self.queues.get_mut(q) else {
            return Err(QueueFull);
        };
        if let Some(pending) = queue.pending.pop_front() {
            return Ok(Some(Delivery { pending, value, ready_at: avail }));
        }
        if queue.entries.len() >= queue.depth {
            return Err(QueueFull);
        }
        queue.entries.push_back(Entry { value, avail });
        Ok(None)
    }

    /// Attempts a consume from queue `q` at cycle `now`.
    ///
    /// Returns `Ok((value, ready_at))` when an entry exists; otherwise
    /// registers `pending` and returns `Err(())` — the consume is
    /// outstanding and its destination becomes ready on delivery.
    #[allow(clippy::result_unit_err)]
    pub fn consume(
        &mut self,
        q: usize,
        now: u64,
        pending: PendingConsume,
    ) -> Result<(i64, u64), ()> {
        let Some(queue) = self.queues.get_mut(q) else {
            // A nonexistent queue never delivers; the consume stays
            // blocked forever and deadlock detection reports it.
            return Err(());
        };
        if let Some(e) = queue.entries.pop_front() {
            Ok((e.value, e.avail.max(now + 1)))
        } else {
            queue.pending.push_back(pending);
            Err(())
        }
    }

    /// Whether queue `q` holds a token visible at cycle `now`
    /// (`consume.sync` blocks until this is true).
    pub fn has_visible_entry(&self, q: usize, now: u64) -> bool {
        self.queues
            .get(q)
            .and_then(|queue| queue.entries.front())
            .is_some_and(|e| e.avail <= now)
    }

    /// The cycle at which queue `q`'s front entry becomes visible to a
    /// `consume.sync`, or `None` when the queue holds no entry at all —
    /// in that case the consumer's wakeup depends on a peer's produce,
    /// not on the array. This is the event-driven engine's wakeup
    /// source for [`StallReason::QueueEmpty`](crate::StallReason)
    /// stalls.
    pub fn next_visible_at(&self, q: usize) -> Option<u64> {
        self.queues.get(q).and_then(|queue| queue.entries.front()).map(|e| e.avail)
    }

    /// Pops a token for `consume.sync`, or `None` when the queue is
    /// empty (callers gate on [`SyncArray::has_visible_entry`]).
    pub fn pop_token(&mut self, q: usize, now: u64) -> Option<u64> {
        let e = self.queues.get_mut(q)?.entries.pop_front()?;
        Some(e.avail.max(now))
    }

    /// Entries currently buffered in queue `q` (delivered or still in
    /// flight; pending consumes do not count). A queue id outside the
    /// array holds nothing.
    pub fn occupancy(&self, q: usize) -> usize {
        self.queues.get(q).map_or(0, |queue| queue.entries.len())
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether the array has no queues.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(core: usize) -> PendingConsume {
        PendingConsume { core, dst: Some(Reg(0)), token: 0 }
    }

    #[test]
    fn produce_then_consume() {
        let mut sa = SyncArray::new(4, &[2], 1);
        assert!(sa.can_produce(0));
        assert!(sa.produce(0, 42, 10).unwrap().is_none());
        let (v, ready) = sa.consume(0, 20, pc(1)).unwrap();
        assert_eq!(v, 42);
        assert_eq!(ready, 21, "entry already visible; consume takes 1 cycle");
    }

    #[test]
    fn consume_before_produce_is_pending() {
        let mut sa = SyncArray::new(4, &[2], 1);
        assert!(sa.consume(0, 5, pc(1)).is_err());
        let d = sa.produce(0, 7, 9).unwrap().expect("matches pending");
        assert_eq!(d.value, 7);
        assert_eq!(d.ready_at, 11, "commit at 10 + 1 cycle SA latency");
        assert_eq!(d.pending.core, 1);
    }

    #[test]
    fn backpressure_at_depth() {
        let mut sa = SyncArray::new(1, &[1], 1);
        assert!(sa.produce(0, 1, 0).unwrap().is_none());
        assert!(!sa.can_produce(0));
        assert!(matches!(sa.produce(0, 2, 0), Err(QueueFull)), "full queue rejects, not panics");
        let _ = sa.consume(0, 5, pc(0)).unwrap();
        assert!(sa.can_produce(0));
    }

    #[test]
    fn sync_token_visibility() {
        let mut sa = SyncArray::new(1, &[1], 1);
        assert!(sa.produce(0, 1, 10).unwrap().is_none()); // visible at 12
        assert!(!sa.has_visible_entry(0, 11));
        assert!(sa.has_visible_entry(0, 12));
        assert_eq!(sa.pop_token(0, 15), Some(15));
        assert_eq!(sa.pop_token(0, 16), None, "empty queue yields no token");
    }

    #[test]
    fn next_visible_at_reports_front_entry() {
        let mut sa = SyncArray::new(2, &[4], 1);
        assert_eq!(sa.next_visible_at(0), None, "empty queue has no self-wakeup");
        assert!(sa.produce(0, 1, 10).unwrap().is_none()); // visible at 12
        assert!(sa.produce(0, 2, 20).unwrap().is_none()); // behind the first
        assert_eq!(sa.next_visible_at(0), Some(12), "front entry's avail cycle");
        assert!(!sa.has_visible_entry(0, 11));
        assert!(sa.has_visible_entry(0, sa.next_visible_at(0).unwrap()));
        let _ = sa.pop_token(0, 12);
        assert_eq!(sa.next_visible_at(0), Some(22), "second entry surfaces");
        assert_eq!(sa.next_visible_at(1), None, "untouched queue stays empty");
    }

    #[test]
    fn fifo_order() {
        let mut sa = SyncArray::new(1, &[4], 1);
        assert!(sa.produce(0, 1, 0).unwrap().is_none());
        assert!(sa.produce(0, 2, 0).unwrap().is_none());
        assert_eq!(sa.consume(0, 9, pc(0)).unwrap().0, 1);
        assert_eq!(sa.consume(0, 9, pc(0)).unwrap().0, 2);
    }

    #[test]
    fn heterogeneous_depths() {
        let mut sa = SyncArray::new(3, &[1, 4, 0], 1);
        assert_eq!(sa.depth_of(0), 1);
        assert_eq!(sa.depth_of(1), 4);
        assert_eq!(sa.depth_of(2), 1, "depth 0 clamps to 1");
        assert!(sa.produce(0, 1, 0).unwrap().is_none());
        assert!(!sa.can_produce(0), "queue 0 fills at its own depth");
        assert!(sa.produce(1, 1, 0).unwrap().is_none());
        assert!(sa.can_produce(1), "queue 1 still has 3 slots");
    }

    #[test]
    fn single_depth_broadcasts() {
        let sa = SyncArray::new(4, &[7], 1);
        assert!((0..4).all(|q| sa.depth_of(q) == 7));
    }
}
