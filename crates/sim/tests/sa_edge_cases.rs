//! Synchronization-array edge cases the paper's timing results lean
//! on: same-cycle produce/consume at exactly `depth` occupancy, the
//! register-file token guarding a redefinition that overtakes a
//! pending consume's delivery, and pinned per-`StallReason` counts for
//! one kernel under both engines (the ID-walking reference and the
//! decoded engine must tell the same story, stall for stall).

use gmt_ir::decoded::DecodedProgram;
use gmt_ir::{BinOp, FunctionBuilder, Op, QueueId, Reg};
use gmt_sim::{
    simulate, simulate_reference, MachineConfig, PendingConsume, QueueFull, SyncArray,
};

fn pc(core: usize) -> PendingConsume {
    PendingConsume { core, dst: Some(Reg(0)), token: 0 }
}

/// Consume-then-produce on the same cycle at exactly `depth` occupancy
/// succeeds (the consume frees the slot within the cycle, matching the
/// engine's rotating core-service order); produce-then-consume on the
/// same cycle refuses the produce without corrupting the queue.
#[test]
fn same_cycle_produce_consume_at_exact_depth() {
    let mut sa = SyncArray::new(1, &[2], 1);
    assert!(sa.produce(0, 1, 0).unwrap().is_none());
    assert!(sa.produce(0, 2, 0).unwrap().is_none());
    assert_eq!(sa.occupancy(0), 2, "at exactly depth");
    assert!(!sa.can_produce(0));

    // Consumer core serviced first: its pop makes room for the
    // producer on the very same cycle.
    let (v, _) = sa.consume(0, 5, pc(1)).unwrap();
    assert_eq!(v, 1);
    assert!(sa.can_produce(0));
    assert!(sa.produce(0, 3, 5).unwrap().is_none());
    assert_eq!(sa.occupancy(0), 2, "back at depth after the same-cycle pair");

    // Producer core serviced first: the produce must refuse cleanly
    // (the engine turns this into a queue-full stall cycle) and the
    // queue must stay FIFO-intact for the consume that follows.
    assert_eq!(sa.produce(0, 99, 6).unwrap_err(), QueueFull);
    let (v, _) = sa.consume(0, 6, pc(1)).unwrap();
    assert_eq!(v, 2);
    assert!(sa.produce(0, 4, 6).unwrap().is_none());
    let (v, _) = sa.consume(0, 7, pc(1)).unwrap();
    assert_eq!(v, 3);
    let (v, _) = sa.consume(0, 8, pc(1)).unwrap();
    assert_eq!(v, 4, "the refused produce left no trace");
}

/// A queue with pending consumes delivers produces directly — depth
/// never limits the handoff, because entries and pendings cannot
/// coexist in one queue.
#[test]
fn pending_consumes_bypass_depth_limit() {
    let mut sa = SyncArray::new(1, &[1], 1);
    assert!(sa.consume(0, 0, pc(1)).is_err(), "empty queue: consume goes pending");
    assert!(sa.consume(0, 0, pc(1)).is_err(), "two pendings on a depth-1 queue");
    let d1 = sa.produce(0, 10, 3).unwrap().expect("delivers to first pending");
    let d2 = sa.produce(0, 20, 3).unwrap().expect("delivers to second pending");
    assert_eq!((d1.value, d2.value), (10, 20), "FIFO across pendings");
    assert_eq!(sa.occupancy(0), 0, "direct handoff leaves nothing buffered");
    assert!(sa.can_produce(0));
}

/// Consumer thread: `r = consume q0`, immediately redefine `r`, use
/// it. Producer thread: a long dependent chain, then the produce. The
/// late delivery carries a stale register-file token and must be
/// dropped — the redefined value wins under both engines.
#[test]
fn token_guards_redefinition_between_pending_consume_and_delivery() {
    let mut b = FunctionBuilder::new("t0");
    let r = b.fresh_reg();
    b.emit(Op::Consume { dst: r, queue: QueueId(0) });
    b.const_into(r, 5);
    b.output(r);
    b.ret(Some(r.into()));
    let t0 = b.finish().unwrap();

    let mut b = FunctionBuilder::new("t1");
    let mut v = b.const_(3);
    for _ in 0..12 {
        v = b.bin(BinOp::Mul, v, 1i64);
    }
    b.emit(Op::Produce { queue: QueueId(0), value: v.into() });
    b.ret(None);
    let t1 = b.finish().unwrap();

    let threads = [t0, t1];
    let config = MachineConfig::default().with_queue_depth(1);
    let decoded = simulate(&threads, &[], |_, _| {}, &config).unwrap();
    let reference = simulate_reference(&threads, &[], |_, _| {}, &config).unwrap();
    for r in [&decoded, &reference] {
        assert_eq!(r.output, vec![5], "stale delivery must not clobber the redefinition");
        assert_eq!(r.return_value, Some(5));
    }
    assert_eq!(decoded.cycles, reference.cycles, "engines agree cycle-for-cycle");
}

/// One deterministic kernel, both engines, pinned stall counts. The
/// kernel exercises three stall classes at once: a fast producer into
/// a depth-1 queue (queue-full backpressure), the producer's
/// `consume.sync` outrunning the consumer's go token (queue-empty),
/// and the consumer's register consumes — stall-on-use means waiting
/// for data shows up as *operand* stalls on the consumer side, never
/// queue-empty (only `consume.sync` blocks at the queue).
#[test]
fn pinned_stall_counts_for_one_kernel_under_both_engines() {
    let mut b = FunctionBuilder::new("producer");
    b.emit(Op::ConsumeSync { queue: QueueId(1) });
    for k in 0..6 {
        let v = b.const_(k);
        b.emit(Op::Produce { queue: QueueId(0), value: v.into() });
    }
    b.ret(None);
    let t0 = b.finish().unwrap();

    let mut b = FunctionBuilder::new("consumer");
    let mut warm = b.const_(2);
    for _ in 0..3 {
        warm = b.bin(BinOp::Mul, warm, warm);
    }
    b.emit(Op::ProduceSync { queue: QueueId(1) });
    let mut acc = b.const_(0);
    for _ in 0..6 {
        let r = b.fresh_reg();
        b.emit(Op::Consume { dst: r, queue: QueueId(0) });
        let mut t = b.bin(BinOp::Add, r, warm);
        for _ in 0..2 {
            t = b.bin(BinOp::Mul, t, 1i64);
        }
        acc = b.bin(BinOp::Add, acc, t);
    }
    b.output(acc);
    b.ret(Some(acc.into()));
    let t1 = b.finish().unwrap();

    let threads = [t0, t1];
    let config = MachineConfig::default().with_queue_depth(1);
    let program = DecodedProgram::decode(&threads).unwrap();
    let decoded = gmt_sim::simulate_decoded(&program, &[], |_, _| {}, &config).unwrap();
    let reference = simulate_reference(&threads, &[], |_, _| {}, &config).unwrap();

    assert_eq!(decoded.cycles, reference.cycles);
    assert_eq!(decoded.output, reference.output);
    for (d, r) in decoded.cores.iter().zip(&reference.cores) {
        assert_eq!(d, r, "per-core stats identical across engines");
    }

    // Pinned decomposition. These numbers are part of the machine
    // model's contract: a change here is a timing-model change and
    // must be intentional (update the pins in the same commit that
    // changes the model).
    let p = &decoded.cores[0];
    let c = &decoded.cores[1];
    let pin = |s: &gmt_sim::CoreStats| {
        (
            s.stall_operand,
            s.stall_structural,
            s.stall_sa_port,
            s.stall_queue_full,
            s.stall_queue_empty,
            s.stall_load_limit,
            s.stall_mispredict,
        )
    };
    assert!(p.stall_queue_empty > 0, "producer waits for the go token");
    assert!(p.stall_queue_full > 0, "depth-1 backpressure on the fast producer");
    assert!(c.stall_operand > 0, "consumer waits for data as operand stalls");
    assert_eq!(c.stall_queue_empty, 0, "register consume never stalls at the queue");
    assert_eq!(pin(p), (6, 0, 0, 28, 9, 0, 0), "producer stalls");
    assert_eq!(pin(c), (60, 0, 0, 0, 0, 0, 0), "consumer stalls");
    assert_eq!(decoded.cycles, 61, "pinned total");
}
