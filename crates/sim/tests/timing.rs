//! Timed-simulation behavior: functional agreement with the reference
//! interpreter, and first-order timing effects (decoupling, stalls,
//! cache locality).

use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::{BinOp, Function, FunctionBuilder, Op, QueueId};
use gmt_pdg::{Partition, Pdg, ThreadId};
use gmt_sim::{simulate, MachineConfig};

fn counted_loop(iters_are_param: bool) -> Function {
    let mut b = FunctionBuilder::new("loop");
    let n = if iters_are_param { b.param() } else { b.const_(20) };
    let i = b.fresh_reg();
    let s = b.fresh_reg();
    let h = b.block("h");
    let body = b.block("body");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(h);
    b.switch_to(h);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let t = b.bin(BinOp::Mul, i, i);
    b.bin_into(BinOp::Add, s, s, t);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(h);
    b.switch_to(exit);
    b.output(s);
    b.ret(Some(s.into()));
    b.finish().unwrap()
}

#[test]
fn single_core_matches_interpreter() {
    let f = counted_loop(true);
    let st = run(&f, &[20], &ExecConfig::default()).unwrap();
    let sim = simulate(&[f], &[20], |_, _| {}, &MachineConfig::default()).unwrap();
    assert_eq!(sim.return_value, st.return_value);
    assert_eq!(sim.output, st.output);
    // Dynamic instruction counts agree with the functional run.
    assert_eq!(sim.cores[0].total_instrs(), st.counts.total());
}

#[test]
fn mt_code_matches_interpreter_under_timing() {
    let f = counted_loop(true);
    let pdg = Pdg::build(&f);
    let mut p = Partition::new(2);
    for (k, i) in f.all_instrs().enumerate() {
        p.assign(i, ThreadId(k as u32 % 2));
    }
    let out = gmt_mtcg::generate(&f, &pdg, &p).unwrap();
    let st = run(&f, &[15], &ExecConfig::default()).unwrap();
    for depth in [1usize, 32] {
        let sim = simulate(
            &out.threads,
            &[15],
            |_, _| {},
            &MachineConfig::default().with_queue_depth(depth),
        )
        .unwrap();
        assert_eq!(sim.return_value, st.return_value, "depth {depth}");
        assert_eq!(sim.output, st.output, "depth {depth}");
    }
}

#[test]
fn dependent_chain_slower_than_independent() {
    // A long dependent chain vs the same ops made independent.
    let chain = {
        let mut b = FunctionBuilder::new("chain");
        let mut v = b.const_(1);
        for _ in 0..64 {
            v = b.bin(BinOp::Mul, v, 3i64);
        }
        b.ret(Some(v.into()));
        b.finish().unwrap()
    };
    let indep = {
        let mut b = FunctionBuilder::new("indep");
        let x = b.const_(1);
        let mut last = x;
        for _ in 0..64 {
            last = b.bin(BinOp::Mul, x, 3i64);
        }
        b.ret(Some(last.into()));
        b.finish().unwrap()
    };
    let c1 = simulate(&[chain], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    let c2 = simulate(&[indep], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert!(
        c1.cycles > c2.cycles + 60,
        "stall-on-use must serialize the chain: {} vs {}",
        c1.cycles,
        c2.cycles
    );
}

#[test]
fn cache_miss_latency_visible() {
    // Stride through 64KB (doesn't fit 16KB L1): many L1 misses.
    let mut b = FunctionBuilder::new("stride");
    let arr = b.object("arr", 8192);
    let i = b.fresh_reg();
    let s = b.fresh_reg();
    let h = b.block("h");
    let body = b.block("body");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(h);
    b.switch_to(h);
    let c = b.bin(BinOp::Lt, i, 8192i64);
    b.branch(c, body, exit);
    b.switch_to(body);
    let base = b.lea(arr, 0);
    let addr = b.bin(BinOp::Add, base, i);
    let v = b.load(addr, 0);
    b.bin_into(BinOp::Add, s, s, v);
    b.bin_into(BinOp::Add, i, i, 8i64); // one load per 64B line
    b.jump(h);
    b.switch_to(exit);
    b.ret(Some(s.into()));
    let f = b.finish().unwrap();
    let sim = simulate(&[f], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert!(sim.hits_mem > 500, "cold strides must reach memory: {}", sim.hits_mem);
}

#[test]
fn producer_consumer_decouples() {
    // Producer sends i each iteration; consumer multiplies (expensive).
    // With a 32-deep queue, the pair should overlap; total time well
    // under the sum of both threads run back to back.
    let q = QueueId(0);
    let iters = 200i64;
    let producer = {
        let mut b = FunctionBuilder::new("prod");
        let i = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, iters);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.emit(Op::Produce { queue: q, value: i.into() });
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        b.finish().unwrap()
    };
    let consumer = {
        let mut b = FunctionBuilder::new("cons");
        let i = b.fresh_reg();
        let s = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.const_into(s, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, iters);
        b.branch(c, body, exit);
        b.switch_to(body);
        let v = b.fresh_reg();
        b.emit(Op::Consume { dst: v, queue: q });
        let t = b.bin(BinOp::Mul, v, v);
        let t2 = b.bin(BinOp::Mul, t, 3i64);
        b.bin_into(BinOp::Add, s, s, t2);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(s.into()));
        b.finish().unwrap()
    };
    let cfg = MachineConfig::default();
    let both = simulate(&[producer.clone(), consumer.clone()], &[], |_, _| {}, &cfg).unwrap();
    // Consumer alone takes roughly its own critical path; producer
    // overlaps almost entirely.
    let expected = iters as u64 * 2;
    assert!(
        both.cycles < expected * 8,
        "pipeline should overlap: {} cycles",
        both.cycles
    );
    assert_eq!(both.return_value, Some((0..200).map(|x| x * x * 3).sum()));
}

#[test]
fn consume_sync_blocks_until_token() {
    // T1 waits on a token T0 sends after a long dependence chain.
    let q = QueueId(0);
    let t0 = {
        let mut b = FunctionBuilder::new("t0");
        let mut v = b.const_(1);
        for _ in 0..32 {
            v = b.bin(BinOp::Mul, v, 3i64);
        }
        b.emit(Op::ProduceSync { queue: q });
        b.output(v);
        b.ret(None);
        b.finish().unwrap()
    };
    let t1 = {
        let mut b = FunctionBuilder::new("t1");
        b.emit(Op::ConsumeSync { queue: q });
        b.ret(None);
        b.finish().unwrap()
    };
    let sim = simulate(&[t0, t1], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    // T1 retires only after T0's 32 x 3-cycle chain.
    assert!(sim.cores[1].finished_at >= 90, "{:?}", sim.cores[1]);
    assert!(sim.cores[1].stall_queue_empty > 50);
}

#[test]
fn deadlock_detected_in_time() {
    let t0 = {
        let mut b = FunctionBuilder::new("t0");
        b.emit(Op::ConsumeSync { queue: QueueId(0) });
        b.ret(None);
        b.finish().unwrap()
    };
    let err = simulate(&[t0], &[], |_, _| {}, &MachineConfig::default()).unwrap_err();
    assert_eq!(
        err,
        gmt_ir::interp::ExecError::Deadlock(Some(gmt_ir::interp::DeadlockInfo {
            core: 0,
            queue: QueueId(0),
            op: gmt_ir::interp::BlockedOp::ConsumeEmpty,
        }))
    );
}

#[test]
fn queue_depth_one_backpressures() {
    // Same producer/consumer as above but depth 1: still correct.
    let q = QueueId(0);
    let producer = {
        let mut b = FunctionBuilder::new("p");
        for v in 0..8 {
            b.emit(Op::Produce { queue: q, value: (v as i64).into() });
        }
        b.ret(None);
        b.finish().unwrap()
    };
    let consumer = {
        let mut b = FunctionBuilder::new("c");
        let s = b.fresh_reg();
        b.const_into(s, 0);
        for _ in 0..8 {
            let v = b.fresh_reg();
            b.emit(Op::Consume { dst: v, queue: q });
            b.bin_into(BinOp::Add, s, s, v);
        }
        b.ret(Some(s.into()));
        b.finish().unwrap()
    };
    let sim = simulate(
        &[producer, consumer],
        &[],
        |_, _| {},
        &MachineConfig::default().with_queue_depth(1),
    )
    .unwrap();
    assert_eq!(sim.return_value, Some(28));
    assert!(sim.cores[0].stall_queue_full > 0, "{:?}", sim.cores[0]);
}
