//! Critical-path profiler properties on real engine runs: the
//! reconstructed path must conserve cycles exactly (the analogue of
//! `check_attribution`), bound every core's busy time, reduce to the
//! dataflow + fetch chain on a single thread, and agree byte-for-byte
//! between the per-cycle and fast-forward engines.

use gmt_ir::decoded::DecodedProgram;
use gmt_ir::{BinOp, Function, FunctionBuilder, Op, QueueId};
use gmt_pdg::{Partition, Pdg, ThreadId};
use gmt_sim::{
    check_attribution, check_critical_path, simulate_decoded_traced_opts, CpKind, CritPath,
    CritPathSink, MachineConfig, SimOptions, TraceAggregator,
};

fn run_cp(threads: &[Function], args: &[i64], config: &MachineConfig, ff: bool) -> (CritPath, u64, Vec<u64>) {
    let program = DecodedProgram::decode(threads).unwrap();
    let mut sink = (
        TraceAggregator::new(threads.len(), config.sa.num_queues, 256),
        CritPathSink::new(&program, config.sa.num_queues),
    );
    let result = simulate_decoded_traced_opts(
        &program,
        args,
        |_, _| {},
        config,
        &mut sink,
        SimOptions { fast_forward: ff },
    )
    .unwrap();
    check_attribution(&sink.0, &result).unwrap();
    let cp = check_critical_path(&sink.1, &result).unwrap();
    let busy = sink.0.core_attribution().iter().map(|a| a.compute).collect();
    (cp, result.cycles, busy)
}

fn counted_loop() -> Function {
    let mut b = FunctionBuilder::new("loop");
    let n = b.param();
    let i = b.fresh_reg();
    let s = b.fresh_reg();
    let h = b.block("h");
    let body = b.block("body");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(h);
    b.switch_to(h);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let t = b.bin(BinOp::Mul, i, i);
    b.bin_into(BinOp::Add, s, s, t);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(h);
    b.switch_to(exit);
    b.output(s);
    b.ret(Some(s.into()));
    b.finish().unwrap()
}

#[test]
fn single_thread_path_is_dataflow_and_fetch() {
    // A pure dependent chain: every cycle of the run is either the
    // chain's dataflow latency, in-order fetch, or the final retire —
    // no queue, resource, or mispredict segments can appear.
    let mut b = FunctionBuilder::new("chain");
    let mut v = b.const_(1);
    for _ in 0..32 {
        v = b.bin(BinOp::Mul, v, 3i64);
    }
    b.ret(Some(v.into()));
    let f = b.finish().unwrap();
    let (cp, cycles, busy) = run_cp(&[f], &[], &MachineConfig::default(), true);
    assert_eq!(cp.total, cycles);
    let chain = cp.kind_cycles(CpKind::InOrder)
        + cp.kind_cycles(CpKind::Dataflow)
        + cp.kind_cycles(CpKind::Retire);
    assert_eq!(chain, cp.total, "single-thread path is fetch+dataflow only: {:?}", cp.by_kind);
    // Mul latency 3 × 32 chain links dominate.
    assert!(cp.kind_cycles(CpKind::Dataflow) >= 64, "{:?}", cp.by_kind);
    assert_eq!(cp.crossings, 0);
    assert!(cp.total >= busy[0]);
}

#[test]
fn conservation_and_busy_bound_on_mt_pair() {
    let f = counted_loop();
    let pdg = Pdg::build(&f);
    let mut p = Partition::new(2);
    for (k, i) in f.all_instrs().enumerate() {
        p.assign(i, ThreadId(k as u32 % 2));
    }
    let out = gmt_mtcg::generate(&f, &pdg, &p).unwrap();
    for depth in [1usize, 32] {
        let cfg = MachineConfig::default().with_queue_depth(depth);
        let (cp, cycles, busy) = run_cp(&out.threads, &[40], &cfg, true);
        assert_eq!(cp.total, cycles, "depth {depth}");
        for (ci, &b) in busy.iter().enumerate() {
            assert!(cp.total >= b, "depth {depth}: CP {} < core {ci} busy {b}", cp.total);
        }
        // A two-thread round-robin split communicates heavily: the
        // path must actually cross threads.
        assert!(cp.crossings > 0, "depth {depth}");
        assert!(
            cp.kind_cycles(CpKind::QueueData) + cp.kind_cycles(CpKind::QueueSpace) > 0,
            "depth {depth}: {:?}",
            cp.by_kind
        );
    }
}

#[test]
fn fast_forward_does_not_change_the_path() {
    let f = counted_loop();
    let pdg = Pdg::build(&f);
    let mut p = Partition::new(2);
    for (k, i) in f.all_instrs().enumerate() {
        p.assign(i, ThreadId(k as u32 % 2));
    }
    let out = gmt_mtcg::generate(&f, &pdg, &p).unwrap();
    for depth in [1usize, 32] {
        let cfg = MachineConfig::default().with_queue_depth(depth);
        let (a, cycles_a, _) = run_cp(&out.threads, &[25], &cfg, true);
        let (b, cycles_b, _) = run_cp(&out.threads, &[25], &cfg, false);
        assert_eq!(cycles_a, cycles_b, "depth {depth}");
        assert_eq!(a.by_kind, b.by_kind, "depth {depth}");
        assert_eq!(a.segments, b.segments, "depth {depth}");
        assert_eq!(a.edges, b.edges, "depth {depth}");
        assert_eq!(a.crossings, b.crossings, "depth {depth}");
    }
}

#[test]
fn queue_bound_pair_shows_queue_segments() {
    // Producer floods a depth-1 queue; consumer burns cycles per value.
    // The path must attribute a large share to the queue coupling.
    let q = QueueId(0);
    let producer = {
        let mut b = FunctionBuilder::new("prod");
        let i = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, 50i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.emit(Op::Produce { queue: q, value: i.into() });
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        b.finish().unwrap()
    };
    let consumer = {
        let mut b = FunctionBuilder::new("cons");
        let i = b.fresh_reg();
        let s = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.const_into(s, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, 50i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        let v = b.fresh_reg();
        b.emit(Op::Consume { dst: v, queue: q });
        let t = b.bin(BinOp::Mul, v, v);
        let t2 = b.bin(BinOp::Mul, t, t);
        b.bin_into(BinOp::Add, s, s, t2);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.output(s);
        b.ret(Some(s.into()));
        b.finish().unwrap()
    };
    let cfg = MachineConfig::default().with_queue_depth(1);
    let (cp, cycles, _) = run_cp(&[producer, consumer], &[], &cfg, true);
    assert_eq!(cp.total, cycles);
    let queue_cycles: u64 = cp.by_queue.iter().map(|&(_, c)| c).sum();
    assert!(queue_cycles > 0, "{:?}", cp.by_kind);
    assert!(!cp.by_queue.is_empty());
    assert_eq!(cp.by_queue[0].0, 0, "only queue 0 is in play");
}
