//! Property: the simulator and the functional MT interpreter return
//! typed errors — never panic, hang, or silently misbehave — on
//! arbitrary machine and queue configurations, including degenerate
//! ones (zero-width cores, zero-way caches, port-less sync arrays,
//! zero queues).
//!
//! Replay a failure with `GMT_TESTKIT_SEED=<seed> cargo test -p
//! gmt-sim --test config_robustness`.

use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::interp::{ExecConfig, ExecError};
use gmt_ir::{BinOp, FunctionBuilder, Op, QueueId};
use gmt_sim::{simulate, BranchModel, CacheConfig, MachineConfig, SaConfig};
use gmt_testkit::{prop_assert, ranged, Checker, Gen};

/// Producer sends 1..=3 on queue 0; consumer sums and returns 6.
fn producer_consumer() -> Vec<gmt_ir::Function> {
    let q = QueueId(0);
    let mut p = FunctionBuilder::new("producer");
    for v in 1..=3 {
        p.emit(Op::Produce { queue: q, value: (v as i64).into() });
    }
    p.ret(None);
    let producer = p.finish().unwrap();

    let mut c = FunctionBuilder::new("consumer");
    let sum = c.fresh_reg();
    c.const_into(sum, 0);
    for _ in 0..3 {
        let v = c.fresh_reg();
        c.emit(Op::Consume { dst: v, queue: q });
        c.bin_into(BinOp::Add, sum, sum, v);
    }
    c.ret(Some(sum.into()));
    let consumer = c.finish().unwrap();
    vec![producer, consumer]
}

/// (issue_width, alu, mem_ports, assoc), (line_bytes, num_queues, depth, ports)
type RawCfg = ((usize, usize, usize, u64), (u64, usize, usize, usize));

fn cfg_gen() -> Gen<RawCfg> {
    let core = ranged(0usize, 5)
        .zip(ranged(0usize, 4))
        .zip(ranged(0usize, 4))
        .zip(ranged(0u64, 4))
        .map(|(((iw, alu), mp), assoc)| (iw, alu, mp, assoc));
    let rest = ranged(0u64, 130)
        .zip(ranged(0usize, 6))
        .zip(ranged(0usize, 4))
        .zip(ranged(0usize, 4))
        .map(|(((lb, nq), d), p)| (lb, nq, d, p));
    core.zip(rest)
}

fn machine(raw: &RawCfg) -> MachineConfig {
    let ((iw, alu, mp, assoc), (lb, nq, d, p)) = *raw;
    MachineConfig {
        issue_width: iw,
        alu_units: alu,
        mem_ports: mp,
        fp_units: 1,
        branch_units: 1,
        l1d: CacheConfig { size_bytes: 1024, assoc, line_bytes: lb, latency: 1 },
        sa: SaConfig { num_queues: nq, depths: vec![d], latency: 1, ports: p },
        // Bound the run so pathological-but-valid machines terminate
        // through OutOfFuel/Deadlock instead of spinning.
        max_cycles: 500_000,
        ..MachineConfig::default()
    }
}

#[test]
fn arbitrary_machine_configs_never_panic() {
    let threads = producer_consumer();
    Checker::new("arbitrary_machine_configs_never_panic").cases(64).run(&cfg_gen(), |raw| {
        let config = machine(raw);
        let result = simulate(&threads, &[], |_, _| {}, &config);
        if config.validate().is_err() {
            prop_assert!(
                matches!(result, Err(ExecError::InvalidConfig(_))),
                "invalid machine must be rejected up front, got {result:?}"
            );
        } else if config.sa.num_queues == 0 {
            // Queue ids are validated against the synchronization array
            // at load time now, so the fault is an up-front config
            // rejection rather than a mid-run BadQueue.
            prop_assert!(
                matches!(result, Err(ExecError::InvalidConfig(_))),
                "communication with no queues must be rejected at load, got {result:?}"
            );
        } else {
            let r = result.expect("valid config must simulate");
            prop_assert!(r.return_value == Some(6), "wrong sum: {:?}", r.return_value);
        }
        Ok(())
    });
}

#[test]
fn arbitrary_queue_configs_never_panic() {
    let threads = producer_consumer();
    Checker::new("arbitrary_queue_configs_never_panic").cases(64).run(
        &ranged(0usize, 6).zip(ranged(0usize, 5)),
        |&(num_queues, capacity)| {
            let qc = QueueConfig { num_queues, capacity };
            let result = run_mt(&threads, &[], |_, _| {}, &qc, &ExecConfig::default());
            if num_queues == 0 || capacity == 0 {
                // Load-time validation rejects programs whose queues
                // can never carry a token (no queues, or zero
                // capacity) before any thread steps.
                prop_assert!(
                    matches!(result, Err(ExecError::InvalidConfig(_))),
                    "degenerate queue config must be rejected at load, got {result:?}"
                );
            } else {
                let r = result.expect("valid config must complete");
                prop_assert!(r.return_value == Some(6), "wrong sum: {:?}", r.return_value);
            }
            Ok(())
        },
    );
}

/// Regression for the stall fast-forward: a zero mispredict penalty
/// combined with a zero-latency synchronization array is the one
/// machine shape whose wakeup computation would be degenerate (no
/// strictly-future self-wakeup source left), so `validate` must reject
/// exactly that combination and nothing broader.
#[test]
fn zero_penalty_zero_latency_sa_combo_is_rejected_up_front() {
    let threads = producer_consumer();
    let mut config = MachineConfig::default();
    config.branch_model = BranchModel::StaticBtfn { penalty: 0 };

    // Penalty 0 alone: valid, simulates normally.
    let r = simulate(&threads, &[], |_, _| {}, &config).expect("penalty 0 alone is valid");
    assert_eq!(r.return_value, Some(6));

    // Latency 0 alone (ideal branches): valid, simulates normally.
    let mut lat0 = MachineConfig::default();
    lat0.sa.latency = 0;
    let r = simulate(&threads, &[], |_, _| {}, &lat0).expect("latency 0 alone is valid");
    assert_eq!(r.return_value, Some(6));

    // The combination: rejected before the first cycle runs.
    config.sa.latency = 0;
    let err = simulate(&threads, &[], |_, _| {}, &config).unwrap_err();
    assert!(
        matches!(&err, ExecError::InvalidConfig(m) if m.contains("degenerate")),
        "expected up-front rejection, got {err:?}"
    );

    // ...unless the machine has no queues at all — then there are no
    // SA wakeups to degrade. (This program communicates, so it still
    // fails queue-id validation, but as a *different* error.)
    config.sa.num_queues = 0;
    let err = simulate(&threads, &[], |_, _| {}, &config).unwrap_err();
    assert!(
        matches!(&err, ExecError::InvalidConfig(m) if !m.contains("degenerate")),
        "queue-less machines must not trip the wakeup check, got {err:?}"
    );
}

#[test]
fn empty_thread_sets_are_rejected() {
    let err = simulate(&[], &[], |_, _| {}, &MachineConfig::default()).unwrap_err();
    assert!(matches!(err, ExecError::InvalidConfig(_)), "{err}");

    let err = run_mt(&[], &[], |_, _| {}, &QueueConfig::default(), &ExecConfig::default())
        .unwrap_err();
    assert!(matches!(err, ExecError::InvalidConfig(_)), "{err}");
}

/// Direct `SyncArray` misuse — a queue id outside the array — must get
/// conservative answers, never a panic. The simulators validate queue
/// ids at load, so these are backstops for library callers that skip
/// that step.
#[test]
fn sync_array_out_of_range_queue_ids_are_total() {
    use gmt_sim::{PendingConsume, QueueFull, SyncArray};
    let mut sa = SyncArray::new(2, &[1], 1);
    let q = 7; // not a queue of this array
    assert_eq!(sa.depth_of(q), 0);
    assert_eq!(sa.occupancy(q), 0);
    assert!(!sa.can_produce(q), "a nonexistent queue never accepts a produce");
    assert!(matches!(sa.produce(q, 42, 0), Err(QueueFull)));
    let pending = PendingConsume { core: 0, dst: None, token: 0 };
    assert!(sa.consume(q, 0, pending).is_err(), "a nonexistent queue never delivers");
    assert!(!sa.has_visible_entry(q, u64::MAX));
    assert_eq!(sa.next_visible_at(q), None);
    assert_eq!(sa.pop_token(q, 0), None);
    // The misdirected operations left the real queues untouched.
    assert!(sa.can_produce(0) && sa.can_produce(1));
    assert_eq!(sa.occupancy(0), 0);
}

/// A consume with no producer anywhere is a deadlock, reported as the
/// typed error — in the timed simulator and the functional MT
/// interpreter alike.
#[test]
fn consume_without_producer_deadlocks_with_typed_error() {
    let q = QueueId(0);
    let mut t0 = FunctionBuilder::new("idle");
    t0.ret(None);
    let mut t1 = FunctionBuilder::new("starved");
    let v = t1.fresh_reg();
    t1.emit(Op::Consume { dst: v, queue: q });
    t1.ret(Some(v.into()));
    let threads = vec![t0.finish().unwrap(), t1.finish().unwrap()];

    // The default cycle budget is far beyond the no-progress window,
    // so the run ends in Deadlock (not OutOfFuel).
    let config = MachineConfig::default();
    let err = simulate(&threads, &[], |_, _| {}, &config).unwrap_err();
    assert!(matches!(err, ExecError::Deadlock(_)), "simulator: {err:?}");

    let exec = ExecConfig { max_steps: 100_000 };
    let err = run_mt(&threads, &[], |_, _| {}, &QueueConfig::default(), &exec).unwrap_err();
    assert!(matches!(err, ExecError::Deadlock(_)), "functional MT: {err:?}");
}
