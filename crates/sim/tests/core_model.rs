//! Microarchitectural unit behavior of the core model: issue-width and
//! functional-unit limits, stall-on-use, outstanding consumes with the
//! write-token guard, and SA port contention.

use gmt_ir::{BinOp, FunctionBuilder, Op, QueueId};
use gmt_sim::{simulate, MachineConfig, StallReason};

#[test]
fn issue_width_bounds_ipc() {
    // 60 independent single-cycle ops: at 6-wide issue, needs >= 10
    // cycles; a narrower machine needs proportionally more.
    let build = || {
        let mut b = FunctionBuilder::new("w");
        let x = b.const_(1);
        for _ in 0..60 {
            b.bin(BinOp::Add, x, 1i64);
        }
        b.ret(None);
        b.finish().unwrap()
    };
    let wide = simulate(&[build()], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    let narrow_cfg =
        MachineConfig { issue_width: 2, alu_units: 2, ..MachineConfig::default() };
    let narrow = simulate(&[build()], &[], |_, _| {}, &narrow_cfg).unwrap();
    assert!(wide.cycles >= 10, "{}", wide.cycles);
    assert!(
        narrow.cycles >= wide.cycles * 2,
        "narrow {} vs wide {}",
        narrow.cycles,
        wide.cycles
    );
}

#[test]
fn fp_unit_limit_throttles_fp_code() {
    // 32 independent FP ops: 2 FP units => >= 16 cycles of FP issue.
    let mut b = FunctionBuilder::new("fp");
    let x = b.const_(3);
    for _ in 0..32 {
        b.bin(BinOp::FAdd, x, 1i64);
    }
    b.ret(None);
    let f = b.finish().unwrap();
    let r = simulate(&[f], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert!(r.cycles >= 16, "{}", r.cycles);
    assert!(r.cores[0].stall_structural > 0);
}

#[test]
fn stall_on_use_not_on_issue() {
    // A load's latency hides behind independent work: the load issues,
    // 10 independent adds issue behind it, and only the dependent use
    // stalls.
    let mut b = FunctionBuilder::new("s");
    let obj = b.object("a", 4);
    let p = b.lea(obj, 0);
    let v = b.load(p, 0); // cold: memory latency
    let x = b.const_(1);
    for _ in 0..10 {
        b.bin(BinOp::Add, x, 1i64); // independent of the load
    }
    let use_v = b.bin(BinOp::Add, v, 1i64); // stalls on use
    b.ret(Some(use_v.into()));
    let f = b.finish().unwrap();
    let r = simulate(&[f], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert!(r.cores[0].stall_operand > 0, "{:?}", r.cores[0]);
    // Total is about one memory latency, not latency + 10.
    let mem = MachineConfig::default().mem_latency;
    assert!(r.cycles < mem + 20, "{} vs {}", r.cycles, mem);
}

#[test]
fn outstanding_consume_does_not_block_independents() {
    // T1 issues a consume whose producer is slow; 20 independent adds
    // behind the consume retire meanwhile (stall-on-use).
    let q = QueueId(0);
    let producer = {
        let mut b = FunctionBuilder::new("p");
        let mut v = b.const_(1);
        for _ in 0..20 {
            v = b.bin(BinOp::Mul, v, 3i64); // 20 x 3 cycles, serial
        }
        b.emit(Op::Produce { queue: q, value: v.into() });
        b.ret(None);
        b.finish().unwrap()
    };
    let consumer = {
        let mut b = FunctionBuilder::new("c");
        let d = b.fresh_reg();
        b.emit(Op::Consume { dst: d, queue: q });
        let x = b.const_(1);
        for _ in 0..20 {
            b.bin(BinOp::Add, x, 1i64);
        }
        let u = b.bin(BinOp::Add, d, 1i64); // first real use
        b.output(u);
        b.ret(None);
        b.finish().unwrap()
    };
    let r = simulate(&[producer, consumer], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    // The consumer's independent adds issue long before the value
    // arrives; only the use stalls. If consume blocked issue, the
    // consumer would show ~60 cycles of queue-empty stalls instead.
    assert_eq!(r.cores[1].stall_queue_empty, 0, "{:?}", r.cores[1]);
    assert!(r.cores[1].stall_operand > 0);
    assert_eq!(r.output, vec![i64::pow(3, 20) + 1]);
}

#[test]
fn late_delivery_respects_redefinition() {
    // The consume's destination is overwritten by a later local def
    // before the producer delivers: the late value must NOT clobber it.
    let q = QueueId(0);
    let producer = {
        let mut b = FunctionBuilder::new("p");
        let mut v = b.const_(7);
        for _ in 0..10 {
            v = b.bin(BinOp::Mul, v, 1i64); // delay
        }
        b.emit(Op::Produce { queue: q, value: v.into() });
        b.ret(None);
        b.finish().unwrap()
    };
    let consumer = {
        let mut b = FunctionBuilder::new("c");
        let d = b.fresh_reg();
        b.emit(Op::Consume { dst: d, queue: q });
        b.const_into(d, 99); // redefinition wins
        b.output(d);
        b.ret(None);
        b.finish().unwrap()
    };
    let r = simulate(&[producer, consumer], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert_eq!(r.output, vec![99]);
}

#[test]
fn sa_ports_are_shared_between_cores() {
    // Two cores each hammering produce/consume pairs compete for the 4
    // shared SA ports.
    let mk_producer = |q0: u32| {
        let mut b = FunctionBuilder::new("p");
        for k in 0..64u32 {
            b.emit(Op::Produce { queue: QueueId(q0 + (k % 4)), value: 1i64.into() });
        }
        b.ret(None);
        b.finish().unwrap()
    };
    let mk_consumer = |q0: u32| {
        let mut b = FunctionBuilder::new("c");
        for k in 0..64u32 {
            let d = b.fresh_reg();
            b.emit(Op::Consume { dst: d, queue: QueueId(q0 + (k % 4)) });
        }
        b.ret(None);
        b.finish().unwrap()
    };
    let r = simulate(
        &[mk_producer(0), mk_consumer(0)],
        &[],
        |_, _| {},
        &MachineConfig::default(),
    )
    .unwrap();
    let total_sa_stalls: u64 = r.cores.iter().map(|c| c.stall_sa_port).sum();
    assert!(total_sa_stalls > 0, "{:?}", r.cores);
    // 128 SA operations through 4 ports/cycle >= 32 cycles.
    assert!(r.cycles >= 32, "{}", r.cycles);
}

#[test]
fn stall_reasons_recorded() {
    // Smoke-test the stall taxonomy through CoreStats.
    let mut s = gmt_sim::CoreStats::default();
    for r in [
        StallReason::Operand,
        StallReason::Structural,
        StallReason::SaPort,
        StallReason::QueueFull,
        StallReason::QueueEmpty,
        StallReason::LoadLimit,
    ] {
        s.record_stall(r);
    }
    assert_eq!(s.stall_operand, 1);
    assert_eq!(s.stall_structural, 1);
    assert_eq!(s.stall_sa_port, 1);
    assert_eq!(s.stall_queue_full, 1);
    assert_eq!(s.stall_queue_empty, 1);
    assert_eq!(s.stall_load_limit, 1);
}

#[test]
fn outstanding_load_limit_enforced() {
    // 32 back-to-back cold loads from distinct lines: more than 16
    // must not be in flight at once.
    let mut b = FunctionBuilder::new("l");
    let obj = b.object("a", 4096);
    let p = b.lea(obj, 0);
    for k in 0..32 {
        b.load(p, k * 16); // distinct cache lines
    }
    b.ret(None);
    let f = b.finish().unwrap();
    let r = simulate(&[f], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert!(r.cores[0].stall_load_limit > 0, "{:?}", r.cores[0]);
}

#[test]
fn static_predictor_charges_mispredicts() {
    use gmt_sim::BranchModel;
    // A loop whose exit is mispredicted once per trip-out, and whose
    // back edge predicts correctly: only a handful of mispredicts.
    let build = || {
        let mut b = FunctionBuilder::new("bp");
        let n = b.param();
        let i = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        b.finish().unwrap()
    };
    let ideal = simulate(&[build()], &[50], |_, _| {}, &MachineConfig::default()).unwrap();
    let cfg = MachineConfig {
        branch_model: BranchModel::StaticBtfn { penalty: 6 },
        ..MachineConfig::default()
    };
    let real = simulate(&[build()], &[50], |_, _| {}, &cfg).unwrap();
    assert_eq!(real.return_value, ideal.return_value);
    assert!(real.cores[0].mispredicts >= 1, "{:?}", real.cores[0]);
    assert!(
        real.cores[0].mispredicts <= 55,
        "the loop-shaped branch should mostly predict: {:?}",
        real.cores[0]
    );
    assert!(real.cycles >= ideal.cycles);
}

#[test]
fn inflight_loads_are_pruned_not_accumulated() {
    // The outstanding-load window must count only loads still in
    // flight: completions at or before `now` are pruned, so the list
    // is bounded by the limit rather than growing for the whole run.
    use gmt_ir::interp::MemoryLayout;
    let mut b = FunctionBuilder::new("l");
    b.ret(None);
    let f = b.finish().unwrap();
    let layout = MemoryLayout::of(&f);
    let mut core = gmt_sim::Core::new(&f, &[], &layout);
    core.inflight_loads.extend([5u64, 10, 10, 20]);
    assert_eq!(core.outstanding_loads(0), 4);
    // A completion time of exactly `now` is no longer outstanding.
    assert_eq!(core.outstanding_loads(10), 1);
    assert_eq!(core.inflight_loads, vec![20], "pruned in place");
    assert_eq!(core.outstanding_loads(20), 0);
    assert!(core.inflight_loads.is_empty());
}

#[test]
fn load_limit_stalls_then_drains() {
    // 64 independent cold loads: the 16-load window fills (LoadLimit
    // stalls observed), then drains as loads complete — the run
    // terminates with every load issued instead of wedging once the
    // window first fills.
    let mut b = FunctionBuilder::new("many_loads");
    let obj = b.object("a", 512);
    let p = b.lea(obj, 0);
    for k in 0..64 {
        // One cell per cache line (64-byte lines, 8-byte cells), so
        // every load is a cold long-latency miss.
        b.load(p, k * 8);
    }
    b.ret(None);
    let f = b.finish().unwrap();
    let r = simulate(&[f], &[], |_, _| {}, &MachineConfig::default()).unwrap();
    assert!(r.cores[0].stall_load_limit > 0, "{:?}", r.cores[0]);
    assert_eq!(r.hits_l1 + r.hits_l2 + r.hits_l3 + r.hits_mem, 64, "all loads issued");
}
