//! Per-run observability records for the experiment matrix.
//!
//! Every (benchmark, scheduler, variant) evaluation produces one
//! [`RunMetrics`]: wall-clock time, dynamic-instruction and cycle
//! counts, and the compile-phase breakdown (PDG build, partition,
//! COCO, MTCG) measured by `gmt-core`'s pipeline. `repro --metrics`
//! prints the records as JSON-lines (and appends them to the
//! `gmt-testkit` bench JSON sink) followed by a summary table.

use gmt_core::CompileTimings;
use gmt_sim::CoreStats;
use gmt_testkit::json_escape;
use std::fmt::Write as _;

/// Stall cycles by [`gmt_sim::StallReason`], summed over a run's
/// cores. Unlike [`gmt_sim::CycleAttribution`] these are the engine's
/// raw stall counters (a cycle that both issued and then stalled counts
/// here), so they need no trace sink — `repro --metrics` gets them for
/// free from the timed simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Stall-on-use operand waits.
    pub operand: u64,
    /// Issue-slot / FU exhaustion.
    pub structural: u64,
    /// SA request-port contention.
    pub sa_port: u64,
    /// Produce backpressure (full queue).
    pub queue_full: u64,
    /// `consume.sync` token waits (empty queue).
    pub queue_empty: u64,
    /// Outstanding-load limit.
    pub load_limit: u64,
    /// Front-end refill after a mispredict.
    pub mispredict: u64,
}

impl StallBreakdown {
    /// Sums the per-core stall counters of one run.
    pub fn from_cores(cores: &[CoreStats]) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for c in cores {
            b.operand += c.stall_operand;
            b.structural += c.stall_structural;
            b.sa_port += c.stall_sa_port;
            b.queue_full += c.stall_queue_full;
            b.queue_empty += c.stall_queue_empty;
            b.load_limit += c.stall_load_limit;
            b.mispredict += c.stall_mispredict;
        }
        b
    }

    /// All stall cycles.
    pub fn total(&self) -> u64 {
        self.operand
            + self.structural
            + self.sa_port
            + self.queue_full
            + self.queue_empty
            + self.load_limit
            + self.mispredict
    }
}

/// One (benchmark, scheduler, variant) evaluation's observability
/// record.
#[derive(Clone, Copy, Debug)]
pub struct RunMetrics {
    /// Benchmark name (Figure 6b).
    pub benchmark: &'static str,
    /// Scheduler display name (`"GREMIO"` / `"DSWP"`).
    pub scheduler: &'static str,
    /// Variant: `"mtcg"` (baseline) or `"coco"`.
    pub variant: &'static str,
    /// Wall-clock nanoseconds spent evaluating this variant (compile
    /// phases + functional run + timed simulation when requested).
    pub wall_ns: u64,
    /// Dynamic instructions, summed over threads.
    pub instrs: u64,
    /// Cycle count from the machine model (0 if not timed).
    pub cycles: u64,
    /// Compile-phase wall-clock breakdown.
    pub timings: CompileTimings,
    /// Arbitration-cache probes (GREMIO candidate evaluations; carried
    /// by the `mtcg` record, 0 elsewhere).
    pub arb_probes: u64,
    /// Arbitration-cache hits (evaluations served without recompiling
    /// or resimulating the candidate).
    pub arb_hits: u64,
    /// Per-reason stall cycles summed over cores (all zero if not
    /// timed).
    pub stalls: StallBreakdown,
    /// Engine main-loop iterations actually evaluated by the timed
    /// simulation (0 if not timed). With the event-driven fast-forward
    /// on, `engine_steps + skipped_cycles` equals what a per-cycle run
    /// would have stepped.
    pub engine_steps: u64,
    /// Cycles the timed simulation's fast-forward jumped over instead
    /// of ticking (0 if not timed or with `GMT_SIM_SKIP=0`).
    pub skipped_cycles: u64,
}

impl RunMetrics {
    /// The record as one JSON object (one JSON-line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"scheduler\":\"{}\",\"variant\":\"{}\",\
             \"wall_ns\":{},\"instrs\":{},\"cycles\":{},\"pdg_build_ns\":{},\
             \"partition_ns\":{},\"coco_ns\":{},\"mtcg_ns\":{},\
             \"arb_probes\":{},\"arb_hits\":{},\
             \"stall_operand\":{},\"stall_structural\":{},\"stall_sa_port\":{},\
             \"stall_queue_full\":{},\"stall_queue_empty\":{},\
             \"stall_load_limit\":{},\"stall_mispredict\":{},\
             \"engine_steps\":{},\"skipped_cycles\":{}}}",
            json_escape(self.benchmark),
            json_escape(self.scheduler),
            json_escape(self.variant),
            self.wall_ns,
            self.instrs,
            self.cycles,
            self.timings.pdg_build_ns,
            self.timings.partition_ns,
            self.timings.coco_ns,
            self.timings.mtcg_ns,
            self.arb_probes,
            self.arb_hits,
            self.stalls.operand,
            self.stalls.structural,
            self.stalls.sa_port,
            self.stalls.queue_full,
            self.stalls.queue_empty,
            self.stalls.load_limit,
            self.stalls.mispredict,
            self.engine_steps,
            self.skipped_cycles,
        )
    }

    /// Fraction of simulated cycles the fast-forward skipped, or `None`
    /// when the run was not timed (`engine_steps == 0`) — callers must
    /// not print a ratio for untimed records.
    pub fn skip_ratio(&self) -> Option<f64> {
        if self.engine_steps == 0 {
            return None;
        }
        let total = self.engine_steps + self.skipped_cycles;
        Some(self.skipped_cycles as f64 / total as f64)
    }
}

/// A per-kernel stall-breakdown table (one row per record, cycles per
/// [`gmt_sim::StallReason`]); printed by `repro --metrics` after the
/// main summary table. All-zero on untimed runs.
pub fn stall_table(metrics: &[RunMetrics]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:<7} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "benchmark", "sched", "variant", "operand", "struct", "sa-port", "q-full", "q-empty", "load-lim", "mispred"
    );
    for m in metrics {
        let s = m.stalls;
        let _ = writeln!(
            out,
            "{:<14} {:<7} {:<7} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9} {:>9}",
            m.benchmark,
            m.scheduler,
            m.variant,
            s.operand,
            s.structural,
            s.sa_port,
            s.queue_full,
            s.queue_empty,
            s.load_limit,
            s.mispredict,
        );
    }
    out
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// A human-readable summary table of a metrics batch (one row per
/// record, milliseconds for all wall-clock columns).
pub fn metrics_table(metrics: &[RunMetrics]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:<7} {:>9} {:>12} {:>12} {:>8} {:>9} {:>8} {:>8} {:>9} {:>6}",
        "benchmark", "sched", "variant", "wall ms", "instrs", "cycles", "pdg ms", "part ms", "coco ms", "mtcg ms", "arb h/p", "skip"
    );
    for m in metrics {
        // Untimed records have no engine run to express a ratio of.
        let skip = match m.skip_ratio() {
            Some(r) => format!("{:.0}%", r * 100.0),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<14} {:<7} {:<7} {:>9} {:>12} {:>12} {:>8} {:>9} {:>8} {:>8} {:>9} {:>6}",
            m.benchmark,
            m.scheduler,
            m.variant,
            fmt_ms(m.wall_ns),
            m.instrs,
            m.cycles,
            fmt_ms(m.timings.pdg_build_ns),
            fmt_ms(m.timings.partition_ns),
            fmt_ms(m.timings.coco_ns),
            fmt_ms(m.timings.mtcg_ns),
            format!("{}/{}", m.arb_hits, m.arb_probes),
            skip,
        );
    }
    let total_ns: u64 = metrics.iter().map(|m| m.wall_ns).sum();
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:<7} {:>9}  ({} records)",
        "total",
        "",
        "",
        fmt_ms(total_ns),
        metrics.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            benchmark: "ks",
            scheduler: "GREMIO",
            variant: "coco",
            wall_ns: 1_500_000,
            instrs: 1234,
            cycles: 5678,
            timings: CompileTimings {
                pdg_build_ns: 100,
                partition_ns: 200,
                coco_ns: 300,
                mtcg_ns: 400,
            },
            arb_probes: 8,
            arb_hits: 3,
            stalls: StallBreakdown {
                operand: 11,
                structural: 12,
                sa_port: 13,
                queue_full: 14,
                queue_empty: 15,
                load_limit: 16,
                mispredict: 17,
            },
            engine_steps: 1420,
            skipped_cycles: 4258,
        }
    }

    #[test]
    fn json_line_shape() {
        let line = sample().to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"benchmark\":\"ks\""));
        assert!(line.contains("\"scheduler\":\"GREMIO\""));
        assert!(line.contains("\"variant\":\"coco\""));
        assert!(line.contains("\"wall_ns\":1500000"));
        assert!(line.contains("\"instrs\":1234"));
        assert!(line.contains("\"cycles\":5678"));
        assert!(line.contains("\"pdg_build_ns\":100"));
        assert!(line.contains("\"partition_ns\":200"));
        assert!(line.contains("\"coco_ns\":300"));
        assert!(line.contains("\"mtcg_ns\":400"));
        assert!(line.contains("\"arb_probes\":8"));
        assert!(line.contains("\"arb_hits\":3"));
        assert!(line.contains("\"stall_operand\":11"));
        assert!(line.contains("\"stall_queue_full\":14"));
        assert!(line.contains("\"stall_mispredict\":17"));
        assert!(line.contains("\"engine_steps\":1420"));
        assert!(line.contains("\"skipped_cycles\":4258"));
        assert_eq!(line.matches('{').count(), 1, "flat object");
    }

    #[test]
    fn skip_ratio_only_for_timed_runs() {
        let m = sample();
        assert_eq!(m.skip_ratio(), Some(4258.0 / 5678.0));
        let mut untimed = sample();
        untimed.engine_steps = 0;
        untimed.skipped_cycles = 0;
        assert_eq!(untimed.skip_ratio(), None, "no engine run, no ratio");
    }

    #[test]
    fn stall_table_has_row_per_record() {
        let t = stall_table(&[sample()]);
        assert_eq!(t.lines().count(), 2, "header + row");
        assert!(t.contains("q-full"));
        assert!(t.contains("14"));
        assert!(t.contains("15"));
    }

    #[test]
    fn stall_breakdown_sums_cores() {
        let mut a = gmt_sim::CoreStats::default();
        a.stall_operand = 2;
        a.stall_queue_empty = 3;
        let mut b = gmt_sim::CoreStats::default();
        b.stall_operand = 5;
        b.stall_queue_full = 7;
        let s = StallBreakdown::from_cores(&[a, b]);
        assert_eq!(s.operand, 7);
        assert_eq!(s.queue_full, 7);
        assert_eq!(s.queue_empty, 3);
        assert_eq!(s.total(), 17);
    }

    #[test]
    fn table_has_row_per_record() {
        let t = metrics_table(&[sample(), sample()]);
        assert_eq!(t.lines().count(), 1 + 2 + 1, "header + rows + total");
        assert!(t.contains("benchmark"));
        assert!(t.contains("arb h/p"));
        assert!(t.contains("3/8"));
        assert!(t.contains("(2 records)"));
        assert!(t.contains("skip"));
        assert!(t.contains("75%"), "4258 of 5678 cycles skipped:\n{t}");
    }

    #[test]
    fn table_prints_dash_for_untimed_skip() {
        let mut m = sample();
        m.engine_steps = 0;
        m.skipped_cycles = 0;
        let t = metrics_table(&[m]);
        let row = t.lines().nth(1).unwrap();
        assert!(row.trim_end().ends_with('-'), "untimed row shows no ratio: {row:?}");
    }
}
