//! Per-run observability records for the experiment matrix.
//!
//! Every (benchmark, scheduler, variant) evaluation produces one
//! [`RunMetrics`]: wall-clock time, dynamic-instruction and cycle
//! counts, and the compile-phase breakdown (PDG build, partition,
//! COCO, MTCG) measured by `gmt-core`'s pipeline. `repro --metrics`
//! prints the records as JSON-lines (and appends them to the
//! `gmt-testkit` bench JSON sink) followed by a summary table.

use gmt_core::CompileTimings;
use gmt_testkit::json_escape;
use std::fmt::Write as _;

/// One (benchmark, scheduler, variant) evaluation's observability
/// record.
#[derive(Clone, Copy, Debug)]
pub struct RunMetrics {
    /// Benchmark name (Figure 6b).
    pub benchmark: &'static str,
    /// Scheduler display name (`"GREMIO"` / `"DSWP"`).
    pub scheduler: &'static str,
    /// Variant: `"mtcg"` (baseline) or `"coco"`.
    pub variant: &'static str,
    /// Wall-clock nanoseconds spent evaluating this variant (compile
    /// phases + functional run + timed simulation when requested).
    pub wall_ns: u64,
    /// Dynamic instructions, summed over threads.
    pub instrs: u64,
    /// Cycle count from the machine model (0 if not timed).
    pub cycles: u64,
    /// Compile-phase wall-clock breakdown.
    pub timings: CompileTimings,
    /// Arbitration-cache probes (GREMIO candidate evaluations; carried
    /// by the `mtcg` record, 0 elsewhere).
    pub arb_probes: u64,
    /// Arbitration-cache hits (evaluations served without recompiling
    /// or resimulating the candidate).
    pub arb_hits: u64,
}

impl RunMetrics {
    /// The record as one JSON object (one JSON-line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"scheduler\":\"{}\",\"variant\":\"{}\",\
             \"wall_ns\":{},\"instrs\":{},\"cycles\":{},\"pdg_build_ns\":{},\
             \"partition_ns\":{},\"coco_ns\":{},\"mtcg_ns\":{},\
             \"arb_probes\":{},\"arb_hits\":{}}}",
            json_escape(self.benchmark),
            json_escape(self.scheduler),
            json_escape(self.variant),
            self.wall_ns,
            self.instrs,
            self.cycles,
            self.timings.pdg_build_ns,
            self.timings.partition_ns,
            self.timings.coco_ns,
            self.timings.mtcg_ns,
            self.arb_probes,
            self.arb_hits,
        )
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// A human-readable summary table of a metrics batch (one row per
/// record, milliseconds for all wall-clock columns).
pub fn metrics_table(metrics: &[RunMetrics]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:<7} {:>9} {:>12} {:>12} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "benchmark", "sched", "variant", "wall ms", "instrs", "cycles", "pdg ms", "part ms", "coco ms", "mtcg ms", "arb h/p"
    );
    for m in metrics {
        let _ = writeln!(
            out,
            "{:<14} {:<7} {:<7} {:>9} {:>12} {:>12} {:>8} {:>9} {:>8} {:>8} {:>9}",
            m.benchmark,
            m.scheduler,
            m.variant,
            fmt_ms(m.wall_ns),
            m.instrs,
            m.cycles,
            fmt_ms(m.timings.pdg_build_ns),
            fmt_ms(m.timings.partition_ns),
            fmt_ms(m.timings.coco_ns),
            fmt_ms(m.timings.mtcg_ns),
            format!("{}/{}", m.arb_hits, m.arb_probes),
        );
    }
    let total_ns: u64 = metrics.iter().map(|m| m.wall_ns).sum();
    let _ = writeln!(
        out,
        "{:<14} {:<7} {:<7} {:>9}  ({} records)",
        "total",
        "",
        "",
        fmt_ms(total_ns),
        metrics.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            benchmark: "ks",
            scheduler: "GREMIO",
            variant: "coco",
            wall_ns: 1_500_000,
            instrs: 1234,
            cycles: 5678,
            timings: CompileTimings {
                pdg_build_ns: 100,
                partition_ns: 200,
                coco_ns: 300,
                mtcg_ns: 400,
            },
            arb_probes: 8,
            arb_hits: 3,
        }
    }

    #[test]
    fn json_line_shape() {
        let line = sample().to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"benchmark\":\"ks\""));
        assert!(line.contains("\"scheduler\":\"GREMIO\""));
        assert!(line.contains("\"variant\":\"coco\""));
        assert!(line.contains("\"wall_ns\":1500000"));
        assert!(line.contains("\"instrs\":1234"));
        assert!(line.contains("\"cycles\":5678"));
        assert!(line.contains("\"pdg_build_ns\":100"));
        assert!(line.contains("\"partition_ns\":200"));
        assert!(line.contains("\"coco_ns\":300"));
        assert!(line.contains("\"mtcg_ns\":400"));
        assert!(line.contains("\"arb_probes\":8"));
        assert!(line.contains("\"arb_hits\":3"));
        assert_eq!(line.matches('{').count(), 1, "flat object");
    }

    #[test]
    fn table_has_row_per_record() {
        let t = metrics_table(&[sample(), sample()]);
        assert_eq!(t.lines().count(), 1 + 2 + 1, "header + rows + total");
        assert!(t.contains("benchmark"));
        assert!(t.contains("arb h/p"));
        assert!(t.contains("3/8"));
        assert!(t.contains("(2 records)"));
    }
}
