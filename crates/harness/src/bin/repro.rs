//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --fig 1|6a|6b|7|8|scaling|all [--quick] [--scheduler gremio|dswp|both]
//! repro --metrics [--quick] [--scheduler gremio|dswp|both]
//! ```
//!
//! The experiment matrix runs on the `gmt-testkit` worker pool; set
//! `GMT_JOBS=N` to pin the worker count (`GMT_JOBS=1` is the serial
//! reference path — output is byte-identical either way).
//!
//! `--metrics` evaluates the full timed matrix and emits one JSON-line
//! per (benchmark, scheduler, variant) — wall-clock, instruction and
//! cycle counts, compile-phase timings — to stdout and to
//! `BENCH_repro_metrics.json` (in `GMT_TESTKIT_BENCH_DIR`), then a
//! summary table.

use gmt_harness::figures;
use gmt_harness::{metrics_table, run_all_metrics, Scale, SchedulerKind};

const KNOWN_FIGS: &[&str] = &["1", "6a", "6b", "7", "8", "scaling", "all"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = String::from("all");
    let mut scale = Scale::Full;
    let mut metrics = false;
    let mut scheds = vec![SchedulerKind::Gremio, SchedulerKind::Dswp];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => fig = it.next().cloned().unwrap_or_else(|| usage("missing figure id")),
            "--quick" => scale = Scale::Quick,
            "--metrics" => metrics = true,
            "--scheduler" => {
                scheds = match it.next().map(String::as_str) {
                    Some("gremio") => vec![SchedulerKind::Gremio],
                    Some("dswp") => vec![SchedulerKind::Dswp],
                    Some("both") => vec![SchedulerKind::Gremio, SchedulerKind::Dswp],
                    other => usage(&format!("bad scheduler {other:?}")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if !KNOWN_FIGS.contains(&fig.as_str()) {
        usage(&format!("unknown figure id {fig} (known: {})", KNOWN_FIGS.join(", ")));
    }

    if metrics {
        run_metrics(&scheds, scale);
        return;
    }

    let want = |id: &str| fig == "all" || fig == id;
    if want("6a") {
        print!("{}", figures::figure6a());
        println!();
    }
    if want("6b") {
        print!("{}", figures::figure6b());
        println!();
    }
    if want("1") {
        for &k in &scheds {
            print!("{}", figures::figure1(k, scale));
            println!();
        }
    }
    if want("7") {
        for &k in &scheds {
            print!("{}", figures::figure7(k, scale));
            println!();
        }
    }
    if want("8") {
        for &k in &scheds {
            print!("{}", figures::figure8(k, scale));
            println!();
        }
    }
    if fig == "scaling" {
        for &k in &scheds {
            print!("{}", figures::thread_scaling_table(k));
            println!();
        }
    }
}

/// The `--metrics` mode: full timed matrix, JSON-lines, summary table.
fn run_metrics(scheds: &[SchedulerKind], scale: Scale) {
    let jobs = gmt_testkit::num_jobs();
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for &k in scheds {
        for outcome in run_all_metrics(k, true, scale, jobs) {
            match outcome {
                Ok(e) => records.extend(e.metrics),
                Err(e) => failures.push(e),
            }
        }
    }
    for m in &records {
        let line = m.to_json();
        println!("{line}");
        gmt_testkit::append_json_line("repro_metrics", &line);
    }
    println!();
    print!("{}", metrics_table(&records));
    let probes: u64 = records.iter().map(|m| m.arb_probes).sum();
    let hits: u64 = records.iter().map(|m| m.arb_hits).sum();
    if probes > 0 {
        println!(
            "arbitration cache: {hits}/{probes} hits ({:.1}%)",
            hits as f64 * 100.0 / probes as f64
        );
    }
    for e in &failures {
        eprintln!("error: {e}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--fig 1|6a|6b|7|8|scaling|all] [--metrics] [--quick] \
         [--scheduler gremio|dswp|both]\n\
         env: GMT_JOBS=N pins the worker-pool size (default: available parallelism)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
