//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --fig 1|6a|6b|7|8|scaling|all [--quick] [--scheduler gremio|dswp|both]
//! repro --metrics [--quick] [--scheduler gremio|dswp|both]
//! repro --verify-mt
//! repro --fuzz SECS
//! repro --trace out.json [--bench ks] [--scheduler gremio|dswp] \
//!       [--variant mtcg|coco] [--quick]
//! repro --explain ks|all [--scheduler gremio|dswp|both] \
//!       [--variant mtcg|coco] [--quick] [--json]
//! ```
//!
//! The six modes are mutually exclusive; conflicting or repeated
//! flags exit 2 with usage. The experiment matrix runs on the
//! `gmt-testkit` worker pool; set `GMT_JOBS=N` to pin the worker count
//! (`GMT_JOBS=1` is the serial reference path — output is
//! byte-identical either way).
//!
//! `--metrics` evaluates the full timed matrix and emits one JSON-line
//! per (benchmark, scheduler, variant) — wall-clock, instruction and
//! cycle counts, compile-phase timings, per-reason stall cycles — to
//! stdout and to `BENCH_repro_metrics.json` (in
//! `GMT_TESTKIT_BENCH_DIR`), then summary and stall-breakdown tables.
//!
//! `--fuzz SECS` runs the differential pipeline fuzzer (the `fuzz` bin
//! from `gmt-fuzz`) for the given wall-clock budget: corpus replay
//! first, then fresh cases; findings shrink, persist to
//! `tests/fuzz_corpus/corpus.txt`, and fail the run.
//!
//! `--trace` runs one kernel × scheduler × variant cell on the decoded
//! engine with tracing attached, writes Chrome-trace-format JSON (open
//! in `chrome://tracing` or Perfetto; one track per core, one counter
//! track per SA queue, 1 µs = 1 cycle) to the given path, and prints
//! the comm-attribution and per-queue communication tables (see
//! EXPERIMENTS.md).
//!
//! `--explain` joins the pipeline's static schedule estimate against a
//! traced run with the critical-path sink attached: per-thread and
//! per-queue estimate-vs-measurement, the dynamic critical path by
//! edge kind, the top path segments, and a one-line verdict
//! (recurrence- / queue- / balance- / mispredict-bound). `--json`
//! emits one JSON object per cell instead of the human report.

use gmt_harness::figures;
use gmt_harness::{
    comm_attribution_table, explain_cell, explain_json, explain_report, metrics_table,
    queue_comm_table, run_all_metrics, stall_table, trace_cell, verify_matrix, verify_table,
    Scale, SchedulerKind,
};
use std::collections::HashSet;

const KNOWN_FIGS: &[&str] = &["1", "6a", "6b", "7", "8", "scaling", "all"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig: Option<String> = None;
    let mut scale = Scale::Full;
    let mut metrics = false;
    let mut verify = false;
    let mut fuzz_secs: Option<u64> = None;
    let mut trace: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut json = false;
    let mut bench: Option<String> = None;
    let mut variant: Option<String> = None;
    let mut scheds: Option<Vec<SchedulerKind>> = None;
    let mut seen: HashSet<&'static str> = HashSet::new();
    // Every option may appear at most once — a repeated flag is a
    // typo or a mangled invocation, not a request.
    let mut once = |flag: &'static str| {
        if !seen.insert(flag) {
            usage(&format!("duplicate flag {flag}"));
        }
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => {
                once("--fig");
                fig = Some(it.next().cloned().unwrap_or_else(|| usage("missing figure id")));
            }
            "--quick" => {
                once("--quick");
                scale = Scale::Quick;
            }
            "--metrics" => {
                once("--metrics");
                metrics = true;
            }
            "--verify-mt" => {
                once("--verify-mt");
                verify = true;
            }
            "--fuzz" => {
                once("--fuzz");
                let v = it.next().cloned().unwrap_or_else(|| usage("missing --fuzz seconds"));
                fuzz_secs =
                    Some(v.parse().unwrap_or_else(|_| usage(&format!("bad --fuzz seconds {v:?}"))));
            }
            "--trace" => {
                once("--trace");
                trace =
                    Some(it.next().cloned().unwrap_or_else(|| usage("missing --trace path")));
            }
            "--explain" => {
                once("--explain");
                explain = Some(
                    it.next().cloned().unwrap_or_else(|| usage("missing --explain benchmark")),
                );
            }
            "--json" => {
                once("--json");
                json = true;
            }
            "--bench" => {
                once("--bench");
                bench =
                    Some(it.next().cloned().unwrap_or_else(|| usage("missing benchmark name")));
            }
            "--variant" => {
                once("--variant");
                variant = Some(it.next().cloned().unwrap_or_else(|| usage("missing variant")));
            }
            "--scheduler" => {
                once("--scheduler");
                scheds = match it.next().map(String::as_str) {
                    Some("gremio") => Some(vec![SchedulerKind::Gremio]),
                    Some("dswp") => Some(vec![SchedulerKind::Dswp]),
                    Some("both") => Some(vec![SchedulerKind::Gremio, SchedulerKind::Dswp]),
                    other => usage(&format!("bad scheduler {other:?}")),
                };
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    // Mode conflicts: --fig / --metrics / --trace are mutually
    // exclusive; --bench and --variant only mean something under
    // --trace.
    if metrics && fig.is_some() {
        usage("--fig conflicts with --metrics");
    }
    if trace.is_some() && (metrics || fig.is_some()) {
        usage("--trace conflicts with --fig and --metrics");
    }
    if explain.is_some() && (metrics || fig.is_some() || trace.is_some()) {
        usage("--explain conflicts with --fig, --metrics, and --trace");
    }
    if verify && (metrics || fig.is_some() || trace.is_some() || explain.is_some()) {
        usage("--verify-mt conflicts with --fig, --metrics, --trace, and --explain");
    }
    if fuzz_secs.is_some()
        && (verify || metrics || fig.is_some() || trace.is_some() || explain.is_some())
    {
        usage("--fuzz conflicts with --fig, --metrics, --trace, --explain, and --verify-mt");
    }
    if trace.is_none() && bench.is_some() {
        usage("--bench requires --trace");
    }
    if trace.is_none() && explain.is_none() && variant.is_some() {
        usage("--variant requires --trace or --explain");
    }
    if explain.is_none() && json {
        usage("--json requires --explain");
    }
    // Default scheduler set: gremio alone under --trace (one cell),
    // both for the figure/metrics matrix.
    let scheds = scheds.unwrap_or_else(|| {
        if trace.is_some() {
            vec![SchedulerKind::Gremio]
        } else {
            vec![SchedulerKind::Gremio, SchedulerKind::Dswp]
        }
    });
    if let Some(f) = &fig {
        if !KNOWN_FIGS.contains(&f.as_str()) {
            usage(&format!("unknown figure id {f} (known: {})", KNOWN_FIGS.join(", ")));
        }
    }

    if let Some(target) = explain {
        let coco = match variant.as_deref() {
            None | Some("coco") => true,
            Some("mtcg") => false,
            Some(v) => usage(&format!("bad variant {v} (known: mtcg, coco)")),
        };
        run_explain(&target, &scheds, coco, scale, json);
        return;
    }

    if let Some(path) = trace {
        if scheds.len() != 1 {
            usage("--trace needs a single --scheduler (gremio or dswp)");
        }
        let coco = match variant.as_deref() {
            None | Some("coco") => true,
            Some("mtcg") => false,
            Some(v) => usage(&format!("bad variant {v} (known: mtcg, coco)")),
        };
        run_trace(&path, bench.as_deref().unwrap_or("ks"), scheds[0], coco, scale);
        return;
    }

    if verify {
        run_verify();
        return;
    }

    if let Some(secs) = fuzz_secs {
        run_fuzz(secs);
        return;
    }

    if metrics {
        run_metrics(&scheds, scale);
        return;
    }

    let fig = fig.unwrap_or_else(|| String::from("all"));
    let want = |id: &str| fig == "all" || fig == id;
    if want("6a") {
        print!("{}", figures::figure6a());
        println!();
    }
    if want("6b") {
        print!("{}", figures::figure6b());
        println!();
    }
    if want("1") {
        for &k in &scheds {
            print!("{}", figures::figure1(k, scale));
            println!();
        }
    }
    if want("7") {
        for &k in &scheds {
            print!("{}", figures::figure7(k, scale));
            println!();
        }
    }
    if want("8") {
        for &k in &scheds {
            print!("{}", figures::figure8(k, scale));
            println!();
        }
    }
    if fig == "scaling" {
        for &k in &scheds {
            print!("{}", figures::thread_scaling_table(k));
            println!();
        }
    }
}

/// The `--trace` mode: one traced cell, Chrome JSON to `path`, tables
/// to stdout.
fn run_trace(path: &str, bench: &str, kind: SchedulerKind, coco: bool, scale: Scale) {
    let Some(w) = gmt_workloads::by_benchmark(bench) else {
        usage(&format!("unknown benchmark {bench}"));
    };
    let cell = match trace_cell(&w, kind, coco, scale) {
        Ok(cell) => cell,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(path, &cell.chrome_json) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    print!("{}", comm_attribution_table(&cell));
    println!();
    print!("{}", queue_comm_table(&cell));
    if cell.dropped_events > 0 {
        println!(
            "warning: {} raw trace events dropped from the ring buffer \
             (the tables above still cover the whole run; the Chrome JSON \
             event log is a suffix)",
            cell.dropped_events
        );
    }
    println!("trace written to {path}");
}

/// The `--explain` mode: the estimate-vs-measurement join for one
/// benchmark (or `all`), per requested scheduler. Human report by
/// default, one JSON line per cell with `--json`. Exits 1 if any cell
/// fails (including a trace-invariant violation).
fn run_explain(target: &str, scheds: &[SchedulerKind], coco: bool, scale: Scale, json: bool) {
    let workloads = if target == "all" {
        gmt_workloads::catalog()
    } else {
        match gmt_workloads::by_benchmark(target) {
            Some(w) => vec![w],
            None => usage(&format!("unknown benchmark {target} (or \"all\")")),
        }
    };
    let mut failed = false;
    for &kind in scheds {
        for w in &workloads {
            match explain_cell(w, kind, coco, scale) {
                Ok(cell) => {
                    if json {
                        println!("{}", explain_json(&cell));
                    } else {
                        print!("{}", explain_report(&cell));
                        println!();
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// The `--verify-mt` mode: the static queue-protocol validator over the
/// full kernel × scheduler × ±COCO matrix at the paper's queue depths.
/// Exits 1 if any configuration fails to parallelize or violates the
/// protocol.
fn run_verify() {
    let results = verify_matrix(gmt_testkit::num_jobs());
    print!("{}", verify_table(&results));
    let cells = results.len();
    let bad = results.iter().filter(|r| !matches!(r, Ok(c) if c.ok())).count();
    if bad > 0 {
        eprintln!("error: {bad}/{cells} configurations failed queue-protocol verification");
        std::process::exit(1);
    }
    println!("all {cells} configurations verify");
}

/// The `--fuzz` mode: the time-budgeted differential pipeline fuzzer.
/// Exits 1 on any finding (which is also shrunk and persisted to the
/// corpus by the driver).
fn run_fuzz(secs: u64) {
    let opts = gmt_fuzz::FuzzOptions { secs: Some(secs), ..gmt_fuzz::FuzzOptions::default() };
    match gmt_fuzz::fuzz_run(&opts) {
        Ok(stats) => {
            println!("{}", stats.summary());
            println!("modes: {}", stats.mode_breakdown());
            if stats.findings > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// The `--metrics` mode: full timed matrix, JSON-lines, summary table.
fn run_metrics(scheds: &[SchedulerKind], scale: Scale) {
    let jobs = gmt_testkit::num_jobs();
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for &k in scheds {
        for outcome in run_all_metrics(k, true, scale, jobs) {
            match outcome {
                Ok(e) => records.extend(e.metrics),
                Err(e) => failures.push(e),
            }
        }
    }
    for m in &records {
        let line = m.to_json();
        println!("{line}");
        gmt_testkit::append_json_line("repro_metrics", &line);
    }
    println!();
    print!("{}", metrics_table(&records));
    println!();
    print!("{}", stall_table(&records));
    let probes: u64 = records.iter().map(|m| m.arb_probes).sum();
    let hits: u64 = records.iter().map(|m| m.arb_hits).sum();
    if probes > 0 {
        println!(
            "arbitration cache: {hits}/{probes} hits ({:.1}%)",
            hits as f64 * 100.0 / probes as f64
        );
    }
    // Aggregate fast-forward ratio, only over records that actually ran
    // the timed engine (no ratio exists for engine_steps == 0).
    let steps: u64 = records.iter().map(|m| m.engine_steps).sum();
    let skipped: u64 = records.iter().map(|m| m.skipped_cycles).sum();
    if steps > 0 {
        println!(
            "stall fast-forward: {skipped}/{} cycles skipped ({:.1}%)",
            steps + skipped,
            skipped as f64 * 100.0 / (steps + skipped) as f64
        );
    }
    for e in &failures {
        eprintln!("error: {e}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--fig 1|6a|6b|7|8|scaling|all] [--metrics] [--verify-mt] [--fuzz SECS] \
         [--quick] [--scheduler gremio|dswp|both]\n\
         \x20      repro --trace <out.json> [--bench NAME] [--scheduler gremio|dswp] \
         [--variant mtcg|coco] [--quick]\n\
         \x20      repro --explain <NAME|all> [--scheduler gremio|dswp|both] \
         [--variant mtcg|coco] [--quick] [--json]\n\
         modes --fig / --metrics / --trace / --explain / --verify-mt / --fuzz are mutually \
         exclusive; each flag may appear once\n\
         env: GMT_JOBS=N pins the worker-pool size (default: available parallelism)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
