//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro --fig 1|6a|6b|7|8|all [--quick] [--scheduler gremio|dswp|both]
//! ```

use gmt_harness::figures;
use gmt_harness::{Scale, SchedulerKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = String::from("all");
    let mut scale = Scale::Full;
    let mut scheds = vec![SchedulerKind::Gremio, SchedulerKind::Dswp];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => fig = it.next().cloned().unwrap_or_else(|| usage("missing figure id")),
            "--quick" => scale = Scale::Quick,
            "--scheduler" => {
                scheds = match it.next().map(String::as_str) {
                    Some("gremio") => vec![SchedulerKind::Gremio],
                    Some("dswp") => vec![SchedulerKind::Dswp],
                    Some("both") => vec![SchedulerKind::Gremio, SchedulerKind::Dswp],
                    other => usage(&format!("bad scheduler {other:?}")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }

    let want = |id: &str| fig == "all" || fig == id;
    if want("6a") {
        print!("{}", figures::figure6a());
        println!();
    }
    if want("6b") {
        print!("{}", figures::figure6b());
        println!();
    }
    if want("1") {
        for &k in &scheds {
            print!("{}", figures::figure1(k, scale));
            println!();
        }
    }
    if want("7") {
        for &k in &scheds {
            print!("{}", figures::figure7(k, scale));
            println!();
        }
    }
    if want("8") {
        for &k in &scheds {
            print!("{}", figures::figure8(k, scale));
            println!();
        }
    }
    if fig == "scaling" {
        for &k in &scheds {
            print!("{}", figures::thread_scaling_table(k));
            println!();
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: repro [--fig 1|6a|6b|7|8|scaling|all] [--quick] [--scheduler gremio|dswp|both]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
