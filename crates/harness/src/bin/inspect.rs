//! `inspect` — dump the partition and plan for one benchmark
//! (debugging aid; not part of the reproduction surface).

use gmt_core::{CocoConfig, Parallelizer};
use gmt_harness::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("ks");
    let kind = match args.get(1).map(String::as_str) {
        Some("dswp") => SchedulerKind::Dswp,
        _ => SchedulerKind::Gremio,
    };
    let Some(w) = gmt_workloads::by_benchmark(bench) else {
        let known: Vec<&str> =
            gmt_workloads::catalog().iter().map(|w| w.benchmark).collect();
        eprintln!("error: unknown benchmark {bench} (known: {})", known.join(", "));
        std::process::exit(2);
    };
    let train = match w.run_train() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {bench}: train run failed: {e}");
            std::process::exit(1);
        }
    };
    let f = &w.function;

    let result = match Parallelizer::new(kind.scheduler())
        .with_coco(CocoConfig::default())
        .parallelize(f, &train.profile)
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {bench}: coco parallelization failed: {e}");
            std::process::exit(1);
        }
    };
    let base = match Parallelizer::new(kind.scheduler()).parallelize(f, &train.profile) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {bench}: baseline parallelization failed: {e}");
            std::process::exit(1);
        }
    };

    println!("== {} under {} ==", bench, kind.name());
    println!("blocks:");
    for b in f.blocks() {
        let threads: Vec<String> = f
            .block(b)
            .all_instrs()
            .map(|i| format!("{}", result.partition.thread_of(i).0))
            .collect();
        println!(
            "  {:?} ({:<14}) weight {:>8}: threads {}",
            b,
            f.block(b).name,
            train.profile.block_weight(f, b),
            threads.join("")
        );
    }
    println!("\nbaseline plan items:");
    for item in base.output.plan.items() {
        println!(
            "  {:?} {:?}->{:?}: {} points {:?}",
            item.kind,
            item.from,
            item.to,
            item.points.len(),
            item.points.iter().take(6).collect::<Vec<_>>()
        );
    }
    println!("\ncoco plan items:");
    for item in result.output.plan.items() {
        println!(
            "  {:?} {:?}->{:?}: {} points {:?}",
            item.kind,
            item.from,
            item.to,
            item.points.len(),
            item.points.iter().take(6).collect::<Vec<_>>()
        );
    }
    println!(
        "\nbaseline dyn cost {} vs coco {}",
        base.output.plan.dynamic_cost(f, &train.profile),
        result.output.plan.dynamic_cost(f, &train.profile)
    );
    for t in result.partition.threads() {
        println!(
            "relevant branches T{}: baseline {:?} coco {:?}",
            t.0,
            base.output.plan.relevant_branches(t),
            result.output.plan.relevant_branches(t)
        );
    }
}
