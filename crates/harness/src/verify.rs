//! The `repro --verify-mt` mode: run the static queue-protocol
//! validator ([`gmt_core::verify_mt`]) over the full experiment matrix
//! — every catalog kernel × {GREMIO, DSWP} × {baseline MTCG, MTCG+COCO}
//! — at the *allocated* per-queue depths: the profile-weighted
//! allocation where hot loop-carried queues get the scheduler's paper
//! depth (GREMIO 1, DSWP 32) and cold control queues get a single
//! entry.
//!
//! Release builds skip the pipeline's debug-assert validation stage, so
//! this mode is the CI-facing proof that every configuration the
//! figures measure obeys the produce/consume protocol: matching
//! per-queue sequences, plan↔code positions, a cycle-free inter-thread
//! wait graph (cross-block arcs included) at each queue's allocated
//! depth, and fresh values at every communication point (Defs. 1–2 of
//! the paper).

use crate::{fail, HarnessError, SchedulerKind};
use gmt_core::{CocoConfig, MtVerifyError, Parallelizer};
use gmt_pdg::Pdg;
use gmt_workloads::{catalog, Workload};

/// One cell of the verification matrix.
#[derive(Clone, Debug)]
pub struct VerifyCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Whether COCO ran.
    pub coco: bool,
    /// Depth granted to hot queues by the allocator (the scheduler's
    /// paper depth; cold queues get 1).
    pub hot_depth: usize,
    /// The allocated per-queue depths the wait graph was checked at.
    pub depths: Vec<usize>,
    /// Number of SA queues the plan allocated.
    pub queues: u32,
    /// Protocol violations (empty = the cell verifies).
    pub errors: Vec<MtVerifyError>,
}

impl VerifyCell {
    /// True when the cell verified cleanly.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Compact depth-range rendering for the table, e.g. `1` or `1-32`.
    pub fn depth_range(&self) -> String {
        let min = self.depths.iter().min().copied().unwrap_or(1);
        let max = self.depths.iter().max().copied().unwrap_or(1);
        if min == max {
            format!("{min}")
        } else {
            format!("{min}-{max}")
        }
    }
}

/// Verifies one (kernel, scheduler, ±COCO) configuration.
///
/// # Errors
///
/// Returns a [`HarnessError`] if profiling or parallelization itself
/// fails; validator findings are *not* errors here — they come back in
/// [`VerifyCell::errors`].
pub fn verify_cell(
    w: &Workload,
    kind: SchedulerKind,
    coco: bool,
) -> Result<VerifyCell, HarnessError> {
    let b = w.benchmark;
    let train = w.run_train().map_err(fail(b, "train run"))?;
    let mut par = Parallelizer::new(kind.scheduler());
    if coco {
        par = par.with_coco(CocoConfig::default());
    }
    let r = par.parallelize(&w.function, &train.profile).map_err(fail(b, "parallelization"))?;
    let pdg = Pdg::build(&w.function);
    // Verify at the *allocated* per-queue depths (hot loop-carried
    // queues at the scheduler's paper depth, cold ones at 1) — the
    // depths a depth-aware synchronization array would provision, and
    // strictly harsher on back-pressure than the old uniform scalar.
    let errors = gmt_core::verify_mt(&w.function, &r.partition, &pdg, &r.output, &r.queue_depths);
    Ok(VerifyCell {
        benchmark: b,
        scheduler: kind.name(),
        coco,
        hot_depth: kind.queue_depth(),
        queues: r.num_queues(),
        depths: r.queue_depths,
        errors,
    })
}

/// Runs the whole matrix — catalog × {GREMIO, DSWP} × {±COCO} — on
/// `jobs` workers, in deterministic (catalog, scheduler, variant)
/// order.
pub fn verify_matrix(jobs: usize) -> Vec<Result<VerifyCell, HarnessError>> {
    let mut cells: Vec<(Workload, SchedulerKind, bool)> = Vec::new();
    for w in catalog() {
        for kind in [SchedulerKind::Gremio, SchedulerKind::Dswp] {
            for coco in [false, true] {
                let w = gmt_workloads::by_benchmark(w.benchmark).expect("catalog name");
                cells.push((w, kind, coco));
            }
        }
    }
    gmt_testkit::par_map(cells, jobs, |_i, (w, kind, coco)| verify_cell(&w, kind, coco))
}

/// Renders the matrix results as a fixed-width table, one line per
/// cell, followed by any validator findings in full.
pub fn verify_table(results: &[Result<VerifyCell, HarnessError>]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{:<12} {:<8} {:<6} {:>6} {:>7}  status", "benchmark", "sched", "coco", "depths", "queues");
    let mut findings = Vec::new();
    for r in results {
        match r {
            Ok(c) => {
                let _ = writeln!(
                    s,
                    "{:<12} {:<8} {:<6} {:>6} {:>7}  {}",
                    c.benchmark,
                    c.scheduler,
                    if c.coco { "yes" } else { "no" },
                    c.depth_range(),
                    c.queues,
                    if c.ok() { "ok" } else { "FAIL" }
                );
                if !c.ok() {
                    findings.push(c);
                }
            }
            Err(e) => {
                let _ = writeln!(s, "{:<12} {:<8} {:<6} {:>6} {:>7}  ERROR: {e}", e.benchmark, "-", "-", "-", "-");
            }
        }
    }
    for c in findings {
        let _ = writeln!(
            s,
            "\n{} / {} / {}:",
            c.benchmark,
            c.scheduler,
            if c.coco { "coco" } else { "mtcg" }
        );
        for e in &c.errors {
            let _ = writeln!(s, "  - {e}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_verifies() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        for coco in [false, true] {
            let c = verify_cell(&w, SchedulerKind::Dswp, coco).expect("pipeline runs");
            assert!(c.ok(), "ks/DSWP/coco={coco} violates the protocol: {:?}", c.errors);
            assert_eq!(c.hot_depth, 32);
            assert_eq!(c.depths.len(), c.queues as usize, "one depth per queue");
            assert!(c.depths.iter().all(|&d| d == 1 || d == 32), "{:?}", c.depths);
        }
    }

    #[test]
    fn table_marks_clean_cells_ok() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let cell = verify_cell(&w, SchedulerKind::Gremio, true).unwrap();
        let table = verify_table(&[Ok(cell)]);
        assert!(table.contains("GREMIO"), "{table}");
        assert!(table.contains("ok"), "{table}");
        assert!(!table.contains("FAIL"), "{table}");
    }
}
