//! Traced evaluation of one kernel × scheduler cell (`repro --trace`).
//!
//! Compiles one workload under one scheduler, runs the chosen variant
//! on the decoded engine with both shipped sinks attached
//! ([`TraceAggregator`] + [`ChromeTraceSink`]), and packages the result
//! as a [`TracedCell`]: the Chrome-trace JSON, the per-thread cycle
//! attribution (compute / per-[`StallReason`] / idle — the exact
//! decomposition needed to evaluate a COCO cut), and the per-queue
//! communication counters tied back to `gmt-mtcg`'s [`QueueLabel`]s.
//!
//! The attribution invariant — every thread's decomposition sums to the
//! run's total cycle count — is checked by
//! [`gmt_sim::check_attribution`] on every traced run; a violation is
//! an engine bug and surfaces as a [`HarnessError`].
//!
//! [`StallReason`]: gmt_sim::StallReason

use crate::{fail, machine_for, parallelize_pair, HarnessError, Scale, SchedulerKind};
use gmt_mtcg::{CommKind, CommPoint, QueueLabel};
use gmt_sim::{
    check_attribution, simulate_decoded_traced, ChromeTraceSink, CycleAttribution,
    OccupancySummary, QueueTraceStats, TraceAggregator,
};
use gmt_workloads::Workload;
use std::fmt::Write as _;

/// Raw events kept by the aggregator's ring buffer (the summary tables
/// cover the whole run regardless).
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Everything one traced run produces.
#[derive(Clone, Debug)]
pub struct TracedCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Variant traced: `"mtcg"` or `"coco"`.
    pub variant: &'static str,
    /// Total cycles of the traced run.
    pub cycles: u64,
    /// Per-thread cycle decomposition; each entry sums to `cycles`.
    pub attribution: Vec<CycleAttribution>,
    /// Per-queue communication counters (indexed by queue id).
    pub queues: Vec<QueueTraceStats>,
    /// Per-queue time-weighted occupancy distribution (p50/p95/max
    /// dwell levels; indexed by queue id, parallel to `queues`).
    pub occupancy: Vec<OccupancySummary>,
    /// Static queue labels from MTCG (one per scheduled occurrence).
    pub labels: Vec<QueueLabel>,
    /// Raw events the aggregator's ring buffer dropped (the summary
    /// tables still cover the whole run; nonzero only means the
    /// *event log* is a suffix).
    pub dropped_events: u64,
    /// The run as Chrome-trace-format JSON.
    pub chrome_json: String,
}

/// Runs one kernel × scheduler × variant cell with tracing attached.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the benchmark and failing phase —
/// including an attribution-invariant violation, which would mean the
/// engine emitted an inconsistent event stream.
pub fn trace_cell(
    w: &Workload,
    kind: SchedulerKind,
    coco: bool,
    scale: Scale,
) -> Result<TracedCell, HarnessError> {
    let b = w.benchmark;
    let train = w.run_train().map_err(fail(b, "train run"))?;
    let (base, opt, _arb) = parallelize_pair(w, kind, &train.profile)?;
    let p = if coco { &opt } else { &base };
    let machine = machine_for(p, kind);
    let program =
        gmt_ir::decoded::DecodedProgram::decode(p.threads()).map_err(fail(b, "decode"))?;
    let args: &[i64] = match scale {
        Scale::Quick => &w.train_args,
        Scale::Full => &w.ref_args,
    };
    let ncores = p.threads().len();
    let nqueues = machine.sa.num_queues;
    let mut sink = (
        TraceAggregator::new(ncores, nqueues, TRACE_RING_CAPACITY),
        ChromeTraceSink::new(ncores, nqueues),
    );
    let result = simulate_decoded_traced(&program, args, w.init, &machine, &mut sink)
        .map_err(fail(b, "traced sim"))?;
    check_attribution(&sink.0, &result).map_err(fail(b, "attribution check"))?;
    Ok(TracedCell {
        benchmark: b,
        scheduler: kind.name(),
        variant: if coco { "coco" } else { "mtcg" },
        cycles: result.cycles,
        attribution: sink.0.core_attribution(),
        queues: sink.0.queue_stats().to_vec(),
        occupancy: sink.0.queue_occupancy(),
        labels: p.queue_labels().to_vec(),
        dropped_events: sink.0.dropped_events(),
        chrome_json: sink.1.into_json(),
    })
}

/// The comm-attribution report: one row per thread splitting the run's
/// total cycles into compute / operand-stall / queue-full / queue-empty
/// / other stalls / idle. Rows sum to the total cycle count — compare
/// the mtcg and coco variants of a cell to see exactly which stall
/// bucket a COCO cut reclaimed.
pub fn comm_attribution_table(cell: &TracedCell) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "comm attribution: {} / {} / {} ({} cycles)",
        cell.benchmark, cell.scheduler, cell.variant, cell.cycles
    );
    let _ = writeln!(
        out,
        "{:<7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "thread", "compute", "operand", "q-full", "q-empty", "other", "idle", "total"
    );
    for (t, a) in cell.attribution.iter().enumerate() {
        let other = a.structural + a.sa_port + a.load_limit + a.mispredict;
        let _ = writeln!(
            out,
            "{:<7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            t, a.compute, a.operand, a.queue_full, a.queue_empty, other, a.idle,
            a.total()
        );
    }
    out
}

/// Renders one queue label compactly: what travels, between which
/// threads, at which original-CFG point.
fn label_text(l: &QueueLabel) -> String {
    let what = match l.kind {
        CommKind::Register(r) => format!("r{}", r.0),
        CommKind::Memory => "sync".to_string(),
    };
    let at = match l.point {
        CommPoint::Before(i) => format!("before i{}", i.0),
        CommPoint::After(i) => format!("after i{}", i.0),
        CommPoint::BlockStart(b) => format!("start B{}", b.index()),
    };
    format!("{what} t{}->t{} {at}", l.from.0, l.to.0)
}

/// The per-queue communication table: dynamic produce/consume counts,
/// stall pressure, occupancy high-water mark, and time-weighted
/// occupancy distribution (the cycles-dwelled p50/p95 levels) per
/// active queue, each tied back to the plan occurrence(s) MTCG
/// assigned to it.
pub fn queue_comm_table(cell: &TracedCell) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>9} {:>9} {:>11} {:>11} {:>8} {:>11}  {}",
        "queue", "produces", "consumes", "deferred", "full-stall", "empty-stall", "max-occ",
        "occ-dwell", "plan"
    );
    let mut any = false;
    for (q, qs) in cell.queues.iter().enumerate() {
        if !qs.is_active() {
            continue;
        }
        any = true;
        let labels: Vec<String> = cell
            .labels
            .iter()
            .filter(|l| l.queue.0 as usize == q)
            .map(label_text)
            .collect();
        // p50/p95/max of the dwell-time distribution; the dwell max
        // can undershoot max-occ when a level lasted zero cycles.
        let occ = cell.occupancy.get(q).copied().unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>9} {:>11} {:>11} {:>8} {:>11}  {}",
            format!("q{q}"),
            qs.produces,
            qs.consumes,
            qs.deferred_consumes,
            qs.full_stall_cycles,
            qs.empty_stall_cycles,
            qs.max_occupancy,
            format!("{}/{}/{}", occ.p50, occ.p95, occ.max),
            labels.join("; "),
        );
    }
    if !any {
        let _ = writeln!(out, "(no queue traffic)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(kind: SchedulerKind, coco: bool) -> TracedCell {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        trace_cell(&w, kind, coco, Scale::Quick).expect("traces")
    }

    #[test]
    fn attribution_rows_sum_to_total_cycles() {
        let cell = traced(SchedulerKind::Dswp, true);
        assert!(cell.cycles > 0);
        assert!(!cell.attribution.is_empty());
        for a in &cell.attribution {
            assert_eq!(a.total(), cell.cycles, "decomposition covers every cycle");
        }
        let table = comm_attribution_table(&cell);
        assert!(table.contains("thread"));
        assert!(table.contains(&cell.cycles.to_string()));
    }

    #[test]
    fn traced_cycles_match_untraced_run() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let cell = trace_cell(&w, SchedulerKind::Dswp, false, Scale::Quick).unwrap();
        let r = crate::evaluate(&w, SchedulerKind::Dswp, true, Scale::Quick).unwrap();
        assert_eq!(cell.cycles, r.mtcg.cycles, "observer effect: tracing changed timing");
    }

    #[test]
    fn chrome_json_has_core_and_queue_tracks() {
        let cell = traced(SchedulerKind::Dswp, true);
        let json = &cell.chrome_json;
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"name\":\"core 0\""));
        assert!(json.contains("\"name\":\"core 1\""));
        assert!(json.contains("\"ph\":\"C\""), "queue counter track present");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn queue_table_ties_traffic_to_plan_labels() {
        let cell = traced(SchedulerKind::Gremio, false);
        let active: Vec<usize> = cell
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| q.produces > 0)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            return; // single-threaded arbitration outcome: no traffic
        }
        let table = queue_comm_table(&cell);
        for q in active {
            assert!(table.contains(&format!("q{q}")), "active queue {q} has a row");
            assert!(
                cell.labels.iter().any(|l| l.queue.0 as usize == q),
                "active queue {q} is labeled by the plan"
            );
        }
        assert!(table.contains("->"), "labels name the thread pair");
    }

    #[test]
    fn queue_table_carries_occupancy_distribution() {
        let cell = traced(SchedulerKind::Dswp, false);
        assert_eq!(cell.occupancy.len(), cell.queues.len(), "one summary per queue");
        let table = queue_comm_table(&cell);
        assert!(table.contains("occ-dwell"), "distribution column present:\n{table}");
        for (q, qs) in cell.queues.iter().enumerate() {
            if qs.is_active() {
                let occ = cell.occupancy[q];
                assert!(
                    table.contains(&format!("{}/{}/{}", occ.p50, occ.p95, occ.max)),
                    "queue {q} row shows its p50/p95/max"
                );
                assert!(occ.p50 <= occ.p95 && occ.p95 <= occ.max.max(occ.p95));
            }
        }
        // The summary tables cover the whole run even when the raw
        // event ring wrapped; the count is surfaced, not hidden.
        let _ = cell.dropped_events;
    }
}
