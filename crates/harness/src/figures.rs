//! Formatted reproductions of the paper's figures.

use crate::{mean, run_all, BenchResult, Scale, SchedulerKind};
use gmt_sim::MachineConfig;
use gmt_workloads::catalog;
use std::fmt::Write as _;

/// Figure 1: breakdown of dynamic instructions into computation and
/// communication under baseline MTCG, for one scheduler.
pub fn figure1(kind: SchedulerKind, scale: Scale) -> String {
    let results = run_all(kind, false, scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1{}: dynamic instruction breakdown, {} + MTCG",
        match kind {
            SchedulerKind::Gremio => "(a)",
            SchedulerKind::Dswp => "(b)",
        },
        kind.name()
    );
    let _ = writeln!(out, "{:<14} {:>12} {:>14} {:>8}", "benchmark", "computation", "communication", "comm%");
    for r in &results {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>14} {:>7.1}%",
            r.benchmark,
            r.mtcg.counts.computation,
            r.mtcg.counts.comm_total(),
            r.comm_fraction_pct()
        );
    }
    let avg = mean(results.iter().map(BenchResult::comm_fraction_pct));
    let _ = writeln!(out, "{:<14} {:>12} {:>14} {:>7.1}%", "average", "", "", avg);
    out
}

/// Figure 6(a): the machine-details table.
pub fn figure6a() -> String {
    format!("Figure 6(a): machine details\n{}\n", MachineConfig::default().describe())
}

/// Figure 6(b): the selected benchmark functions.
pub fn figure6b() -> String {
    let mut out = String::from("Figure 6(b): selected benchmark functions\n");
    let _ = writeln!(out, "{:<14} {:<28} {:>7}", "benchmark", "function", "exec %");
    for w in catalog() {
        let _ = writeln!(out, "{:<14} {:<28} {:>6}%", w.benchmark, w.name, w.exec_pct);
    }
    out
}

/// Figure 7: relative dynamic communication / synchronization after
/// applying COCO, for one scheduler (100% = no reduction).
pub fn figure7(kind: SchedulerKind, scale: Scale) -> String {
    let results = run_all(kind, false, scale);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7: relative dynamic communication after COCO, {}", kind.name());
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>10} {:>11}   {:>9} {:>9}",
        "benchmark", "MTCG comm", "COCO comm", "relative", "reduction", "MTCG sync", "COCO sync"
    );
    for r in &results {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>9.1}% {:>10.1}%   {:>9} {:>9}",
            r.benchmark,
            r.mtcg.counts.comm_total(),
            r.coco.counts.comm_total(),
            r.relative_comm_pct(),
            100.0 - r.relative_comm_pct(),
            r.mtcg.counts.synchronization,
            r.coco.counts.synchronization,
        );
    }
    let avg = mean(results.iter().map(BenchResult::relative_comm_pct));
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>9.1}% {:>10.1}%",
        "average", "", "", avg, 100.0 - avg
    );
    out
}

/// Figure 8: speedup over single-threaded execution, without and with
/// COCO, for one scheduler. Timed with the cycle-level machine model.
pub fn figure8(kind: SchedulerKind, scale: Scale) -> String {
    let results = run_all(kind, true, scale);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 8: speedup over single-threaded, {}", kind.name());
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "benchmark", "seq cycles", "MTCG cycles", "COCO cycles", "MTCG speedup", "w/ COCO"
    );
    for r in &results {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:>12} {:>11.2}x {:>8.2}x",
            r.benchmark,
            r.seq_cycles,
            r.mtcg.cycles,
            r.coco.cycles,
            r.speedup_mtcg(),
            r.speedup_coco()
        );
    }
    let g_m = crate::geo_mean(results.iter().map(BenchResult::speedup_mtcg));
    let g_c = crate::geo_mean(results.iter().map(BenchResult::speedup_coco));
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>11.2}x {:>8.2}x  (geomean)",
        "average", "", "", "", g_m, g_c
    );
    out
}

/// Extension study (paper §6): communication growth and COCO savings as
/// the thread count scales — "as more threads are created, the larger
/// the number of inter-thread dependences to be respected, and
/// therefore the larger the fraction of communication instructions."
pub fn thread_scaling_table(kind: SchedulerKind) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Extension: thread scaling, {}", kind.name());
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>12} {:>12} {:>10} {:>9}",
        "benchmark", "threads", "MTCG comm", "COCO comm", "comm frac", "reduction"
    );
    for w in catalog() {
        for p in crate::thread_scaling(&w, kind, &[2, 4]) {
            let red = if p.mtcg_comm == 0 {
                0.0
            } else {
                100.0 - p.coco_comm as f64 * 100.0 / p.mtcg_comm as f64
            };
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>12} {:>12} {:>9.1}% {:>8.1}%",
                w.benchmark, p.threads, p.mtcg_comm, p.coco_comm, p.comm_fraction_pct, red
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let a = figure6a();
        assert!(a.contains("6-issue"));
        let b = figure6b();
        assert!(b.contains("FindMaxGpAndSwap"));
        assert!(b.contains("458.sjeng"));
    }
}


#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn figure1_renders_all_rows() {
        let t = figure1(SchedulerKind::Dswp, Scale::Quick);
        for w in catalog() {
            assert!(t.contains(w.benchmark), "missing {}", w.benchmark);
        }
        assert!(t.contains("average"));
    }

    #[test]
    fn figure7_renders_with_sync_columns() {
        let t = figure7(SchedulerKind::Dswp, Scale::Quick);
        assert!(t.contains("MTCG sync"));
        assert!(t.contains("reduction"));
        assert_eq!(t.lines().count(), 2 + 11 + 1, "header x2 + rows + average");
    }
}
