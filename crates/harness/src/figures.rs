//! Formatted reproductions of the paper's figures.
//!
//! Each `figureN(kind, scale)` runs its measurements on the worker
//! pool ([`run_all`]) and renders the rows. The `render_*` functions
//! take pre-computed results, so tests (and callers that already hold
//! results) can render without re-running the matrix. A benchmark that
//! failed renders as a `FAILED (<phase>: <error>)` line in its row
//! position; averages are taken over the successful rows.

use crate::{mean, run_all, BenchResult, HarnessError, Scale, SchedulerKind};
use gmt_sim::MachineConfig;
use gmt_workloads::catalog;
use std::fmt::Write as _;

/// One benchmark's outcome within a figure.
pub type FigureRow = Result<BenchResult, HarnessError>;

fn failed_line(out: &mut String, e: &HarnessError) {
    let _ = writeln!(out, "{:<14} FAILED ({}: {})", e.benchmark, e.phase, e.source);
}

fn ok_rows(rows: &[FigureRow]) -> impl Iterator<Item = &BenchResult> {
    rows.iter().filter_map(|r| r.as_ref().ok())
}

/// Figure 1: breakdown of dynamic instructions into computation and
/// communication under baseline MTCG, for one scheduler.
pub fn figure1(kind: SchedulerKind, scale: Scale) -> String {
    render_figure1(&run_all(kind, false, scale), kind)
}

/// Renders Figure 1 from pre-computed rows.
pub fn render_figure1(rows: &[FigureRow], kind: SchedulerKind) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1{}: dynamic instruction breakdown, {} + MTCG",
        match kind {
            SchedulerKind::Gremio => "(a)",
            SchedulerKind::Dswp => "(b)",
        },
        kind.name()
    );
    let _ = writeln!(out, "{:<14} {:>12} {:>14} {:>8}", "benchmark", "computation", "communication", "comm%");
    for row in rows {
        match row {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:<14} {:>12} {:>14} {:>7.1}%",
                    r.benchmark,
                    r.mtcg.counts.computation,
                    r.mtcg.counts.comm_total(),
                    r.comm_fraction_pct()
                );
            }
            Err(e) => failed_line(&mut out, e),
        }
    }
    let avg = mean(ok_rows(rows).map(BenchResult::comm_fraction_pct));
    let _ = writeln!(out, "{:<14} {:>12} {:>14} {:>7.1}%", "average", "", "", avg);
    out
}

/// Figure 6(a): the machine-details table.
pub fn figure6a() -> String {
    format!("Figure 6(a): machine details\n{}\n", MachineConfig::default().describe())
}

/// Figure 6(b): the selected benchmark functions.
pub fn figure6b() -> String {
    let mut out = String::from("Figure 6(b): selected benchmark functions\n");
    let _ = writeln!(out, "{:<14} {:<28} {:>7}", "benchmark", "function", "exec %");
    for w in catalog() {
        let _ = writeln!(out, "{:<14} {:<28} {:>6}%", w.benchmark, w.name, w.exec_pct);
    }
    out
}

/// Figure 7: relative dynamic communication / synchronization after
/// applying COCO, for one scheduler (100% = no reduction).
pub fn figure7(kind: SchedulerKind, scale: Scale) -> String {
    render_figure7(&run_all(kind, false, scale), kind)
}

/// Renders Figure 7 from pre-computed rows.
pub fn render_figure7(rows: &[FigureRow], kind: SchedulerKind) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7: relative dynamic communication after COCO, {}", kind.name());
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>10} {:>11}   {:>9} {:>9}",
        "benchmark", "MTCG comm", "COCO comm", "relative", "reduction", "MTCG sync", "COCO sync"
    );
    for row in rows {
        match row {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:<14} {:>12} {:>12} {:>9.1}% {:>10.1}%   {:>9} {:>9}",
                    r.benchmark,
                    r.mtcg.counts.comm_total(),
                    r.coco.counts.comm_total(),
                    r.relative_comm_pct(),
                    100.0 - r.relative_comm_pct(),
                    r.mtcg.counts.synchronization,
                    r.coco.counts.synchronization,
                );
            }
            Err(e) => failed_line(&mut out, e),
        }
    }
    let avg = mean(ok_rows(rows).map(BenchResult::relative_comm_pct));
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>9.1}% {:>10.1}%",
        "average", "", "", avg, 100.0 - avg
    );
    out
}

/// `Some(speedup)` as `"1.23x"`, `None` (an untimed side) as `"-"`.
fn fmt_speedup(s: Option<f64>) -> String {
    s.map_or_else(|| "-".to_string(), |v| format!("{v:.2}x"))
}

/// Figure 8: speedup over single-threaded execution, without and with
/// COCO, for one scheduler. Timed with the cycle-level machine model.
pub fn figure8(kind: SchedulerKind, scale: Scale) -> String {
    render_figure8(&run_all(kind, true, scale), kind)
}

/// Renders Figure 8 from pre-computed rows.
pub fn render_figure8(rows: &[FigureRow], kind: SchedulerKind) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 8: speedup over single-threaded, {}", kind.name());
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "benchmark", "seq cycles", "MTCG cycles", "COCO cycles", "MTCG speedup", "w/ COCO"
    );
    for row in rows {
        match row {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:<14} {:>10} {:>12} {:>12} {:>12} {:>9}",
                    r.benchmark,
                    r.seq_cycles,
                    r.mtcg.cycles,
                    r.coco.cycles,
                    fmt_speedup(r.speedup_mtcg()),
                    fmt_speedup(r.speedup_coco())
                );
            }
            Err(e) => failed_line(&mut out, e),
        }
    }
    let g_m = crate::geo_mean(ok_rows(rows).filter_map(BenchResult::speedup_mtcg));
    let g_c = crate::geo_mean(ok_rows(rows).filter_map(BenchResult::speedup_coco));
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>9}  (geomean)",
        "average",
        "",
        "",
        "",
        format!("{g_m:.2}x"),
        format!("{g_c:.2}x")
    );
    out
}

/// Extension study (paper §6): communication growth and COCO savings as
/// the thread count scales — "as more threads are created, the larger
/// the number of inter-thread dependences to be respected, and
/// therefore the larger the fraction of communication instructions."
///
/// The per-benchmark studies are independent, so they fan out over the
/// worker pool; a failing benchmark prints a failure line in place of
/// its rows.
pub fn thread_scaling_table(kind: SchedulerKind) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Extension: thread scaling, {}", kind.name());
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>12} {:>12} {:>10} {:>9}",
        "benchmark", "threads", "MTCG comm", "COCO comm", "comm frac", "reduction"
    );
    let studies = gmt_testkit::par_map(catalog(), gmt_testkit::num_jobs(), |_i, w| {
        let points = crate::thread_scaling(&w, kind, &[2, 4]);
        (w.benchmark, points)
    });
    for (benchmark, points) in studies {
        match points {
            Ok(points) => {
                for p in points {
                    let red = if p.mtcg_comm == 0 {
                        0.0
                    } else {
                        100.0 - p.coco_comm as f64 * 100.0 / p.mtcg_comm as f64
                    };
                    let _ = writeln!(
                        out,
                        "{:<14} {:>7} {:>12} {:>12} {:>9.1}% {:>8.1}%",
                        benchmark, p.threads, p.mtcg_comm, p.coco_comm, p.comm_fraction_pct, red
                    );
                }
            }
            Err(e) => failed_line(&mut out, &e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let a = figure6a();
        assert!(a.contains("6-issue"));
        let b = figure6b();
        assert!(b.contains("FindMaxGpAndSwap"));
        assert!(b.contains("458.sjeng"));
    }

    #[test]
    fn failed_rows_render_in_place() {
        let rows: Vec<FigureRow> = vec![
            Err(HarnessError {
                benchmark: "ks",
                phase: "train run",
                source: "missing arguments".into(),
            }),
        ];
        for text in [
            render_figure1(&rows, SchedulerKind::Dswp),
            render_figure7(&rows, SchedulerKind::Dswp),
            render_figure8(&rows, SchedulerKind::Dswp),
        ] {
            assert!(text.contains("ks"), "failure names the benchmark: {text}");
            assert!(text.contains("FAILED (train run: missing arguments)"), "{text}");
            assert!(text.contains("average"), "summary line still prints: {text}");
        }
    }

    #[test]
    fn untimed_speedup_renders_as_dash() {
        let rows: Vec<FigureRow> = vec![Ok(BenchResult {
            benchmark: "synthetic",
            seq_instrs: 10,
            seq_cycles: 100,
            mtcg: crate::VariantResult::default(),
            coco: crate::VariantResult::default(),
        })];
        let text = render_figure8(&rows, SchedulerKind::Dswp);
        assert!(text.contains(" -"), "untimed variants print '-': {text}");
        assert!(!text.contains("inf"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn figure1_renders_all_rows() {
        let t = figure1(SchedulerKind::Dswp, Scale::Quick);
        for w in catalog() {
            assert!(t.contains(w.benchmark), "missing {}", w.benchmark);
        }
        assert!(t.contains("average"));
    }

    #[test]
    fn figure7_renders_with_sync_columns() {
        let t = figure7(SchedulerKind::Dswp, Scale::Quick);
        assert!(t.contains("MTCG sync"));
        assert!(t.contains("reduction"));
        assert_eq!(t.lines().count(), 2 + 11 + 1, "header x2 + rows + average");
    }
}
