//! The static↔dynamic "explain" layer (`repro --explain`).
//!
//! One cell = one kernel × scheduler × variant, evaluated twice:
//!
//! - **statically** — the [`SchedEstimate`] the pipeline captured when
//!   the partition and communication plan were fixed (per-thread
//!   compute+comm cycles, cut edges, per-queue traffic);
//! - **dynamically** — a traced run of the decoded engine with the
//!   [`TraceAggregator`] (cycle attribution, queue counters, occupancy
//!   distributions) and the [`CritPathSink`] (the run's dynamic
//!   critical path, reconstructed from last-arrival edges) attached.
//!
//! [`explain_report`] joins the two sides into one deterministic
//! human-readable report: per-thread estimated vs. measured cycles,
//! per-queue estimated vs. measured traffic and occupancy, the
//! critical path decomposed by edge kind, the top path segments with
//! their static positions, and a one-line verdict naming what limits
//! the schedule. [`explain_json`] emits the same join as one JSON
//! object for machine consumers.
//!
//! Both trace invariants are enforced on every cell:
//! [`gmt_sim::check_attribution`] (per-core decompositions sum to the
//! cycle count) and [`gmt_sim::check_critical_path`] (the walked path
//! edges sum to the cycle count exactly) — a violation is an engine
//! bug and surfaces as a [`HarnessError`].

use crate::{fail, machine_for, parallelize_pair, HarnessError, Scale, SchedulerKind};
use crate::trace_report::TRACE_RING_CAPACITY;
use gmt_core::SchedEstimate;
use gmt_mtcg::QueueLabel;
use gmt_sim::{
    check_attribution, check_critical_path, simulate_decoded_traced, CpKind, CritPath,
    CritPathSink, CycleAttribution, OccupancySummary, QueueTraceStats, TraceAggregator,
};
use gmt_testkit::json_escape;
use gmt_workloads::Workload;
use std::fmt::Write as _;

/// Path segments printed in the report's top-segments table.
pub const EXPLAIN_TOP_K: usize = 8;

/// One kernel × scheduler × variant, measured both ways.
#[derive(Clone, Debug)]
pub struct ExplainCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Variant explained: `"mtcg"` or `"coco"`.
    pub variant: &'static str,
    /// Total cycles of the traced run.
    pub cycles: u64,
    /// The static side: what the pipeline estimated at partition time.
    pub estimate: SchedEstimate,
    /// Per-thread cycle decomposition; each entry sums to `cycles`.
    pub attribution: Vec<CycleAttribution>,
    /// Per-queue communication counters (indexed by queue id).
    pub queues: Vec<QueueTraceStats>,
    /// Per-queue time-weighted occupancy distribution.
    pub occupancy: Vec<OccupancySummary>,
    /// Static queue labels from MTCG (one per scheduled occurrence).
    pub labels: Vec<QueueLabel>,
    /// The run's dynamic critical path (conservation-checked).
    pub critpath: CritPath,
    /// Raw events the aggregator's ring dropped (summaries and the
    /// critical path still cover the whole run).
    pub dropped_events: u64,
}

/// Runs one kernel × scheduler × variant cell with the aggregator and
/// critical-path sinks attached and joins the result with the
/// pipeline's static estimate.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the benchmark and failing phase —
/// including a violation of either trace invariant (attribution or
/// critical-path conservation), which would mean the engine emitted an
/// inconsistent event stream.
pub fn explain_cell(
    w: &Workload,
    kind: SchedulerKind,
    coco: bool,
    scale: Scale,
) -> Result<ExplainCell, HarnessError> {
    let b = w.benchmark;
    let train = w.run_train().map_err(fail(b, "train run"))?;
    let (base, opt, _arb) = parallelize_pair(w, kind, &train.profile)?;
    let p = if coco { &opt } else { &base };
    let machine = machine_for(p, kind);
    let program =
        gmt_ir::decoded::DecodedProgram::decode(p.threads()).map_err(fail(b, "decode"))?;
    let args: &[i64] = match scale {
        Scale::Quick => &w.train_args,
        Scale::Full => &w.ref_args,
    };
    let ncores = p.threads().len();
    let nqueues = machine.sa.num_queues;
    let mut sink = (
        TraceAggregator::new(ncores, nqueues, TRACE_RING_CAPACITY),
        CritPathSink::new(&program, nqueues),
    );
    let result = simulate_decoded_traced(&program, args, w.init, &machine, &mut sink)
        .map_err(fail(b, "traced sim"))?;
    check_attribution(&sink.0, &result).map_err(fail(b, "attribution check"))?;
    let critpath =
        check_critical_path(&sink.1, &result).map_err(fail(b, "critical-path check"))?;
    Ok(ExplainCell {
        benchmark: b,
        scheduler: kind.name(),
        variant: if coco { "coco" } else { "mtcg" },
        cycles: result.cycles,
        estimate: p.estimate.clone(),
        attribution: sink.0.core_attribution(),
        queues: sink.0.queue_stats().to_vec(),
        occupancy: sink.0.queue_occupancy(),
        labels: p.queue_labels().to_vec(),
        critpath,
        dropped_events: sink.0.dropped_events(),
    })
}

/// What limits the schedule, by critical-path edge-kind groups.
///
/// - `recurrence-bound` — dataflow, memory, and cross-thread value
///   latency dominates: the schedule is chasing a dependence
///   recurrence, and only cutting it (or hiding its latency) helps;
/// - `queue-bound` — produce backpressure and SA-port contention
///   dominate: deeper queues, more ports, or fewer communicated
///   values help;
/// - `mispredict-bound` — front-end refills dominate;
/// - `balance-bound` — in-order issue, structural limits, and
///   end-of-run waiting dominate: the partition itself (or the issue
///   width) is the limit, not any single dependence.
///
/// Ties break in that order, so the verdict is deterministic.
pub fn verdict(cp: &CritPath) -> &'static str {
    let groups = verdict_groups(cp);
    let mut best = 0usize;
    for (i, g) in groups.iter().enumerate() {
        if g.1 > groups[best].1 {
            best = i;
        }
    }
    groups[best].0
}

/// The verdict groups with their critical-path cycle totals, in
/// tie-break order.
fn verdict_groups(cp: &CritPath) -> [(&'static str, u64); 4] {
    [
        (
            "recurrence-bound",
            cp.kind_cycles(CpKind::Dataflow)
                + cp.kind_cycles(CpKind::Load)
                + cp.kind_cycles(CpKind::QueueData),
        ),
        ("queue-bound", cp.kind_cycles(CpKind::QueueSpace) + cp.kind_cycles(CpKind::SaPort)),
        ("mispredict-bound", cp.kind_cycles(CpKind::Refill)),
        (
            "balance-bound",
            cp.kind_cycles(CpKind::InOrder)
                + cp.kind_cycles(CpKind::Structural)
                + cp.kind_cycles(CpKind::LoadLimit)
                + cp.kind_cycles(CpKind::Retire),
        ),
    ]
}

/// Integer percent of `part` in `total` (0 when `total` is 0).
fn pct(part: u64, total: u64) -> u64 {
    if total == 0 {
        0
    } else {
        part * 100 / total
    }
}

/// The human-readable explain report: deterministic (no wall-clock
/// quantities), so it goldens.
pub fn explain_report(cell: &ExplainCell) -> String {
    let mut out = String::new();
    let cp = &cell.critpath;
    let _ = writeln!(
        out,
        "explain: {} / {} / {} ({} cycles)",
        cell.benchmark, cell.scheduler, cell.variant, cell.cycles
    );
    let groups = verdict_groups(cp);
    let v = verdict(cp);
    let share = groups.iter().find(|g| g.0 == v).map_or(0, |g| pct(g.1, cp.total));
    let _ = writeln!(out, "verdict: {v} ({share}% of the critical path)");
    if cell.dropped_events > 0 {
        let _ = writeln!(
            out,
            "warning: {} raw trace events dropped from the ring buffer \
             (summaries and the critical path still cover the whole run)",
            cell.dropped_events
        );
    }
    let _ = writeln!(out);

    // Per-thread: the scheduler's ideal stall-free estimate against
    // the measured decomposition. A thread whose measured compute sits
    // far under its estimate spent its life stalled or idle.
    let est = &cell.estimate;
    let _ = writeln!(
        out,
        "{:<7} {:>10} {:>10} {:>10} {:>10}",
        "thread", "est", "compute", "stall", "idle"
    );
    for (t, a) in cell.attribution.iter().enumerate() {
        let stall = a.total() - a.compute - a.idle;
        let _ = writeln!(
            out,
            "{:<7} {:>10} {:>10} {:>10} {:>10}",
            t,
            est.thread_cycles.get(t).copied().unwrap_or(0),
            a.compute,
            stall,
            a.idle,
        );
    }
    let _ = writeln!(
        out,
        "estimated bottleneck {} cycles; measured {} ({}% of estimate)",
        est.bottleneck(),
        cell.cycles,
        pct(cell.cycles, est.bottleneck().max(1)),
    );
    let _ = writeln!(
        out,
        "cut: {} register / {} memory / {} control arcs; {} sync tokens; \
         max thread share {}%",
        est.cut.register, est.cut.memory, est.cut.control, est.sync_points, est.max_share_pct,
    );
    let _ = writeln!(out);

    // Per-queue: estimated traffic (occurrence weight) vs. measured
    // produces, plus the dwell-time occupancy distribution.
    let _ = writeln!(
        out,
        "{:<6} {:>11} {:>9} {:>11} {:>11} {:>11}",
        "queue", "est-traffic", "produces", "full-stall", "empty-stall", "occ-dwell"
    );
    let mut any = false;
    for (q, qs) in cell.queues.iter().enumerate() {
        let est_q = est.queue_traffic.get(q).copied().unwrap_or(0);
        if !qs.is_active() && est_q == 0 {
            continue;
        }
        any = true;
        let occ = cell.occupancy.get(q).copied().unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<6} {:>11} {:>9} {:>11} {:>11} {:>11}",
            format!("q{q}"),
            est_q,
            qs.produces,
            qs.full_stall_cycles,
            qs.empty_stall_cycles,
            format!("{}/{}/{}", occ.p50, occ.p95, occ.max),
        );
    }
    if !any {
        let _ = writeln!(out, "(no queue traffic)");
    }
    let _ = writeln!(out);

    // The critical path by edge kind — sums to the cycle count.
    let _ = writeln!(
        out,
        "critical path: {} edges, {} core crossings, {} cycles",
        cp.edges, cp.crossings, cp.total
    );
    for kind in CpKind::ALL {
        let c = cp.kind_cycles(kind);
        if c > 0 {
            let _ = writeln!(out, "  {:<12} {:>10} {:>4}%", kind.name(), c, pct(c, cp.total));
        }
    }
    let _ = writeln!(out);

    // Top segments: where (statically) the path's cycles accumulate.
    let _ = writeln!(
        out,
        "{:<5} {:<7} {:<7} {:<12} {:>6} {:>7} {:>10} {:>4}%",
        "core", "instr", "block", "kind", "queue", "count", "cycles", ""
    );
    for s in cp.segments.iter().take(EXPLAIN_TOP_K) {
        let _ = writeln!(
            out,
            "{:<5} {:<7} {:<7} {:<12} {:>6} {:>7} {:>10} {:>4}%",
            s.core,
            format!("i{}", s.src.0),
            format!("B{}", s.block.index()),
            s.kind.name(),
            s.queue.map_or("-".to_string(), |q| format!("q{q}")),
            s.count,
            s.cycles,
            pct(s.cycles, cp.total),
        );
    }
    out
}

/// The explain join as one JSON object (one line): scalars flat,
/// per-thread and per-queue data as arrays of flat objects, the
/// critical-path kind decomposition as `cp_<kind>` keys.
pub fn explain_json(cell: &ExplainCell) -> String {
    let cp = &cell.critpath;
    let est = &cell.estimate;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"benchmark\":\"{}\",\"scheduler\":\"{}\",\"variant\":\"{}\",\
         \"cycles\":{},\"verdict\":\"{}\",\"dropped_events\":{},\
         \"est_bottleneck\":{},\"est_total\":{},\"max_share_pct\":{},\
         \"cut_register\":{},\"cut_memory\":{},\"cut_control\":{},\"sync_points\":{},\
         \"cp_total\":{},\"cp_edges\":{},\"cp_crossings\":{}",
        json_escape(cell.benchmark),
        json_escape(cell.scheduler),
        json_escape(cell.variant),
        cell.cycles,
        verdict(cp),
        cell.dropped_events,
        est.bottleneck(),
        est.total(),
        est.max_share_pct,
        est.cut.register,
        est.cut.memory,
        est.cut.control,
        est.sync_points,
        cp.total,
        cp.edges,
        cp.crossings,
    );
    for kind in CpKind::ALL {
        let _ = write!(
            out,
            ",\"cp_{}\":{}",
            kind.name().replace('-', "_"),
            cp.kind_cycles(kind)
        );
    }
    let _ = write!(out, ",\"threads\":[");
    for (t, a) in cell.attribution.iter().enumerate() {
        if t > 0 {
            let _ = write!(out, ",");
        }
        let _ = write!(
            out,
            "{{\"thread\":{t},\"est\":{},\"compute\":{},\"stall\":{},\"idle\":{}}}",
            est.thread_cycles.get(t).copied().unwrap_or(0),
            a.compute,
            a.total() - a.compute - a.idle,
            a.idle,
        );
    }
    let _ = write!(out, "],\"queues\":[");
    let mut first = true;
    for (q, qs) in cell.queues.iter().enumerate() {
        let est_q = est.queue_traffic.get(q).copied().unwrap_or(0);
        if !qs.is_active() && est_q == 0 {
            continue;
        }
        if !first {
            let _ = write!(out, ",");
        }
        first = false;
        let occ = cell.occupancy.get(q).copied().unwrap_or_default();
        let _ = write!(
            out,
            "{{\"queue\":{q},\"est_traffic\":{est_q},\"produces\":{},\"consumes\":{},\
             \"full_stall\":{},\"empty_stall\":{},\"occ_p50\":{},\"occ_p95\":{},\
             \"occ_max\":{}}}",
            qs.produces,
            qs.consumes,
            qs.full_stall_cycles,
            qs.empty_stall_cycles,
            occ.p50,
            occ.p95,
            occ.max,
        );
    }
    let _ = write!(out, "]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explained(bench: &str, kind: SchedulerKind) -> ExplainCell {
        let w = gmt_workloads::by_benchmark(bench).unwrap();
        explain_cell(&w, kind, true, Scale::Quick).expect("explains")
    }

    #[test]
    fn conservation_holds_and_report_is_complete() {
        let cell = explained("adpcmdec", SchedulerKind::Dswp);
        let cp = &cell.critpath;
        assert_eq!(cp.total, cell.cycles, "path edges sum to the run");
        let kinds: u64 = CpKind::ALL.iter().map(|&k| cp.kind_cycles(k)).sum();
        assert_eq!(kinds, cp.total);
        // The path can never beat the busiest core.
        let busy = cell.attribution.iter().map(|a| a.compute).max().unwrap_or(0);
        assert!(cp.total >= busy, "{} >= {busy}", cp.total);
        let report = explain_report(&cell);
        assert!(report.contains("verdict:"));
        assert!(report.contains("critical path:"));
        assert!(report.contains("est-traffic"));
        assert!(report.contains(&cell.cycles.to_string()));
    }

    #[test]
    fn explain_agrees_with_untraced_timing() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let cell = explain_cell(&w, SchedulerKind::Dswp, false, Scale::Quick).unwrap();
        let r = crate::evaluate(&w, SchedulerKind::Dswp, true, Scale::Quick).unwrap();
        assert_eq!(cell.cycles, r.mtcg.cycles, "observer effect: explain changed timing");
    }

    #[test]
    fn json_shape_is_machine_readable() {
        let cell = explained("ks", SchedulerKind::Dswp);
        let json = explain_json(&cell);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"benchmark\":", "\"verdict\":", "\"cp_total\":", "\"cp_dataflow\":",
            "\"cp_queue_data\":", "\"threads\":[", "\"queues\":[", "\"est_bottleneck\":",
            "\"dropped_events\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains('\n'), "one JSON line");
    }

    #[test]
    fn verdict_tie_breaks_deterministically() {
        let cp = CritPath::default();
        assert_eq!(verdict(&cp), "recurrence-bound", "all-zero path takes the first group");
    }

    /// Pinned critical-path summaries: 2 kernels × both schedulers.
    /// The engine and the walk are deterministic, so these are exact;
    /// a change here means the machine model or the path semantics
    /// moved, which must be a conscious decision.
    #[test]
    fn pinned_cp_summaries() {
        for (bench, kind, cycles, edges, crossings, v) in [
            ("adpcmdec", SchedulerKind::Dswp, 8682u64, 8426u64, 1u64, "recurrence-bound"),
            ("adpcmdec", SchedulerKind::Gremio, 12488, 9992, 513, "recurrence-bound"),
            ("ks", SchedulerKind::Dswp, 7100, 7321, 3, "recurrence-bound"),
            ("ks", SchedulerKind::Gremio, 9727, 9784, 13, "recurrence-bound"),
        ] {
            let cell = explained(bench, kind);
            let cp = &cell.critpath;
            let tag = format!("{bench}/{}", kind.name());
            assert_eq!(cp.total, cell.cycles, "{tag}");
            assert_eq!(cell.cycles, cycles, "{tag} cycles");
            assert_eq!(cp.edges, edges, "{tag} edges");
            assert_eq!(cp.crossings, crossings, "{tag} crossings");
            assert_eq!(verdict(cp), v, "{tag} verdict");
        }
    }
}
