//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (§4): Figure 1 (communication breakdown under
//! baseline MTCG), Figure 6 (machine and benchmark tables), Figure 7
//! (relative dynamic communication after COCO), and Figure 8 (speedup
//! over single-threaded execution without and with COCO).
//!
//! Dynamic instruction counts come from the exact functional
//! multi-threaded interpreter; cycle counts come from the `gmt-sim`
//! machine model. Profiles are always collected on *train* inputs and
//! measurements on *ref* inputs.
//!
//! The `repro` binary prints any of the figures:
//!
//! ```text
//! repro --fig 7            # Figure 7 rows
//! repro --fig all --quick  # everything, at reduced input sizes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gmt_core::{CocoConfig, Parallelized, Parallelizer, Scheduler};
use gmt_ir::interp::DynCounts;
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_sim::{simulate, MachineConfig};
use gmt_workloads::{catalog, exec_config, Workload};

/// Which partitioner an experiment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// GREMIO with single-element queues.
    Gremio,
    /// DSWP with 32-element queues.
    Dswp,
}

impl SchedulerKind {
    /// The scheduler configuration for two threads.
    pub fn scheduler(self) -> Scheduler {
        self.scheduler_n(2)
    }

    /// The scheduler configuration for `n` threads.
    pub fn scheduler_n(self, n: u32) -> Scheduler {
        match self {
            SchedulerKind::Gremio => Scheduler::gremio(n),
            SchedulerKind::Dswp => Scheduler::dswp(n),
        }
    }

    /// Queue depth per the paper (§4: single-element queues in the SA;
    /// 32-element queues for DSWP).
    pub fn queue_depth(self) -> usize {
        match self {
            SchedulerKind::Gremio => 1,
            SchedulerKind::Dswp => 32,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Gremio => "GREMIO",
            SchedulerKind::Dswp => "DSWP",
        }
    }
}

/// Dynamic results of one parallelized variant of one kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct VariantResult {
    /// Dynamic instruction counts, summed over threads.
    pub counts: DynCounts,
    /// Cycle count from the machine model (0 if not timed).
    pub cycles: u64,
}

/// The full measurement of one kernel under one scheduler.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (Figure 6b).
    pub benchmark: &'static str,
    /// Sequential dynamic instructions on the measured input.
    pub seq_instrs: u64,
    /// Sequential cycle count (0 if not timed).
    pub seq_cycles: u64,
    /// Baseline MTCG.
    pub mtcg: VariantResult,
    /// MTCG + COCO.
    pub coco: VariantResult,
}

impl BenchResult {
    /// Figure 7's quantity: dynamic communication with COCO relative to
    /// baseline MTCG, in percent (lower is better; 100 = no change).
    pub fn relative_comm_pct(&self) -> f64 {
        let base = self.mtcg.counts.comm_total();
        if base == 0 {
            100.0
        } else {
            self.coco.counts.comm_total() as f64 * 100.0 / base as f64
        }
    }

    /// Figure 8's first bar: MTCG speedup over single-threaded.
    pub fn speedup_mtcg(&self) -> f64 {
        ratio(self.seq_cycles, self.mtcg.cycles)
    }

    /// Figure 8's second bar: MTCG+COCO speedup over single-threaded.
    pub fn speedup_coco(&self) -> f64 {
        ratio(self.seq_cycles, self.coco.cycles)
    }

    /// Figure 1's quantity: communication as a percentage of all
    /// dynamic instructions under baseline MTCG.
    pub fn comm_fraction_pct(&self) -> f64 {
        let total = self.mtcg.counts.total();
        if total == 0 {
            0.0
        } else {
            self.mtcg.counts.comm_total() as f64 * 100.0 / total as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Input scaling for experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Train-sized inputs everywhere (fast; CI and tests).
    Quick,
    /// Ref inputs (the paper's methodology).
    Full,
}

/// Evaluates one workload under one scheduler: baseline MTCG and
/// MTCG+COCO, functional counts, and (optionally) timed cycles.
///
/// # Panics
///
/// Panics if parallelization or execution fails — the catalog kernels
/// are all expected to pass.
pub fn evaluate(w: &Workload, kind: SchedulerKind, timed: bool, scale: Scale) -> BenchResult {
    let train = w.run_train().expect("train run");
    let args: &[i64] = match scale {
        Scale::Quick => &w.train_args,
        Scale::Full => &w.ref_args,
    };
    let seq = gmt_ir::interp::run_with_memory(&w.function, args, w.init, &exec_config())
        .expect("sequential run");

    let (base, coco) = parallelize_pair(w, kind, &train.profile);

    let mut result = BenchResult {
        benchmark: w.benchmark,
        seq_instrs: seq.counts.total(),
        seq_cycles: 0,
        mtcg: measure_counts(w, &base, kind, args),
        coco: measure_counts(w, &coco, kind, args),
    };
    if timed {
        let machine = MachineConfig::default();
        let seq_sim =
            simulate(std::slice::from_ref(&w.function), args, w.init, &machine)
                .expect("sequential sim");
        result.seq_cycles = seq_sim.cycles;
        result.mtcg.cycles = timed_cycles(w, &base, kind, args);
        result.coco.cycles = timed_cycles(w, &coco, kind, args);
    }
    result
}

/// Produces the (baseline MTCG, MTCG+COCO) pair for one workload and
/// scheduler, both over the same partition.
///
/// DSWP uses the analytic partitioner directly. For GREMIO —
/// whose candidate schedules' real throughput depends on queue
/// round-trips the analytic score cannot see — the candidates are
/// arbitrated by *timed runs of the generated (COCO) code on the train
/// input*: profile-guided partition selection, with the single-threaded
/// fallback guaranteeing the partitioner never degrades the program.
fn parallelize_pair(
    w: &Workload,
    kind: SchedulerKind,
    profile: &gmt_ir::Profile,
) -> (Parallelized, Parallelized) {
    let pair_for = |partition: gmt_pdg::Partition| -> (Parallelized, Parallelized) {
        let pdg = gmt_pdg::Pdg::build(&w.function);
        let base = Parallelizer::new(kind.scheduler())
            .parallelize_with_partition(&w.function, profile, &pdg, partition.clone())
            .expect("baseline parallelization");
        let coco = Parallelizer::new(kind.scheduler())
            .with_coco(CocoConfig::default())
            .parallelize_with_partition(&w.function, profile, &pdg, partition)
            .expect("coco parallelization");
        (base, coco)
    };
    match kind {
        SchedulerKind::Dswp => {
            let base = Parallelizer::new(kind.scheduler())
                .parallelize(&w.function, profile)
                .expect("baseline parallelization");
            let coco = Parallelizer::new(kind.scheduler())
                .with_coco(CocoConfig::default())
                .parallelize(&w.function, profile)
                .expect("coco parallelization");
            (base, coco)
        }
        SchedulerKind::Gremio => {
            let pdg = gmt_pdg::Pdg::build(&w.function);
            let cfg = gmt_sched::gremio::GremioConfig::default();
            let candidates = gmt_sched::gremio::candidates(&w.function, &pdg, profile, &cfg);
            // GREMIO's own schedule: the analytically best genuinely-
            // parallel candidate ("genuinely" = the lighter thread owns
            // a meaningful share of the code, not a token offload).
            let block_weights = profile.block_weights(&w.function);
            let meaningful = |p: &gmt_pdg::Partition| {
                let sizes =
                    p.dynamic_sizes(|i| block_weights[w.function.block_of(i).index()].max(1));
                let total: u64 = sizes.iter().sum();
                sizes.iter().filter(|&&s| s > 0).count() > 1
                    && sizes.iter().min().copied().unwrap_or(0) * 10 >= total
            };
            let cycles_probe = |partition: &gmt_pdg::Partition| -> u64 {
                let coco = Parallelizer::new(kind.scheduler())
                    .with_coco(CocoConfig::default())
                    .parallelize_with_partition(&w.function, profile, &pdg, partition.clone())
                    .expect("coco parallelization");
                let machine = machine_for(&coco, kind);
                simulate(coco.threads(), &w.train_args, w.init, &machine)
                    .map_or(u64::MAX, |r| r.cycles)
            };
            let best_mt = candidates
                .iter()
                .filter(|(_, p)| meaningful(p))
                .min_by_key(|(_, p)| cycles_probe(p))
                .map(|(_, p)| p.clone());
            // Arbitrate against the true single-threaded layout, not a
            // token-offload candidate.
            let single = {
                let mut p = gmt_pdg::Partition::new(2);
                for i in w.function.all_instrs() {
                    p.assign(i, gmt_pdg::ThreadId(0));
                }
                p
            };
            // Timed arbitration on the train input: keep the parallel
            // schedule unless it clearly loses (>10% slower) to running
            // single-threaded — the partitioner must never degrade the
            // program.
            let cycles_of = |partition: &gmt_pdg::Partition| -> u64 {
                let coco = Parallelizer::new(kind.scheduler())
                    .with_coco(CocoConfig::default())
                    .parallelize_with_partition(&w.function, profile, &pdg, partition.clone())
                    .expect("coco parallelization");
                let machine = machine_for(&coco, kind);
                simulate(coco.threads(), &w.train_args, w.init, &machine)
                    .map_or(u64::MAX, |r| r.cycles)
            };
            let chosen = match best_mt {
                Some(mt) if cycles_of(&mt) as f64 <= cycles_of(&single) as f64 * 1.10 => mt,
                _ => single,
            };
            pair_for(chosen)
        }
    }
}

fn machine_for(p: &Parallelized, kind: SchedulerKind) -> MachineConfig {
    let mut m = MachineConfig::default().with_queue_depth(kind.queue_depth());
    // Queue allocation (footnote 1 of the paper) is not implemented, so
    // size the SA to the plan when it needs more than 256 queues.
    if p.num_queues() as usize > m.sa.num_queues {
        m.sa.num_queues = p.num_queues() as usize;
    }
    m
}

fn measure_counts(
    w: &Workload,
    p: &Parallelized,
    kind: SchedulerKind,
    args: &[i64],
) -> VariantResult {
    let mt = run_mt(
        p.threads(),
        args,
        w.init,
        &QueueConfig {
            num_queues: (p.num_queues().max(1)) as usize,
            capacity: kind.queue_depth(),
        },
        &exec_config(),
    )
    .expect("functional MT run");
    VariantResult { counts: mt.totals(), cycles: 0 }
}

fn timed_cycles(w: &Workload, p: &Parallelized, kind: SchedulerKind, args: &[i64]) -> u64 {
    let machine = machine_for(p, kind);
    simulate(p.threads(), args, w.init, &machine)
        .expect("timed MT run")
        .cycles
}

/// Runs a whole figure's worth of measurements.
pub fn run_all(kind: SchedulerKind, timed: bool, scale: Scale) -> Vec<BenchResult> {
    catalog()
        .iter()
        .map(|w| evaluate(w, kind, timed, scale))
        .collect()
}

/// The multi-thread extension study (the paper's conclusion: "we expect
/// the benefits from COCO to be more pronounced when more threads are
/// generated"): per benchmark, the communication fraction under
/// baseline MTCG and the COCO reduction, as the thread count grows.
pub fn thread_scaling(w: &Workload, kind: SchedulerKind, threads: &[u32]) -> Vec<ScalingPoint> {
    let train = w.run_train().expect("train run");
    let pdg = gmt_pdg::Pdg::build(&w.function);
    threads
        .iter()
        .map(|&n| {
            let base = Parallelizer::new(kind.scheduler_n(n))
                .parallelize(&w.function, &train.profile)
                .expect("baseline parallelization");
            let coco = Parallelizer::new(kind.scheduler_n(n))
                .with_coco(CocoConfig::default())
                .parallelize_with_partition(
                    &w.function,
                    &train.profile,
                    &pdg,
                    base.partition.clone(),
                )
                .expect("coco parallelization");
            let run = |p: &Parallelized| {
                run_mt(
                    p.threads(),
                    &w.train_args,
                    w.init,
                    &QueueConfig {
                        num_queues: p.num_queues().max(1) as usize,
                        capacity: kind.queue_depth().max(8),
                    },
                    &exec_config(),
                )
                .expect("mt run")
                .totals()
            };
            let b = run(&base);
            let c = run(&coco);
            ScalingPoint {
                threads: n,
                mtcg_comm: b.comm_total(),
                coco_comm: c.comm_total(),
                comm_fraction_pct: b.comm_total() as f64 * 100.0 / b.total().max(1) as f64,
            }
        })
        .collect()
}

/// One point of the thread-scaling study.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Thread count.
    pub threads: u32,
    /// Dynamic communication under baseline MTCG.
    pub mtcg_comm: u64,
    /// Dynamic communication under MTCG+COCO.
    pub coco_comm: u64,
    /// Communication share of all dynamic instructions (baseline).
    pub comm_fraction_pct: f64,
}

/// Geometric mean (used for speedup averages).
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean (used for reduction averages, like the paper's
/// "average reduction of 34.4%").
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

pub mod figures;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert!((geo_mean([1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert_eq!(geo_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn evaluate_one_quick() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let r = evaluate(&w, SchedulerKind::Gremio, false, Scale::Quick);
        assert!(r.mtcg.counts.total() > 0);
        assert!(r.relative_comm_pct() <= 100.0);
    }

    #[test]
    fn evaluate_timed_quick() {
        let w = gmt_workloads::by_benchmark("adpcmdec").unwrap();
        let r = evaluate(&w, SchedulerKind::Dswp, true, Scale::Quick);
        assert!(r.seq_cycles > 0);
        assert!(r.mtcg.cycles > 0);
        assert!(r.coco.cycles > 0);
    }
}
