//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (§4): Figure 1 (communication breakdown under
//! baseline MTCG), Figure 6 (machine and benchmark tables), Figure 7
//! (relative dynamic communication after COCO), and Figure 8 (speedup
//! over single-threaded execution without and with COCO).
//!
//! Dynamic instruction counts come from the exact functional
//! multi-threaded interpreter; cycle counts come from the `gmt-sim`
//! machine model. Profiles are always collected on *train* inputs and
//! measurements on *ref* inputs.
//!
//! The experiment matrix is embarrassingly parallel, so [`run_all`]
//! fans the per-benchmark evaluations out over the
//! [`gmt_testkit::par_map`] worker pool (`GMT_JOBS` workers, default
//! available parallelism). Results come back in catalog order, so the
//! rendered figures are byte-identical to a serial run. A failing
//! workload produces a [`HarnessError`] naming the benchmark and the
//! phase that failed; the remaining rows of the figure still print.
//!
//! Each evaluation also records per-run observability — wall-clock
//! time, dynamic-instruction and cycle counts, and compile-phase
//! timings (PDG build, partition, COCO, MTCG) — as [`RunMetrics`],
//! emitted as JSON-lines by `repro --metrics`.
//!
//! The `repro` binary prints any of the figures:
//!
//! ```text
//! repro --fig 7            # Figure 7 rows
//! repro --fig all --quick  # everything, at reduced input sizes
//! repro --metrics --quick  # per-run JSON-lines + summary table
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gmt_core::{CocoConfig, Parallelized, Parallelizer, ScheduleCache, Scheduler};
use gmt_ir::interp::DynCounts;
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_sim::{simulate, MachineConfig};
use gmt_workloads::{catalog, exec_config, Workload};
use std::time::Instant;

pub use explain::{
    explain_cell, explain_json, explain_report, verdict, ExplainCell, EXPLAIN_TOP_K,
};
pub use metrics::{metrics_table, stall_table, RunMetrics, StallBreakdown};
pub use verify::{verify_cell, verify_matrix, verify_table, VerifyCell};
pub use trace_report::{
    comm_attribution_table, queue_comm_table, trace_cell, TracedCell, TRACE_RING_CAPACITY,
};

/// Which partitioner an experiment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// GREMIO with single-element queues.
    Gremio,
    /// DSWP with 32-element queues.
    Dswp,
}

impl SchedulerKind {
    /// The scheduler configuration for two threads.
    pub fn scheduler(self) -> Scheduler {
        self.scheduler_n(2)
    }

    /// The scheduler configuration for `n` threads.
    pub fn scheduler_n(self, n: u32) -> Scheduler {
        match self {
            SchedulerKind::Gremio => Scheduler::gremio(n),
            SchedulerKind::Dswp => Scheduler::dswp(n),
        }
    }

    /// Queue depth per the paper (§4: single-element queues in the SA;
    /// 32-element queues for DSWP).
    pub fn queue_depth(self) -> usize {
        match self {
            SchedulerKind::Gremio => 1,
            SchedulerKind::Dswp => 32,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Gremio => "GREMIO",
            SchedulerKind::Dswp => "DSWP",
        }
    }
}

/// A failure of one benchmark's evaluation: which benchmark, in which
/// phase, and the underlying error rendered as text.
///
/// One failing kernel must not abort a whole figure, so every
/// fallible step of [`evaluate`] maps into this type instead of
/// panicking; [`run_all`] returns it per-slot and the figure renderers
/// print a failure line in the benchmark's row position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessError {
    /// The benchmark whose evaluation failed.
    pub benchmark: &'static str,
    /// The phase that failed (e.g. `"train run"`, `"timed MTCG sim"`).
    pub phase: &'static str,
    /// The underlying error, rendered.
    pub source: String,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} failed: {}", self.benchmark, self.phase, self.source)
    }
}

impl std::error::Error for HarnessError {}

/// `map_err` adapter tagging an error with its benchmark and phase.
fn fail<E: std::fmt::Display>(
    benchmark: &'static str,
    phase: &'static str,
) -> impl FnOnce(E) -> HarnessError {
    move |e| HarnessError { benchmark, phase, source: e.to_string() }
}

/// Dynamic results of one parallelized variant of one kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct VariantResult {
    /// Dynamic instruction counts, summed over threads.
    pub counts: DynCounts,
    /// Cycle count from the machine model (0 if not timed).
    pub cycles: u64,
}

/// The full measurement of one kernel under one scheduler.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (Figure 6b).
    pub benchmark: &'static str,
    /// Sequential dynamic instructions on the measured input.
    pub seq_instrs: u64,
    /// Sequential cycle count (0 if not timed).
    pub seq_cycles: u64,
    /// Baseline MTCG.
    pub mtcg: VariantResult,
    /// MTCG + COCO.
    pub coco: VariantResult,
}

impl BenchResult {
    /// Figure 7's quantity: dynamic communication with COCO relative to
    /// baseline MTCG, in percent (lower is better; 100 = no change).
    pub fn relative_comm_pct(&self) -> f64 {
        let base = self.mtcg.counts.comm_total();
        if base == 0 {
            100.0
        } else {
            self.coco.counts.comm_total() as f64 * 100.0 / base as f64
        }
    }

    /// Figure 8's first bar: MTCG speedup over single-threaded.
    ///
    /// `None` when either side was not timed (cycle count 0) — a mixed
    /// timed/untimed matrix must not fabricate `inf`/`0x` speedups.
    pub fn speedup_mtcg(&self) -> Option<f64> {
        ratio(self.seq_cycles, self.mtcg.cycles)
    }

    /// Figure 8's second bar: MTCG+COCO speedup over single-threaded.
    ///
    /// `None` when either side was not timed (cycle count 0).
    pub fn speedup_coco(&self) -> Option<f64> {
        ratio(self.seq_cycles, self.coco.cycles)
    }

    /// Figure 1's quantity: communication as a percentage of all
    /// dynamic instructions under baseline MTCG.
    pub fn comm_fraction_pct(&self) -> f64 {
        let total = self.mtcg.counts.total();
        if total == 0 {
            0.0
        } else {
            self.mtcg.counts.comm_total() as f64 * 100.0 / total as f64
        }
    }
}

/// `num / den` as a speedup, or `None` when either count is 0 (an
/// untimed run) — guards the accessors against `inf`/NaN.
fn ratio(num: u64, den: u64) -> Option<f64> {
    if num == 0 || den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

/// Input scaling for experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Train-sized inputs everywhere (fast; CI and tests).
    Quick,
    /// Ref inputs (the paper's methodology).
    Full,
}

/// One benchmark's full evaluation: the figure-facing [`BenchResult`]
/// plus the per-variant [`RunMetrics`] observability records.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The figure-facing measurement.
    pub result: BenchResult,
    /// One record per variant (baseline MTCG, then MTCG+COCO).
    pub metrics: Vec<RunMetrics>,
}

/// Candidate-schedule cache statistics of one evaluation's partition
/// arbitration (GREMIO only; zero for DSWP, which arbitrates nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbStats {
    /// Timed candidate evaluations requested.
    pub probes: u64,
    /// Evaluations served from the schedule cache.
    pub hits: u64,
}

/// Evaluates one workload under one scheduler: baseline MTCG and
/// MTCG+COCO, functional counts, and (optionally) timed cycles.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the benchmark and the failing
/// phase if parallelization or execution fails.
pub fn evaluate(
    w: &Workload,
    kind: SchedulerKind,
    timed: bool,
    scale: Scale,
) -> Result<BenchResult, HarnessError> {
    evaluate_full(w, kind, timed, scale).map(|e| e.result)
}

/// [`evaluate`], also returning the per-variant [`RunMetrics`].
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the benchmark and the failing
/// phase if parallelization or execution fails.
pub fn evaluate_full(
    w: &Workload,
    kind: SchedulerKind,
    timed: bool,
    scale: Scale,
) -> Result<Evaluation, HarnessError> {
    let b = w.benchmark;
    let train = w.run_train().map_err(fail(b, "train run"))?;
    let args: &[i64] = match scale {
        Scale::Quick => &w.train_args,
        Scale::Full => &w.ref_args,
    };
    let seq = gmt_ir::interp::run_with_memory(&w.function, args, w.init, &exec_config())
        .map_err(fail(b, "sequential run"))?;

    let (base, coco, arb) = parallelize_pair(w, kind, &train.profile)?;

    let t = Instant::now();
    let mtcg_counts = measure_counts(w, &base, kind, args).map_err(fail(b, "MTCG run"))?;
    let mut mtcg_run_ns = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let coco_counts = measure_counts(w, &coco, kind, args).map_err(fail(b, "COCO run"))?;
    let mut coco_run_ns = t.elapsed().as_nanos() as u64;

    let mut result = BenchResult {
        benchmark: b,
        seq_instrs: seq.counts.total(),
        seq_cycles: 0,
        mtcg: VariantResult { counts: mtcg_counts, cycles: 0 },
        coco: VariantResult { counts: coco_counts, cycles: 0 },
    };
    let mut mtcg_stalls = StallBreakdown::default();
    let mut coco_stalls = StallBreakdown::default();
    let mut mtcg_engine = (0u64, 0u64); // (engine_steps, skipped_cycles)
    let mut coco_engine = (0u64, 0u64);
    if timed {
        let machine = MachineConfig::default();
        let seq_sim = simulate(std::slice::from_ref(&w.function), args, w.init, &machine)
            .map_err(fail(b, "sequential sim"))?;
        result.seq_cycles = seq_sim.cycles;
        let t = Instant::now();
        let sim = timed_sim(w, &base, kind, args).map_err(fail(b, "timed MTCG sim"))?;
        result.mtcg.cycles = sim.cycles;
        mtcg_stalls = StallBreakdown::from_cores(&sim.cores);
        mtcg_engine = (sim.engine_steps, sim.skipped_cycles);
        mtcg_run_ns += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let sim = timed_sim(w, &coco, kind, args).map_err(fail(b, "timed COCO sim"))?;
        result.coco.cycles = sim.cycles;
        coco_stalls = StallBreakdown::from_cores(&sim.cores);
        coco_engine = (sim.engine_steps, sim.skipped_cycles);
        coco_run_ns += t.elapsed().as_nanos() as u64;
    }
    let metrics = vec![
        RunMetrics {
            benchmark: b,
            scheduler: kind.name(),
            variant: "mtcg",
            wall_ns: base.timings.total_ns() + mtcg_run_ns,
            instrs: result.mtcg.counts.total(),
            cycles: result.mtcg.cycles,
            timings: base.timings,
            arb_probes: arb.probes,
            arb_hits: arb.hits,
            stalls: mtcg_stalls,
            engine_steps: mtcg_engine.0,
            skipped_cycles: mtcg_engine.1,
        },
        RunMetrics {
            benchmark: b,
            scheduler: kind.name(),
            variant: "coco",
            wall_ns: coco.timings.total_ns() + coco_run_ns,
            instrs: result.coco.counts.total(),
            cycles: result.coco.cycles,
            timings: coco.timings,
            arb_probes: 0,
            arb_hits: 0,
            stalls: coco_stalls,
            engine_steps: coco_engine.0,
            skipped_cycles: coco_engine.1,
        },
    ];
    Ok(Evaluation { result, metrics })
}

/// Produces the (baseline MTCG, MTCG+COCO) pair for one workload and
/// scheduler, both over the same partition.
///
/// DSWP uses the analytic partitioner directly. For GREMIO —
/// whose candidate schedules' real throughput depends on queue
/// round-trips the analytic score cannot see — the candidates are
/// arbitrated by *timed runs of the generated (COCO) code on the train
/// input*: profile-guided partition selection, with the single-threaded
/// fallback guaranteeing the partitioner never degrades the program.
/// A candidate that fails to compile simply loses the arbitration
/// (probe cost `u64::MAX`); only a failure on the *chosen* partition
/// surfaces as an error.
///
/// Probe results are memoized in a [`ScheduleCache`], so the guard's
/// re-probes of the winner (and any candidates that compile to
/// identical decoded code) skip the recompile and resimulation; the
/// returned [`ArbStats`] report the cache's probe/hit counts.
fn parallelize_pair(
    w: &Workload,
    kind: SchedulerKind,
    profile: &gmt_ir::Profile,
) -> Result<(Parallelized, Parallelized, ArbStats), HarnessError> {
    let b = w.benchmark;
    match kind {
        SchedulerKind::Dswp => {
            let base = Parallelizer::new(kind.scheduler())
                .parallelize(&w.function, profile)
                .map_err(fail(b, "baseline parallelization"))?;
            let coco = Parallelizer::new(kind.scheduler())
                .with_coco(CocoConfig::default())
                .parallelize(&w.function, profile)
                .map_err(fail(b, "coco parallelization"))?;
            Ok((base, coco, ArbStats::default()))
        }
        SchedulerKind::Gremio => {
            let t = Instant::now();
            let pdg = gmt_pdg::Pdg::build(&w.function);
            let pdg_build_ns = t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            let cfg = gmt_sched::gremio::GremioConfig::default();
            let candidates = gmt_sched::gremio::candidates(&w.function, &pdg, profile, &cfg)
                .map_err(fail(b, "gremio candidate enumeration"))?;
            // GREMIO's own schedule: the analytically best genuinely-
            // parallel candidate ("genuinely" = the lighter thread owns
            // a meaningful share of the code, not a token offload).
            let block_weights = profile.block_weights(&w.function);
            let meaningful = |p: &gmt_pdg::Partition| {
                let sizes =
                    p.dynamic_sizes(|i| block_weights[w.function.block_of(i).index()].max(1));
                let total: u64 = sizes.iter().sum();
                sizes.iter().filter(|&&s| s > 0).count() > 1
                    && sizes.iter().min().copied().unwrap_or(0) * 10 >= total
            };
            // Timed arbitration probe: a candidate that fails to
            // parallelize or simulate scores u64::MAX and loses.
            // Memoized two ways — by partition assignment, and by the
            // structural hash of the generated decoded program mixed
            // with the machine knobs that affect timing.
            let mut cache = ScheduleCache::new();
            let mut cycles_probe = |partition: &gmt_pdg::Partition| -> u64 {
                let pkey = gmt_core::partition_key(&w.function, partition);
                if let Some(cycles) = cache.probe_partition(&pkey) {
                    return cycles;
                }
                let Ok(coco) = Parallelizer::new(kind.scheduler())
                    .with_coco(CocoConfig::default())
                    .parallelize_with_partition(&w.function, profile, &pdg, partition.clone())
                else {
                    cache.record_partition(pkey, u64::MAX);
                    return u64::MAX;
                };
                let machine = machine_for(&coco, kind);
                let Ok(program) = gmt_ir::decoded::DecodedProgram::decode(coco.threads()) else {
                    cache.record_partition(pkey, u64::MAX);
                    return u64::MAX;
                };
                let mut knobs = vec![machine.sa.num_queues as u64];
                knobs.extend(machine.sa.depths.iter().map(|&d| d as u64));
                let gkey = gmt_core::program_key(program.structural_hash(), &knobs);
                if let Some(cycles) = cache.probe_program(gkey) {
                    cache.record_partition(pkey, cycles);
                    return cycles;
                }
                let cycles = gmt_sim::simulate_decoded(&program, &w.train_args, w.init, &machine)
                    .map_or(u64::MAX, |r| r.cycles);
                cache.record(pkey, gkey, cycles);
                cycles
            };
            let best_mt = candidates
                .iter()
                .filter(|(_, p)| meaningful(p))
                .min_by_key(|(_, p)| cycles_probe(p))
                .map(|(_, p)| p.clone());
            // Arbitrate against the true single-threaded layout, not a
            // token-offload candidate.
            let single = {
                let mut p = gmt_pdg::Partition::new(2);
                for i in w.function.all_instrs() {
                    p.assign(i, gmt_pdg::ThreadId(0));
                }
                p
            };
            // Timed arbitration on the train input: keep the parallel
            // schedule unless it clearly loses (>10% slower) to running
            // single-threaded — the partitioner must never degrade the
            // program.
            let chosen = match best_mt {
                Some(mt)
                    if cycles_probe(&mt) as f64 <= cycles_probe(&single) as f64 * 1.10 =>
                {
                    mt
                }
                _ => single,
            };
            let partition_ns = t.elapsed().as_nanos() as u64;
            let arb = ArbStats { probes: cache.probes(), hits: cache.hits() };

            let mut base = Parallelizer::new(kind.scheduler())
                .parallelize_with_partition(&w.function, profile, &pdg, chosen.clone())
                .map_err(fail(b, "baseline parallelization"))?;
            let mut coco = Parallelizer::new(kind.scheduler())
                .with_coco(CocoConfig::default())
                .parallelize_with_partition(&w.function, profile, &pdg, chosen)
                .map_err(fail(b, "coco parallelization"))?;
            for p in [&mut base, &mut coco] {
                p.timings.pdg_build_ns = pdg_build_ns;
                p.timings.partition_ns = partition_ns;
            }
            Ok((base, coco, arb))
        }
    }
}

fn machine_for(p: &Parallelized, kind: SchedulerKind) -> MachineConfig {
    let mut m = MachineConfig::default().with_queue_depth(kind.queue_depth());
    // Queue allocation (footnote 1 of the paper) is not implemented, so
    // size the SA to the plan when it needs more than 256 queues.
    if p.num_queues() as usize > m.sa.num_queues {
        m.sa.num_queues = p.num_queues() as usize;
    }
    m
}

fn measure_counts(
    w: &Workload,
    p: &Parallelized,
    kind: SchedulerKind,
    args: &[i64],
) -> Result<DynCounts, gmt_ir::interp::ExecError> {
    let mt = run_mt(
        p.threads(),
        args,
        w.init,
        &QueueConfig {
            num_queues: (p.num_queues().max(1)) as usize,
            capacity: kind.queue_depth(),
        },
        &exec_config(),
    )?;
    Ok(mt.totals())
}

fn timed_sim(
    w: &Workload,
    p: &Parallelized,
    kind: SchedulerKind,
    args: &[i64],
) -> Result<gmt_sim::SimResult, gmt_ir::interp::ExecError> {
    let machine = machine_for(p, kind);
    simulate(p.threads(), args, w.init, &machine)
}

/// Runs a whole figure's worth of measurements on the worker pool
/// (`GMT_JOBS` workers, default available parallelism), in catalog
/// order. A failing benchmark yields an `Err` in its slot; the
/// remaining benchmarks still complete.
pub fn run_all(
    kind: SchedulerKind,
    timed: bool,
    scale: Scale,
) -> Vec<Result<BenchResult, HarnessError>> {
    run_all_jobs(kind, timed, scale, gmt_testkit::num_jobs())
}

/// [`run_all`] with an explicit worker count (1 = serial in-thread).
pub fn run_all_jobs(
    kind: SchedulerKind,
    timed: bool,
    scale: Scale,
    jobs: usize,
) -> Vec<Result<BenchResult, HarnessError>> {
    run_workloads(catalog(), kind, timed, scale, jobs)
        .into_iter()
        .map(|r| r.map(|e| e.result))
        .collect()
}

/// Full evaluations (results + metrics) for the whole catalog, on
/// `jobs` workers.
pub fn run_all_metrics(
    kind: SchedulerKind,
    timed: bool,
    scale: Scale,
    jobs: usize,
) -> Vec<Result<Evaluation, HarnessError>> {
    run_workloads(catalog(), kind, timed, scale, jobs)
}

/// Evaluates an explicit workload list on `jobs` workers, preserving
/// input order. The building block behind [`run_all`]; public so
/// tests can inject synthetically failing workloads.
pub fn run_workloads(
    workloads: Vec<Workload>,
    kind: SchedulerKind,
    timed: bool,
    scale: Scale,
    jobs: usize,
) -> Vec<Result<Evaluation, HarnessError>> {
    gmt_testkit::par_map(workloads, jobs, |_i, w| evaluate_full(&w, kind, timed, scale))
}

/// The multi-thread extension study (the paper's conclusion: "we expect
/// the benefits from COCO to be more pronounced when more threads are
/// generated"): per benchmark, the communication fraction under
/// baseline MTCG and the COCO reduction, as the thread count grows.
///
/// # Errors
///
/// Returns a [`HarnessError`] naming the benchmark and failing phase.
pub fn thread_scaling(
    w: &Workload,
    kind: SchedulerKind,
    threads: &[u32],
) -> Result<Vec<ScalingPoint>, HarnessError> {
    let b = w.benchmark;
    let train = w.run_train().map_err(fail(b, "train run"))?;
    let pdg = gmt_pdg::Pdg::build(&w.function);
    threads
        .iter()
        .map(|&n| {
            let base = Parallelizer::new(kind.scheduler_n(n))
                .parallelize(&w.function, &train.profile)
                .map_err(fail(b, "baseline parallelization"))?;
            let coco = Parallelizer::new(kind.scheduler_n(n))
                .with_coco(CocoConfig::default())
                .parallelize_with_partition(
                    &w.function,
                    &train.profile,
                    &pdg,
                    base.partition.clone(),
                )
                .map_err(fail(b, "coco parallelization"))?;
            let run = |p: &Parallelized| {
                run_mt(
                    p.threads(),
                    &w.train_args,
                    w.init,
                    &QueueConfig {
                        num_queues: p.num_queues().max(1) as usize,
                        capacity: kind.queue_depth().max(8),
                    },
                    &exec_config(),
                )
                .map(|r| r.totals())
                .map_err(fail(b, "mt run"))
            };
            let bt = run(&base)?;
            let c = run(&coco)?;
            Ok(ScalingPoint {
                threads: n,
                mtcg_comm: bt.comm_total(),
                coco_comm: c.comm_total(),
                comm_fraction_pct: bt.comm_total() as f64 * 100.0 / bt.total().max(1) as f64,
            })
        })
        .collect()
}

/// One point of the thread-scaling study.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Thread count.
    pub threads: u32,
    /// Dynamic communication under baseline MTCG.
    pub mtcg_comm: u64,
    /// Dynamic communication under MTCG+COCO.
    pub coco_comm: u64,
    /// Communication share of all dynamic instructions (baseline).
    pub comm_fraction_pct: f64,
}

/// Geometric mean (used for speedup averages).
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean (used for reduction averages, like the paper's
/// "average reduction of 34.4%").
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

pub mod explain;
pub mod figures;
mod metrics;
pub mod trace_report;
mod verify;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert!((geo_mean([1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert_eq!(geo_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn evaluate_one_quick() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let r = evaluate(&w, SchedulerKind::Gremio, false, Scale::Quick).expect("evaluates");
        assert!(r.mtcg.counts.total() > 0);
        assert!(r.relative_comm_pct() <= 100.0);
    }

    #[test]
    fn evaluate_timed_quick() {
        let w = gmt_workloads::by_benchmark("adpcmdec").unwrap();
        let r = evaluate(&w, SchedulerKind::Dswp, true, Scale::Quick).expect("evaluates");
        assert!(r.seq_cycles > 0);
        assert!(r.mtcg.cycles > 0);
        assert!(r.coco.cycles > 0);
        assert!(r.speedup_mtcg().is_some());
    }

    #[test]
    fn untimed_speedups_are_none_not_inf() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let r = evaluate(&w, SchedulerKind::Dswp, false, Scale::Quick).expect("evaluates");
        assert_eq!(r.seq_cycles, 0);
        assert_eq!(r.speedup_mtcg(), None);
        assert_eq!(r.speedup_coco(), None);
        // A mixed timed/untimed result must not fabricate a speedup
        // either direction.
        let mut mixed = r.clone();
        mixed.seq_cycles = 1000;
        assert_eq!(mixed.speedup_mtcg(), None, "untimed variant, timed seq");
    }

    #[test]
    fn metrics_record_phases_and_wall_clock() {
        let w = gmt_workloads::by_benchmark("adpcmdec").unwrap();
        let e = evaluate_full(&w, SchedulerKind::Dswp, true, Scale::Quick).expect("evaluates");
        assert_eq!(e.metrics.len(), 2);
        let (m, c) = (&e.metrics[0], &e.metrics[1]);
        assert_eq!((m.variant, c.variant), ("mtcg", "coco"));
        assert_eq!(m.scheduler, "DSWP");
        assert!(m.wall_ns > 0 && c.wall_ns > 0);
        assert!(m.instrs > 0 && m.cycles > 0);
        assert!(m.timings.mtcg_ns > 0, "MTCG codegen was timed");
        assert_eq!(m.timings.coco_ns, 0, "baseline variant runs no COCO");
        assert!(c.timings.coco_ns > 0, "COCO variant times the optimizer");
        assert!(m.timings.pdg_build_ns > 0 && m.timings.partition_ns > 0);
    }

    #[test]
    fn gremio_metrics_patch_shared_phases() {
        let w = gmt_workloads::by_benchmark("ks").unwrap();
        let e = evaluate_full(&w, SchedulerKind::Gremio, false, Scale::Quick).expect("evaluates");
        for m in &e.metrics {
            assert!(m.timings.pdg_build_ns > 0, "{}: pdg phase recorded", m.variant);
            assert!(m.timings.partition_ns > 0, "{}: partition phase recorded", m.variant);
        }
    }
}
