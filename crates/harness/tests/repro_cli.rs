//! Bin-level tests of the `repro` CLI contract: conflicting, repeated,
//! and malformed invocations exit 2 with usage on stderr; valid ones
//! succeed. Every case here runs the real binary
//! (`CARGO_BIN_EXE_repro`), so the tests cover argument parsing,
//! `GMT_JOBS` validation, and the `--trace` pipeline end to end.
//!
//! Regression tests for the PR-4 CLI fixes: pre-fix, `--fig 7
//! --metrics` silently ignored the figure, a repeated `--scheduler`
//! silently kept the last value, and `GMT_JOBS=0` silently ran at full
//! parallelism.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env_remove("GMT_JOBS")
        .output()
        .expect("repro runs")
}

fn assert_usage_exit(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "exit 2 expected; stderr: {stderr}");
    assert!(stderr.contains("usage:"), "usage on stderr: {stderr}");
    assert!(stderr.contains(needle), "diagnosis names the problem (`{needle}`): {stderr}");
}

#[test]
fn help_exits_zero_with_usage() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_argument_exits_2() {
    assert_usage_exit(&repro(&["--fig", "7", "trailing-junk"]), "trailing-junk");
    assert_usage_exit(&repro(&["--bogus"]), "--bogus");
}

#[test]
fn unknown_figure_exits_2() {
    assert_usage_exit(&repro(&["--fig", "9"]), "unknown figure id 9");
}

#[test]
fn conflicting_modes_exit_2() {
    assert_usage_exit(&repro(&["--fig", "7", "--metrics"]), "--fig conflicts with --metrics");
    assert_usage_exit(&repro(&["--trace", "/tmp/x.json", "--metrics"]), "--trace conflicts");
    assert_usage_exit(&repro(&["--trace", "/tmp/x.json", "--fig", "7"]), "--trace conflicts");
    assert_usage_exit(&repro(&["--explain", "ks", "--metrics"]), "--explain conflicts");
    assert_usage_exit(
        &repro(&["--explain", "ks", "--trace", "/tmp/x.json"]),
        "--explain conflicts",
    );
}

#[test]
fn explain_option_validation_exits_2() {
    assert_usage_exit(&repro(&["--json"]), "--json requires --explain");
    assert_usage_exit(&repro(&["--explain"]), "missing --explain benchmark");
    assert_usage_exit(&repro(&["--explain", "nosuch", "--quick"]), "unknown benchmark nosuch");
    assert_usage_exit(&repro(&["--explain", "ks", "--variant", "fast"]), "bad variant fast");
}

#[test]
fn explain_emits_conserving_json() {
    let out = repro(&["--explain", "ks", "--scheduler", "dswp", "--quick", "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().expect("one JSON line");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for key in ["\"verdict\":", "\"cp_total\":", "\"est_bottleneck\":", "\"threads\":["] {
        assert!(line.contains(key), "missing {key}: {line}");
    }
}

#[test]
fn repeated_flags_exit_2() {
    assert_usage_exit(
        &repro(&["--scheduler", "gremio", "--scheduler", "dswp"]),
        "duplicate flag --scheduler",
    );
    assert_usage_exit(&repro(&["--fig", "7", "--fig", "8"]), "duplicate flag --fig");
    assert_usage_exit(&repro(&["--quick", "--quick"]), "duplicate flag --quick");
}

#[test]
fn trace_option_validation_exits_2() {
    assert_usage_exit(&repro(&["--bench", "ks"]), "--bench requires --trace");
    assert_usage_exit(&repro(&["--variant", "coco"]), "--variant requires --trace or --explain");
    assert_usage_exit(
        &repro(&["--trace", "/tmp/x.json", "--scheduler", "both"]),
        "single --scheduler",
    );
    assert_usage_exit(
        &repro(&["--trace", "/tmp/x.json", "--variant", "fast"]),
        "bad variant fast",
    );
    assert_usage_exit(
        &repro(&["--trace", "/tmp/x.json", "--bench", "nosuch"]),
        "unknown benchmark nosuch",
    );
    assert_usage_exit(&repro(&["--trace"]), "missing --trace path");
}

#[test]
fn invalid_gmt_jobs_exits_2_before_any_work() {
    for bad in ["0", "zero", "-1"] {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["--metrics", "--quick"])
            .env("GMT_JOBS", bad)
            .output()
            .expect("repro runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "GMT_JOBS={bad}: {stderr}");
        assert!(stderr.contains("GMT_JOBS"), "names the variable: {stderr}");
        assert!(
            out.stdout.is_empty(),
            "rejected before producing output: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn trace_cell_writes_chrome_json_and_attribution() {
    let dir = std::env::temp_dir().join("gmt_repro_cli_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = repro(&[
        "--trace",
        path.to_str().unwrap(),
        "--bench",
        "adpcmdec",
        "--scheduler",
        "dswp",
        "--quick",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("comm attribution"), "{stdout}");
    assert!(stdout.contains("thread"), "{stdout}");
    assert!(stdout.contains("queue"), "{stdout}");
    let json = std::fs::read_to_string(&path).expect("trace file written");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""), "core spans present");
    assert!(json.contains("\"ph\":\"C\""), "queue counters present");
    std::fs::remove_file(&path).ok();
}
