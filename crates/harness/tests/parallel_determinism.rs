//! The parallel experiment runner must be an observably pure
//! optimization: byte-identical figure output versus the serial path,
//! and one failing workload must not take the rest of the matrix down.

use gmt_harness::{figures, run_all_jobs, run_workloads, Scale, SchedulerKind};
use gmt_workloads::by_benchmark;

/// Parallel `run_all` (8 workers) produces the same results, in the
/// same order, as the serial path (1 worker) — compared both
/// structurally and as rendered figure text.
#[test]
fn parallel_run_all_is_byte_identical_to_serial() {
    let kind = SchedulerKind::Dswp;
    let serial = run_all_jobs(kind, false, Scale::Quick, 1);
    let parallel = run_all_jobs(kind, false, Scale::Quick, 8);
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "structural results differ between serial and parallel runs"
    );
    assert_eq!(
        figures::render_figure1(&serial, kind),
        figures::render_figure1(&parallel, kind),
        "figure 1 text differs between serial and parallel runs"
    );
    assert_eq!(
        figures::render_figure7(&serial, kind),
        figures::render_figure7(&parallel, kind),
        "figure 7 text differs between serial and parallel runs"
    );
}

/// The `GMT_JOBS` environment override reaches the figure renderers:
/// the env-driven path produces the same bytes as explicit job counts.
#[test]
fn gmt_jobs_env_override_is_deterministic() {
    // This is the only test in this binary touching GMT_JOBS, so the
    // set/remove cannot race another reader.
    std::env::set_var("GMT_JOBS", "4");
    let with_env = figures::figure1(SchedulerKind::Dswp, Scale::Quick);
    std::env::set_var("GMT_JOBS", "1");
    let serial = figures::figure1(SchedulerKind::Dswp, Scale::Quick);
    std::env::remove_var("GMT_JOBS");
    assert_eq!(with_env, serial);
}

/// A synthetically failing workload errors out with its benchmark and
/// phase named, while every sibling in the queue still completes —
/// and the rendered figure prints the partial results plus the
/// failure line.
#[test]
fn failing_workload_does_not_abort_the_matrix() {
    let mut broken = by_benchmark("ks").expect("ks exists");
    broken.train_args = Vec::new(); // interpreter: MissingArguments
    let workloads = vec![
        by_benchmark("adpcmdec").expect("adpcmdec exists"),
        broken,
        by_benchmark("adpcmenc").expect("adpcmenc exists"),
    ];
    let out = run_workloads(workloads, SchedulerKind::Dswp, false, Scale::Quick, 4);
    assert_eq!(out.len(), 3, "no result slot is dropped");
    assert!(out[0].is_ok(), "sibling before the failure completes");
    assert!(out[2].is_ok(), "sibling after the failure completes");
    let err = out[1].as_ref().expect_err("doctored workload fails");
    assert_eq!(err.benchmark, "ks", "the failure names its benchmark");
    assert_eq!(err.phase, "train run", "the failure names its phase");

    let rows: Vec<_> = out.into_iter().map(|r| r.map(|e| e.result)).collect();
    let text = figures::render_figure1(&rows, SchedulerKind::Dswp);
    assert!(text.contains("adpcmdec"), "partial results print: {text}");
    assert!(text.contains("adpcmenc"), "partial results print: {text}");
    assert!(text.contains("ks") && text.contains("FAILED"), "failure line prints: {text}");
    assert!(text.contains("average"), "average over successes prints: {text}");
}
