//! Pre-decoded flat instruction streams: the execution engine behind
//! the interpreters and the cycle simulator.
//!
//! The ID-walking executors pay three indirections per dynamic
//! instruction — `Function::block` to find the block, a bounds check to
//! pick body vs terminator, and `Function::instr` to fetch the `Op` —
//! plus per-issue `Op` clones and per-check `Op::uses` allocations in
//! the simulator. [`DecodedFunction::decode`] pays all of that **once**
//! per function: blocks are laid out into one dense `Vec<DecodedOp>`,
//! branch/jump targets are resolved to flat stream indices (pcs),
//! `lea`s are folded to absolute addresses against the memory layout,
//! and every slot carries its pre-computed functional-unit class,
//! execution latency, register-use slots, and communication kind, so
//! the hot loops of `interp`, `interp_mt`, and `gmt-sim` are a single
//! array index per step.
//!
//! Executors built on this module are behaviorally *identical* to the
//! ID-walking reference paths (`interp::run_with_memory_reference`,
//! `interp_mt::run_mt_reference`, `gmt_sim::simulate_reference`): same
//! outputs, same counts, same cycle-level stall statistics. The
//! `decoded_equivalence` integration tests pin that equivalence over
//! random programs and the whole workload catalog.

use crate::function::Function;
use crate::instr::Op;
use crate::interp::{ExecError, MemoryLayout};
use crate::types::{AddrMode, BinOp, BlockId, InstrId, Operand, QueueId, Reg, UnOp};
use std::hash::{Hash, Hasher};

/// One pre-decoded instruction: operands inline, control-flow targets
/// resolved to flat pcs, `lea` folded against the memory layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecodedOp {
    /// `dst = imm`.
    Const(Reg, i64),
    /// `dst = addr` — a `lea` with the object base already folded in.
    LeaAbs(Reg, i64),
    /// `dst = a <op> b`.
    Bin(BinOp, Reg, Operand, Operand),
    /// `dst = <op> a`.
    Un(UnOp, Reg, Operand),
    /// `dst = mem[addr]`.
    Load(Reg, AddrMode),
    /// `mem[addr] = value`.
    Store(AddrMode, Operand),
    /// Emit to the output trace.
    Output(Operand),
    /// Conditional branch to flat pcs. `backward` records whether the
    /// taken target does not move forward in block order (the static
    /// BTFN prediction the simulator models).
    Branch {
        /// Condition register.
        cond: Reg,
        /// Flat pc when `cond != 0`.
        then_pc: u32,
        /// Flat pc when `cond == 0`.
        else_pc: u32,
        /// Taken target is a back edge in block order.
        backward: bool,
    },
    /// Unconditional jump to a flat pc.
    Jump(u32),
    /// Return with an optional value.
    Ret(Option<Operand>),
    /// Send into a queue.
    Produce {
        /// Destination queue.
        queue: QueueId,
        /// Value sent.
        value: Operand,
    },
    /// Receive from a queue.
    Consume {
        /// Destination register.
        dst: Reg,
        /// Source queue.
        queue: QueueId,
    },
    /// Send a synchronization token.
    ProduceSync {
        /// Destination queue.
        queue: QueueId,
    },
    /// Receive a synchronization token.
    ConsumeSync {
        /// Source queue.
        queue: QueueId,
    },
    /// No operation.
    Nop,
    /// Placeholder for a block left unterminated by its builder;
    /// executing it panics exactly like the ID-walking path does.
    Unterminated,
}

/// Functional-unit class of an instruction (the simulator's issue
/// resources: ALU, memory port, FP unit, branch unit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecUnit {
    /// Integer ALU.
    Alu = 0,
    /// Memory port (loads, stores, and all produce/consume traffic).
    Mem = 1,
    /// Floating-point unit.
    Fp = 2,
    /// Branch unit.
    Branch = 3,
}

/// Dynamic-count classification of an instruction (the Figure 1
/// split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstrKind {
    /// Original program instruction.
    Computation,
    /// `produce`/`consume` register communication.
    Communication,
    /// `produce.sync`/`consume.sync` memory synchronization.
    Synchronization,
}

/// Sentinel for an unused register-use slot.
pub const NO_USE: u32 = u32::MAX;

/// A [`Function`] lowered once into a dense, contiguous instruction
/// stream with all per-instruction metadata pre-computed.
#[derive(Clone, Debug)]
pub struct DecodedFunction {
    params: Vec<Reg>,
    num_regs: u32,
    ops: Vec<DecodedOp>,
    /// Source arena id per slot (error reporting).
    src: Vec<InstrId>,
    /// Containing block per slot (edge profiling).
    block: Vec<BlockId>,
    /// Functional-unit class per slot.
    unit: Vec<ExecUnit>,
    /// Execution latency per slot (cycles).
    latency: Vec<u32>,
    /// Register uses per slot (at most two; `NO_USE` fills the rest).
    uses: Vec<[u32; 2]>,
    entry_pc: u32,
    layout: MemoryLayout,
}

/// Execution latency table (mirrored by the reference simulator).
fn latency_of(op: &Op) -> u32 {
    match op {
        Op::Bin(b, ..) => match b {
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 12,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
            BinOp::FDiv => 16,
            _ => 1,
        },
        _ => 1,
    }
}

/// Functional-unit table (mirrored by the reference simulator).
fn unit_of(op: &Op) -> ExecUnit {
    match op {
        Op::Bin(b, ..) if b.is_float_class() => ExecUnit::Fp,
        Op::Load(..)
        | Op::Store(..)
        | Op::Produce { .. }
        | Op::Consume { .. }
        | Op::ProduceSync { .. }
        | Op::ConsumeSync { .. } => ExecUnit::Mem,
        Op::Branch { .. } | Op::Jump(_) | Op::Ret(_) => ExecUnit::Branch,
        _ => ExecUnit::Alu,
    }
}

impl DecodedOp {
    /// Dynamic-count classification of this op.
    #[inline]
    pub fn kind(&self) -> InstrKind {
        match self {
            DecodedOp::Produce { .. } | DecodedOp::Consume { .. } => InstrKind::Communication,
            DecodedOp::ProduceSync { .. } | DecodedOp::ConsumeSync { .. } => {
                InstrKind::Synchronization
            }
            _ => InstrKind::Computation,
        }
    }

    /// Whether this op is a communication primitive (either kind).
    #[inline]
    pub fn is_communication(&self) -> bool {
        !matches!(self.kind(), InstrKind::Computation)
    }
}

impl DecodedFunction {
    /// Decodes `f` against its own memory layout.
    pub fn decode(f: &Function) -> DecodedFunction {
        DecodedFunction::decode_with_layout(f, &MemoryLayout::of(f))
    }

    /// Decodes `f` against a caller-supplied layout (multi-threaded
    /// runs lay memory out from thread 0's object table and share it).
    pub fn decode_with_layout(f: &Function, layout: &MemoryLayout) -> DecodedFunction {
        let nb = f.num_blocks();
        let mut block_start = vec![0u32; nb];
        let mut total = 0u32;
        for b in f.blocks() {
            block_start[b.index()] = total;
            // Every block occupies body + exactly one terminator slot
            // (a placeholder when unterminated).
            total += f.block(b).instrs.len() as u32 + 1;
        }

        let n = total as usize;
        let mut d = DecodedFunction {
            params: f.params.clone(),
            num_regs: f.num_regs(),
            ops: Vec::with_capacity(n),
            src: Vec::with_capacity(n),
            block: Vec::with_capacity(n),
            unit: Vec::with_capacity(n),
            latency: Vec::with_capacity(n),
            uses: Vec::with_capacity(n),
            entry_pc: block_start[f.entry().index()],
            layout: layout.clone(),
        };

        let mut use_buf = Vec::with_capacity(2);
        for b in f.blocks() {
            let blk = f.block(b);
            for i in blk.all_instrs() {
                let op = f.instr(i);
                let lowered = lower(op, b, layout, &block_start);
                use_buf.clear();
                op.uses_into(&mut use_buf);
                let mut u = [NO_USE; 2];
                for (slot, r) in u.iter_mut().zip(&use_buf) {
                    *slot = r.0;
                }
                d.ops.push(lowered);
                d.src.push(i);
                d.block.push(b);
                d.unit.push(unit_of(op));
                d.latency.push(latency_of(op));
                d.uses.push(u);
            }
            if blk.terminator.is_none() {
                d.ops.push(DecodedOp::Unterminated);
                d.src.push(InstrId(u32::MAX));
                d.block.push(b);
                d.unit.push(ExecUnit::Branch);
                d.latency.push(1);
                d.uses.push([NO_USE; 2]);
            }
        }
        d
    }

    /// Registers holding the arguments on entry.
    pub fn params(&self) -> &[Reg] {
        &self.params
    }

    /// Number of virtual registers.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Number of slots in the flat stream.
    pub fn num_slots(&self) -> usize {
        self.ops.len()
    }

    /// The pc of the entry block's first instruction.
    pub fn entry_pc(&self) -> u32 {
        self.entry_pc
    }

    /// The op at `pc`.
    #[inline]
    pub fn op(&self, pc: u32) -> DecodedOp {
        self.ops[pc as usize]
    }

    /// The source arena id of the op at `pc`.
    #[inline]
    pub fn src(&self, pc: u32) -> InstrId {
        self.src[pc as usize]
    }

    /// The block containing the op at `pc`.
    #[inline]
    pub fn block(&self, pc: u32) -> BlockId {
        self.block[pc as usize]
    }

    /// The functional-unit class of the op at `pc`.
    #[inline]
    pub fn unit(&self, pc: u32) -> ExecUnit {
        self.unit[pc as usize]
    }

    /// The execution latency of the op at `pc`.
    #[inline]
    pub fn latency(&self, pc: u32) -> u32 {
        self.latency[pc as usize]
    }

    /// The register-use slots of the op at `pc` ([`NO_USE`]-padded).
    #[inline]
    pub fn uses(&self, pc: u32) -> [u32; 2] {
        self.uses[pc as usize]
    }

    /// The memory layout the stream was decoded against.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Checks that `args` covers the parameters, mirroring the
    /// reference executors' argument check.
    ///
    /// # Errors
    ///
    /// [`ExecError::MissingArguments`] when too few arguments are
    /// supplied.
    pub fn check_args(&self, args: &[i64]) -> Result<(), ExecError> {
        if args.len() < self.params.len() {
            return Err(ExecError::MissingArguments);
        }
        Ok(())
    }

    /// A structural fingerprint of the decoded program: ops, register
    /// file size, parameters, and memory extent. Two functions with the
    /// same hash execute identically (modulo 64-bit hash collisions),
    /// which is what the candidate-schedule evaluation cache keys on.
    pub fn structural_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.num_regs.hash(&mut h);
        self.params.hash(&mut h);
        self.layout.total_cells().hash(&mut h);
        self.ops.hash(&mut h);
        h.finish()
    }
}

fn lower(op: &Op, b: BlockId, layout: &MemoryLayout, block_start: &[u32]) -> DecodedOp {
    match *op {
        Op::Const(d, v) => DecodedOp::Const(d, v),
        Op::Lea(d, obj, off) => DecodedOp::LeaAbs(d, layout.base(obj) as i64 + off),
        Op::Bin(o, d, x, y) => DecodedOp::Bin(o, d, x, y),
        Op::Un(o, d, x) => DecodedOp::Un(o, d, x),
        Op::Load(d, a) => DecodedOp::Load(d, a),
        Op::Store(a, v) => DecodedOp::Store(a, v),
        Op::Output(v) => DecodedOp::Output(v),
        Op::Branch { cond, then_bb, else_bb } => DecodedOp::Branch {
            cond,
            then_pc: block_start[then_bb.index()],
            else_pc: block_start[else_bb.index()],
            backward: then_bb <= b,
        },
        Op::Jump(t) => DecodedOp::Jump(block_start[t.index()]),
        Op::Ret(v) => DecodedOp::Ret(v),
        Op::Produce { queue, value } => DecodedOp::Produce { queue, value },
        Op::Consume { dst, queue } => DecodedOp::Consume { dst, queue },
        Op::ProduceSync { queue } => DecodedOp::ProduceSync { queue },
        Op::ConsumeSync { queue } => DecodedOp::ConsumeSync { queue },
        Op::Nop => DecodedOp::Nop,
    }
}

/// A set of per-thread decoded functions sharing one memory layout
/// (thread 0's, the multi-threaded executors' convention).
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    threads: Vec<DecodedFunction>,
    layout: MemoryLayout,
}

impl DecodedProgram {
    /// Decodes every thread against thread 0's memory layout.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidConfig`] when `threads` is empty.
    pub fn decode(threads: &[Function]) -> Result<DecodedProgram, ExecError> {
        let first = threads
            .first()
            .ok_or_else(|| ExecError::InvalidConfig("at least one thread required".to_string()))?;
        let layout = MemoryLayout::of(first);
        let threads =
            threads.iter().map(|f| DecodedFunction::decode_with_layout(f, &layout)).collect();
        Ok(DecodedProgram { threads, layout })
    }

    /// The decoded threads.
    pub fn threads(&self) -> &[DecodedFunction] {
        &self.threads
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the program has no threads (never true for a decoded
    /// program; kept for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// The shared memory layout (thread 0's).
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Combined structural fingerprint over all threads, in order.
    pub fn structural_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.threads.len().hash(&mut h);
        for t in &self.threads {
            t.structural_hash().hash(&mut h);
        }
        h.finish()
    }
}

/// Architectural state of one thread executing a decoded stream: a
/// register file and a flat pc. Used by both interpreters.
pub(crate) struct DecodedThread {
    pub(crate) regs: Vec<i64>,
    pub(crate) pc: u32,
}

impl DecodedThread {
    pub(crate) fn new(d: &DecodedFunction, args: &[i64]) -> Result<DecodedThread, ExecError> {
        d.check_args(args)?;
        let mut regs = vec![0i64; d.num_regs() as usize];
        for (r, &v) in d.params().iter().zip(args) {
            regs[r.index()] = v;
        }
        Ok(DecodedThread { regs, pc: d.entry_pc() })
    }

    #[inline]
    fn operand(&self, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn addr(&self, a: AddrMode) -> i64 {
        self.regs[a.base.index()].wrapping_add(a.offset)
    }

    /// Executes one decoded instruction (or reports a queue block) —
    /// the flat-stream mirror of `ThreadState::step`.
    #[inline]
    pub(crate) fn step(
        &mut self,
        d: &DecodedFunction,
        memory: &mut crate::interp::Memory,
        output: &mut Vec<i64>,
        queues: &mut dyn crate::interp::QueueAccess,
    ) -> Result<crate::interp::StepOutcome, ExecError> {
        use crate::interp::StepOutcome;
        match d.op(self.pc) {
            DecodedOp::Const(dst, v) => {
                self.regs[dst.index()] = v;
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::LeaAbs(dst, addr) => {
                self.regs[dst.index()] = addr;
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Bin(op, dst, a, b) => {
                self.regs[dst.index()] = op.eval(self.operand(a), self.operand(b));
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Un(op, dst, a) => {
                self.regs[dst.index()] = op.eval(self.operand(a));
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Load(dst, a) => {
                self.regs[dst.index()] = memory.read(self.addr(a))?;
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Store(a, v) => {
                memory.write(self.addr(a), self.operand(v))?;
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Output(v) => {
                output.push(self.operand(v));
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Branch { cond, then_pc, else_pc, .. } => {
                let from = d.block(self.pc);
                let to = if self.regs[cond.index()] != 0 { then_pc } else { else_pc };
                self.pc = to;
                Ok(StepOutcome::TookEdge(from, d.block(to)))
            }
            DecodedOp::Jump(t) => {
                let from = d.block(self.pc);
                self.pc = t;
                Ok(StepOutcome::TookEdge(from, d.block(t)))
            }
            DecodedOp::Ret(v) => Ok(StepOutcome::Returned(v.map(|o| self.operand(o)))),
            DecodedOp::Produce { queue, value } => {
                let v = self.operand(value);
                let instr = d.src(self.pc);
                if queues.try_produce(queue.index(), v).map_err(|e| retag(e, instr))? {
                    self.pc += 1;
                    Ok(StepOutcome::Continue)
                } else {
                    Ok(StepOutcome::Blocked)
                }
            }
            DecodedOp::Consume { dst, queue } => {
                let instr = d.src(self.pc);
                match queues.try_consume(queue.index()).map_err(|e| retag(e, instr))? {
                    Some(v) => {
                        self.regs[dst.index()] = v;
                        self.pc += 1;
                        Ok(StepOutcome::Continue)
                    }
                    None => Ok(StepOutcome::Blocked),
                }
            }
            DecodedOp::ProduceSync { queue } => {
                let instr = d.src(self.pc);
                if queues.try_produce(queue.index(), 1).map_err(|e| retag(e, instr))? {
                    self.pc += 1;
                    Ok(StepOutcome::Continue)
                } else {
                    Ok(StepOutcome::Blocked)
                }
            }
            DecodedOp::ConsumeSync { queue } => {
                let instr = d.src(self.pc);
                match queues.try_consume(queue.index()).map_err(|e| retag(e, instr))? {
                    Some(_) => {
                        self.pc += 1;
                        Ok(StepOutcome::Continue)
                    }
                    None => Ok(StepOutcome::Blocked),
                }
            }
            DecodedOp::Nop => {
                self.pc += 1;
                Ok(StepOutcome::Continue)
            }
            DecodedOp::Unterminated => Err(crate::interp::unterminated(d.block(self.pc))),
        }
    }
}

fn retag(e: ExecError, instr: InstrId) -> ExecError {
    match e {
        ExecError::CommunicationOutsideMt(_) => ExecError::CommunicationOutsideMt(instr),
        ExecError::BadQueue(_) => ExecError::BadQueue(instr),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn loop_fn() -> Function {
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let header = b.block("h");
        let body = b.block("b");
        let exit = b.block("x");
        b.const_into(i, 0);
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, 7i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn layout_is_dense_and_ordered() {
        let f = loop_fn();
        let d = DecodedFunction::decode(&f);
        assert_eq!(d.num_slots(), f.placed_instr_count());
        assert_eq!(d.entry_pc(), 0);
        // Blocks appear contiguously in index order.
        let mut last = d.block(0);
        for pc in 1..d.num_slots() as u32 {
            assert!(d.block(pc) >= last, "block order broken at pc {pc}");
            last = d.block(pc);
        }
    }

    #[test]
    fn branch_targets_resolve_to_block_starts() {
        let f = loop_fn();
        let d = DecodedFunction::decode(&f);
        for pc in 0..d.num_slots() as u32 {
            if let DecodedOp::Branch { then_pc, else_pc, backward, .. } = d.op(pc) {
                // Header branch: body (forward), exit (forward).
                assert_eq!(d.block(then_pc), BlockId(2));
                assert_eq!(d.block(else_pc), BlockId(3));
                assert!(!backward);
            }
        }
    }

    #[test]
    fn lea_folds_layout_base() {
        let mut b = FunctionBuilder::new("lea");
        let o1 = b.object("a", 4);
        let o2 = b.object("c", 4);
        let p = b.lea(o2, 2);
        let _ = b.lea(o1, 0);
        b.ret(Some(p.into()));
        let f = b.finish().unwrap();
        let layout = MemoryLayout::of(&f);
        let d = DecodedFunction::decode(&f);
        assert_eq!(d.op(0), DecodedOp::LeaAbs(Reg(0), layout.base(crate::types::ObjectId(1)) as i64 + 2));
    }

    #[test]
    fn metadata_matches_op_tables() {
        let f = loop_fn();
        let d = DecodedFunction::decode(&f);
        for pc in 0..d.num_slots() as u32 {
            match d.op(pc) {
                DecodedOp::Branch { .. } | DecodedOp::Jump(_) | DecodedOp::Ret(_) => {
                    assert_eq!(d.unit(pc), ExecUnit::Branch)
                }
                DecodedOp::Bin(..) | DecodedOp::Const(..) => assert_eq!(d.unit(pc), ExecUnit::Alu),
                _ => {}
            }
            assert_eq!(d.latency(pc), 1, "loop_fn has only unit-latency ops");
        }
    }

    #[test]
    fn structural_hash_distinguishes_programs() {
        let f = loop_fn();
        let d1 = DecodedFunction::decode(&f);
        let d2 = DecodedFunction::decode(&f);
        assert_eq!(d1.structural_hash(), d2.structural_hash(), "deterministic");
        let mut b = FunctionBuilder::new("other");
        b.output(3i64);
        b.ret(None);
        let g = b.finish().unwrap();
        assert_ne!(
            DecodedFunction::decode(&g).structural_hash(),
            d1.structural_hash()
        );
    }

    #[test]
    fn decoded_program_shares_thread0_layout() {
        let mut b = FunctionBuilder::new("t0");
        let o = b.object("a", 8);
        let p = b.lea(o, 0);
        b.ret(Some(p.into()));
        let t0 = b.finish().unwrap();
        let mut b = FunctionBuilder::new("t1");
        let o = b.object("a", 8);
        let p = b.lea(o, 1);
        b.ret(Some(p.into()));
        let t1 = b.finish().unwrap();
        let prog = DecodedProgram::decode(&[t0, t1]).unwrap();
        assert_eq!(prog.len(), 2);
        assert!(!prog.is_empty());
        let base = prog.layout().base(crate::types::ObjectId(0)) as i64;
        assert_eq!(prog.threads()[0].op(0), DecodedOp::LeaAbs(Reg(0), base));
        assert_eq!(prog.threads()[1].op(0), DecodedOp::LeaAbs(Reg(0), base + 1));
    }

    #[test]
    fn empty_program_rejected() {
        assert!(matches!(
            DecodedProgram::decode(&[]),
            Err(ExecError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unterminated_blocks_get_placeholder_slots() {
        let mut f = Function::new("u");
        let e = f.entry();
        f.push_instr(e, Op::Nop);
        let d = DecodedFunction::decode(&f);
        assert_eq!(d.num_slots(), 2);
        assert_eq!(d.op(1), DecodedOp::Unterminated);
    }
}
