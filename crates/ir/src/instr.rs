//! Instruction definitions and operand queries.

use crate::types::{AddrMode, BinOp, BlockId, ObjectId, Operand, QueueId, Reg, UnOp};
use std::fmt;

/// An instruction opcode with its operands.
///
/// The IR is a low-level, assembly-style representation in the spirit of
/// the VELOCITY compiler's IR: virtual registers, explicit loads/stores,
/// explicit branches, plus the `produce`/`consume` communication
/// primitives of the synchronization-array ISA extension that MTCG
/// inserts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `dst = imm`.
    Const(Reg, i64),
    /// `dst = &object + offset` — materialize the address of a named
    /// memory object. The only way pointers are born, which is what
    /// makes points-to analysis precise on this IR.
    Lea(Reg, ObjectId, i64),
    /// `dst = lhs <op> rhs`.
    Bin(BinOp, Reg, Operand, Operand),
    /// `dst = <op> src`.
    Un(UnOp, Reg, Operand),
    /// `dst = mem[addr]`.
    Load(Reg, AddrMode),
    /// `mem[addr] = value`.
    Store(AddrMode, Operand),
    /// Conditional branch: to `then_bb` if `cond != 0`, else `else_bb`.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Target when `cond != 0`.
        then_bb: BlockId,
        /// Target when `cond == 0`.
        else_bb: BlockId,
    },
    /// Unconditional jump.
    Jump(BlockId),
    /// Return from the function with an optional value.
    Ret(Option<Operand>),
    /// Emit `value` to the observable output trace. Ordered like a
    /// store (it aliases all other `Output`s), so multi-threaded code
    /// preserves the sequential output order — the correctness oracle.
    Output(Operand),
    /// Send a register value into queue `queue` (blocking when full).
    Produce {
        /// Destination queue.
        queue: QueueId,
        /// Value sent.
        value: Operand,
    },
    /// Receive a value from queue `queue` into `dst` (blocking when
    /// empty).
    Consume {
        /// Destination register.
        dst: Reg,
        /// Source queue.
        queue: QueueId,
    },
    /// Send a synchronization token (memory dependence). Has *release*
    /// semantics: prior memory operations of this thread are ordered
    /// before it.
    ProduceSync {
        /// Destination queue.
        queue: QueueId,
    },
    /// Receive a synchronization token (memory dependence). Has
    /// *acquire* semantics: later memory operations of this thread are
    /// ordered after it.
    ConsumeSync {
        /// Source queue.
        queue: QueueId,
    },
    /// No operation.
    Nop,
}

impl Op {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Op::Const(d, _)
            | Op::Lea(d, _, _)
            | Op::Bin(_, d, _, _)
            | Op::Un(_, d, _)
            | Op::Load(d, _)
            | Op::Consume { dst: d, .. } => Some(d),
            _ => None,
        }
    }

    /// Appends the registers used by this instruction to `out`.
    pub fn uses_into(&self, out: &mut Vec<Reg>) {
        fn push_operand(out: &mut Vec<Reg>, o: Operand) {
            if let Operand::Reg(r) = o {
                out.push(r);
            }
        }
        match *self {
            Op::Bin(_, _, a, b) => {
                push_operand(out, a);
                push_operand(out, b);
            }
            Op::Un(_, _, a) | Op::Ret(Some(a)) | Op::Output(a) | Op::Produce { value: a, .. } => {
                push_operand(out, a)
            }
            Op::Load(_, addr) => out.push(addr.base),
            Op::Store(addr, v) => {
                out.push(addr.base);
                push_operand(out, v);
            }
            Op::Branch { cond, .. } => out.push(cond),
            Op::Const(..)
            | Op::Lea(..)
            | Op::Jump(_)
            | Op::Ret(None)
            | Op::Consume { .. }
            | Op::ProduceSync { .. }
            | Op::ConsumeSync { .. }
            | Op::Nop => {}
        }
    }

    /// The registers used by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }

    /// Whether this instruction reads memory.
    pub fn is_mem_read(&self) -> bool {
        matches!(self, Op::Load(..))
    }

    /// Whether this instruction writes memory (or, like [`Op::Output`],
    /// is ordered as if it did).
    pub fn is_mem_write(&self) -> bool {
        matches!(self, Op::Store(..) | Op::Output(_))
    }

    /// Whether this instruction participates in memory ordering.
    pub fn is_mem_op(&self) -> bool {
        self.is_mem_read() || self.is_mem_write()
    }

    /// Whether this is a block terminator ([`Op::Branch`], [`Op::Jump`],
    /// or [`Op::Ret`]).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Branch { .. } | Op::Jump(_) | Op::Ret(_))
    }

    /// Whether this is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Branch { .. })
    }

    /// Whether this is one of the communication primitives inserted by
    /// MTCG (`produce`, `consume`, and the `.sync` variants).
    pub fn is_communication(&self) -> bool {
        matches!(
            self,
            Op::Produce { .. } | Op::Consume { .. } | Op::ProduceSync { .. } | Op::ConsumeSync { .. }
        )
    }

    /// The queue referenced by a communication instruction.
    pub fn queue(&self) -> Option<QueueId> {
        match *self {
            Op::Produce { queue, .. }
            | Op::Consume { queue, .. }
            | Op::ProduceSync { queue }
            | Op::ConsumeSync { queue } => Some(queue),
            _ => None,
        }
    }

    /// Successor blocks if this is a terminator (taken target first).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Op::Branch { then_bb, else_bb, .. } => {
                if then_bb == else_bb {
                    vec![then_bb]
                } else {
                    vec![then_bb, else_bb]
                }
            }
            Op::Jump(t) => vec![t],
            _ => Vec::new(),
        }
    }

    /// Rewrites branch/jump targets through `map`. Used by MTCG when
    /// relocating terminators into per-thread CFGs.
    pub fn retarget(&mut self, map: impl Fn(BlockId) -> BlockId) {
        match self {
            Op::Branch { then_bb, else_bb, .. } => {
                *then_bb = map(*then_bb);
                *else_bb = map(*else_bb);
            }
            Op::Jump(t) => *t = map(*t),
            _ => {}
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const(d, v) => write!(f, "{d} = const {v}"),
            Op::Lea(d, o, off) => write!(f, "{d} = lea {o:?}+{off}"),
            Op::Bin(op, d, a, b) => write!(f, "{d} = {op:?} {a}, {b}"),
            Op::Un(op, d, a) => write!(f, "{d} = {op:?} {a}"),
            Op::Load(d, a) => write!(f, "{d} = load {a:?}"),
            Op::Store(a, v) => write!(f, "store {a:?} = {v}"),
            Op::Branch { cond, then_bb, else_bb } => {
                write!(f, "br {cond} ? {then_bb} : {else_bb}")
            }
            Op::Jump(t) => write!(f, "jump {t}"),
            Op::Ret(Some(v)) => write!(f, "ret {v}"),
            Op::Ret(None) => write!(f, "ret"),
            Op::Output(v) => write!(f, "output {v}"),
            Op::Produce { queue, value } => write!(f, "produce {queue:?} = {value}"),
            Op::Consume { dst, queue } => write!(f, "{dst} = consume {queue:?}"),
            Op::ProduceSync { queue } => write!(f, "produce.sync {queue:?}"),
            Op::ConsumeSync { queue } => write!(f, "consume.sync {queue:?}"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let op = Op::Bin(BinOp::Add, Reg(2), Reg(0).into(), Reg(1).into());
        assert_eq!(op.def(), Some(Reg(2)));
        assert_eq!(op.uses(), vec![Reg(0), Reg(1)]);

        let st = Op::Store(AddrMode::base(Reg(3)), Reg(4).into());
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Reg(3), Reg(4)]);

        let c = Op::Consume { dst: Reg(9), queue: QueueId(0) };
        assert_eq!(c.def(), Some(Reg(9)));
        assert!(c.uses().is_empty());
    }

    #[test]
    fn immediates_are_not_uses() {
        let op = Op::Bin(BinOp::Add, Reg(2), Reg(0).into(), Operand::Imm(5));
        assert_eq!(op.uses(), vec![Reg(0)]);
    }

    #[test]
    fn memory_classification() {
        assert!(Op::Load(Reg(0), AddrMode::base(Reg(1))).is_mem_read());
        assert!(Op::Store(AddrMode::base(Reg(1)), Operand::Imm(0)).is_mem_write());
        assert!(Op::Output(Operand::Imm(1)).is_mem_write());
        assert!(!Op::Nop.is_mem_op());
    }

    #[test]
    fn terminator_successors() {
        let br = Op::Branch { cond: Reg(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(br.is_terminator() && br.is_branch());
        let same = Op::Branch { cond: Reg(0), then_bb: BlockId(3), else_bb: BlockId(3) };
        assert_eq!(same.successors(), vec![BlockId(3)]);
        assert_eq!(Op::Jump(BlockId(4)).successors(), vec![BlockId(4)]);
        assert!(Op::Ret(None).successors().is_empty());
        assert!(Op::Ret(None).is_terminator());
    }

    #[test]
    fn communication_classification() {
        let p = Op::Produce { queue: QueueId(3), value: Reg(1).into() };
        assert!(p.is_communication());
        assert_eq!(p.queue(), Some(QueueId(3)));
        assert!(!Op::Nop.is_communication());
        assert!(Op::ProduceSync { queue: QueueId(0) }.is_communication());
    }

    #[test]
    fn retarget_rewrites_branches() {
        let mut br = Op::Branch { cond: Reg(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        br.retarget(|b| BlockId(b.0 + 10));
        assert_eq!(br.successors(), vec![BlockId(11), BlockId(12)]);
        let mut j = Op::Jump(BlockId(0));
        j.retarget(|_| BlockId(7));
        assert_eq!(j.successors(), vec![BlockId(7)]);
    }

    #[test]
    fn display_round_trips_key_shapes() {
        assert_eq!(
            Op::Bin(BinOp::Add, Reg(2), Reg(0).into(), Operand::Imm(1)).to_string(),
            "r2 = Add r0, 1"
        );
        assert_eq!(Op::ProduceSync { queue: QueueId(5) }.to_string(), "produce.sync q5");
    }
}
