//! Edge profiles: execution frequencies for CFG arcs and blocks.

use crate::function::Function;
use crate::types::BlockId;
use std::collections::HashMap;

/// An edge profile of one function: how many times each CFG arc was
/// traversed, as collected by the interpreter on a *train* input (§4 of
/// the paper: "The profiles were collected on smaller, train input
/// sets").
///
/// COCO uses these weights as the arc costs of its min-cut flow graphs;
/// the partitioners use the derived block weights for load balancing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    edges: HashMap<(BlockId, BlockId), u64>,
    entries: u64,
}

impl Profile {
    /// An empty profile (all weights zero).
    pub fn new() -> Profile {
        Profile::default()
    }

    /// A synthetic profile assigning every edge of `f` the weight `w`
    /// and entry count `w`. Useful when no training run is available
    /// (the paper notes static estimates also work \[28\]).
    pub fn uniform(f: &Function, w: u64) -> Profile {
        let mut p = Profile::new();
        p.entries = w;
        for b in f.blocks() {
            for s in f.successors(b) {
                p.edges.insert((b, s), w);
            }
        }
        p
    }

    /// Records one traversal of `from -> to`.
    pub fn count_edge(&mut self, from: BlockId, to: BlockId) {
        *self.edges.entry((from, to)).or_insert(0) += 1;
    }

    /// Records one entry into the function.
    pub fn count_entry(&mut self) {
        self.entries += 1;
    }

    /// Sets the weight of arc `from -> to` directly (used by static
    /// estimation).
    pub fn set_edge(&mut self, from: BlockId, to: BlockId, count: u64) {
        self.edges.insert((from, to), count);
    }

    /// Sets the entry count directly (used by static estimation).
    pub fn set_entries(&mut self, count: u64) {
        self.entries = count;
    }

    /// The weight of arc `from -> to` (zero if never seen).
    pub fn edge(&self, from: BlockId, to: BlockId) -> u64 {
        self.edges.get(&(from, to)).copied().unwrap_or(0)
    }

    /// How many times the function was entered.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The execution count of block `b` in `f`: entries for the entry
    /// block plus the weights of all incoming arcs.
    pub fn block_weight(&self, f: &Function, b: BlockId) -> u64 {
        let incoming: u64 = f
            .blocks()
            .map(|p| {
                // An arc exists at most once per (pred, succ) pair.
                if f.successors(p).contains(&b) {
                    self.edge(p, b)
                } else {
                    0
                }
            })
            .sum();
        if b == f.entry() {
            incoming + self.entries
        } else {
            incoming
        }
    }

    /// Block weights for all blocks of `f`, indexed by block id.
    pub fn block_weights(&self, f: &Function) -> Vec<u64> {
        f.blocks().map(|b| self.block_weight(f, b)).collect()
    }

    /// Merges another profile into this one (summing counts).
    pub fn merge(&mut self, other: &Profile) {
        self.entries += other.entries;
        for (&k, &v) in &other.edges {
            *self.edges.entry(k).or_insert(0) += v;
        }
    }

    /// Scales every count by `num/den` (rounding down, min 0). Used to
    /// mimic train-vs-ref input discrepancies in tests.
    pub fn scaled(&self, num: u64, den: u64) -> Profile {
        assert!(den > 0);
        Profile {
            entries: self.entries * num / den,
            edges: self
                .edges
                .iter()
                .map(|(&k, &v)| (k, v * num / den))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    fn diamond_fn() -> Function {
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 10i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn uniform_profile_weights() {
        let f = diamond_fn();
        let p = Profile::uniform(&f, 3);
        assert_eq!(p.edge(BlockId(0), BlockId(1)), 3);
        assert_eq!(p.block_weight(&f, f.entry()), 3);
        // Join receives both arms.
        assert_eq!(p.block_weight(&f, BlockId(3)), 6);
    }

    #[test]
    fn counting_and_merge() {
        let mut p = Profile::new();
        p.count_entry();
        p.count_edge(BlockId(0), BlockId(1));
        p.count_edge(BlockId(0), BlockId(1));
        let mut q = p.clone();
        q.merge(&p);
        assert_eq!(q.entries(), 2);
        assert_eq!(q.edge(BlockId(0), BlockId(1)), 4);
        assert_eq!(q.edge(BlockId(1), BlockId(0)), 0);
    }

    #[test]
    fn scaling() {
        let mut p = Profile::new();
        p.count_entry();
        for _ in 0..10 {
            p.count_edge(BlockId(0), BlockId(1));
        }
        let s = p.scaled(3, 2);
        assert_eq!(s.edge(BlockId(0), BlockId(1)), 15);
        assert_eq!(s.entries(), 1);
    }
}
