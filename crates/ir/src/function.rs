//! Functions: instruction arenas, basic blocks, and memory objects.

use crate::instr::Op;
use crate::types::{BlockId, InstrId, ObjectId, Reg};

/// A named memory object (array) owned by a function.
///
/// Workload kernels declare their arrays as objects; the interpreter and
/// simulator lay them out contiguously, and the alias analysis uses
/// object identity as its abstraction of memory locations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemObject {
    /// Human-readable name (for dumps and diagnostics).
    pub name: String,
    /// Size in 8-byte cells.
    pub size: u64,
}

/// A basic block: an ordered list of non-terminator instructions plus
/// exactly one terminator.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Optional label for dumps.
    pub name: String,
    /// Body instructions, in program order (no terminators).
    pub instrs: Vec<InstrId>,
    /// The terminator; `None` only while the block is under
    /// construction.
    pub terminator: Option<InstrId>,
}

impl Block {
    /// Body instructions followed by the terminator.
    pub fn all_instrs(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.instrs.iter().copied().chain(self.terminator)
    }
}

/// A function: the unit on which GMT scheduling operates.
///
/// Instructions live in an arena ([`Function::instr`]) and blocks hold
/// ids into it, so instruction identity is stable under insertion —
/// which is what lets the PDG, partitions, and communication plans refer
/// to instructions across the whole pipeline.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Registers holding the arguments on entry, in order.
    pub params: Vec<Reg>,
    blocks: Vec<Block>,
    instrs: Vec<Op>,
    instr_block: Vec<BlockId>,
    objects: Vec<MemObject>,
    num_regs: u32,
    entry: BlockId,
}

impl Function {
    /// Creates an empty function with a single unterminated entry block.
    /// Prefer [`FunctionBuilder`](crate::FunctionBuilder) for
    /// construction.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block { name: "entry".to_string(), ..Block::default() }],
            instrs: Vec::new(),
            instr_block: Vec::new(),
            objects: Vec::new(),
            num_regs: 0,
            entry: BlockId(0),
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of virtual registers allocated so far.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Size of the instruction arena (includes instructions removed from
    /// blocks; use for sizing side tables).
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// All block ids in index order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The block `b`.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// The instruction `i`.
    pub fn instr(&self, i: InstrId) -> &Op {
        &self.instrs[i.index()]
    }

    /// Mutable access to instruction `i` (used by MTCG to retarget
    /// branches).
    pub fn instr_mut(&mut self, i: InstrId) -> &mut Op {
        &mut self.instrs[i.index()]
    }

    /// The block containing instruction `i`.
    pub fn block_of(&self, i: InstrId) -> BlockId {
        self.instr_block[i.index()]
    }

    /// The memory objects of this function.
    pub fn objects(&self) -> &[MemObject] {
        &self.objects
    }

    /// The object `o`.
    pub fn object(&self, o: ObjectId) -> &MemObject {
        &self.objects[o.index()]
    }

    /// Successor blocks of `b` (empty for return blocks). Taken target
    /// first for conditional branches.
    ///
    /// # Panics
    ///
    /// Panics if `b` is unterminated.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        let term = self.block(b).terminator.expect("block must be terminated");
        self.instr(term).successors()
    }

    /// Predecessor map: for each block, the blocks that branch to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.num_blocks()];
        for b in self.blocks() {
            for s in self.successors(b) {
                if !preds[s.index()].contains(&b) {
                    preds[s.index()].push(b);
                }
            }
        }
        preds
    }

    /// All instructions of the function in layout order (blocks in index
    /// order, body then terminator).
    pub fn all_instrs(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.blocks().flat_map(move |b| {
            self.block(b)
                .instrs
                .iter()
                .copied()
                .chain(self.block(b).terminator)
                .collect::<Vec<_>>()
        })
    }

    /// Reverse post-order of the CFG from the entry block. Unreachable
    /// blocks are appended at the end in index order.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.num_blocks();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for b in self.blocks() {
            if !visited[b.index()] {
                post.push(b);
            }
        }
        post
    }

    // ---- mutation API (used by the builder and MTCG) ----

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Notes that register `r` exists (raises the register count).
    pub fn ensure_reg(&mut self, r: Reg) {
        self.num_regs = self.num_regs.max(r.0 + 1);
    }

    /// Adds a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { name: name.into(), ..Block::default() });
        id
    }

    /// Declares a memory object of `size` cells.
    pub fn add_object(&mut self, name: impl Into<String>, size: u64) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(MemObject { name: name.into(), size });
        id
    }

    /// Appends a non-terminator instruction to block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a terminator or if `b` is already terminated.
    pub fn push_instr(&mut self, b: BlockId, op: Op) -> InstrId {
        assert!(!op.is_terminator(), "use set_terminator for {op}");
        assert!(self.blocks[b.index()].terminator.is_none(), "block {b:?} already terminated");
        let id = self.intern(b, op);
        self.blocks[b.index()].instrs.push(id);
        id
    }

    /// Sets the terminator of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a terminator or `b` already has one.
    pub fn set_terminator(&mut self, b: BlockId, op: Op) -> InstrId {
        assert!(op.is_terminator(), "{op} is not a terminator");
        assert!(self.blocks[b.index()].terminator.is_none(), "block {b:?} already terminated");
        let id = self.intern(b, op);
        self.blocks[b.index()].terminator = Some(id);
        id
    }

    /// Inserts `op` into `b` immediately before `before`. If `before` is
    /// the terminator, the instruction becomes the last body
    /// instruction.
    ///
    /// # Panics
    ///
    /// Panics if `before` is not in `b` or `op` is a terminator.
    pub fn insert_before(&mut self, b: BlockId, before: InstrId, op: Op) -> InstrId {
        assert!(!op.is_terminator());
        let id = self.intern(b, op);
        let block = &mut self.blocks[b.index()];
        if block.terminator == Some(before) {
            block.instrs.push(id);
        } else {
            let pos = block
                .instrs
                .iter()
                .position(|&i| i == before)
                .unwrap_or_else(|| panic!("{before:?} not in {b:?}"));
            block.instrs.insert(pos, id);
        }
        id
    }

    /// Inserts `op` into `b` immediately after `after`.
    ///
    /// # Panics
    ///
    /// Panics if `after` is a terminator or not in `b`, or if `op` is a
    /// terminator.
    pub fn insert_after(&mut self, b: BlockId, after: InstrId, op: Op) -> InstrId {
        assert!(!op.is_terminator());
        let id = self.intern(b, op);
        let block = &mut self.blocks[b.index()];
        assert_ne!(block.terminator, Some(after), "cannot insert after a terminator");
        let pos = block
            .instrs
            .iter()
            .position(|&i| i == after)
            .unwrap_or_else(|| panic!("{after:?} not in {b:?}"));
        block.instrs.insert(pos + 1, id);
        id
    }

    /// Inserts `op` as the first instruction of block `b`.
    pub fn insert_at_start(&mut self, b: BlockId, op: Op) -> InstrId {
        assert!(!op.is_terminator());
        let id = self.intern(b, op);
        self.blocks[b.index()].instrs.insert(0, id);
        id
    }

    fn intern(&mut self, b: BlockId, op: Op) -> InstrId {
        if let Some(d) = op.def() {
            self.ensure_reg(d);
        }
        let id = InstrId(self.instrs.len() as u32);
        self.instrs.push(op);
        self.instr_block.push(b);
        id
    }

    /// Replaces the terminator of `b` with `op` (same arity rules as
    /// [`Function::set_terminator`]). Used by MTCG's branch-target fixing.
    pub fn replace_terminator(&mut self, b: BlockId, op: Op) -> InstrId {
        assert!(op.is_terminator());
        self.blocks[b.index()].terminator = None;
        self.set_terminator(b, op)
    }

    /// Total number of instructions currently placed in blocks.
    pub fn placed_instr_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.instrs.len() + usize::from(b.terminator.is_some()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Operand;

    fn two_block_fn() -> Function {
        let mut f = Function::new("t");
        let entry = f.entry();
        let exit = f.add_block("exit");
        let r0 = f.fresh_reg();
        f.push_instr(entry, Op::Const(r0, 1));
        f.set_terminator(entry, Op::Jump(exit));
        f.set_terminator(exit, Op::Ret(Some(Operand::Reg(r0))));
        f
    }

    #[test]
    fn construction_and_queries() {
        let f = two_block_fn();
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.successors(f.entry()), vec![BlockId(1)]);
        assert_eq!(f.predecessors()[1], vec![f.entry()]);
        assert_eq!(f.placed_instr_count(), 3);
        let first = f.block(f.entry()).instrs[0];
        assert_eq!(f.block_of(first), f.entry());
    }

    #[test]
    fn insert_before_and_after_preserve_order() {
        let mut f = two_block_fn();
        let entry = f.entry();
        let first = f.block(entry).instrs[0];
        let a = f.insert_before(entry, first, Op::Nop);
        let b = f.insert_after(entry, first, Op::Nop);
        assert_eq!(f.block(entry).instrs, vec![a, first, b]);
        // Insert before the terminator appends to the body.
        let term = f.block(entry).terminator.unwrap();
        let c = f.insert_before(entry, term, Op::Nop);
        assert_eq!(f.block(entry).instrs, vec![a, first, b, c]);
        let d = f.insert_at_start(entry, Op::Nop);
        assert_eq!(f.block(entry).instrs[0], d);
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let f = two_block_fn();
        let rpo = f.reverse_post_order();
        assert_eq!(rpo, vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn rpo_includes_unreachable_blocks_last() {
        let mut f = two_block_fn();
        let orphan = f.add_block("orphan");
        f.set_terminator(orphan, Op::Ret(None));
        let rpo = f.reverse_post_order();
        assert_eq!(rpo.last(), Some(&orphan));
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_rejected() {
        let mut f = two_block_fn();
        let e = f.entry();
        f.set_terminator(e, Op::Ret(None));
    }

    #[test]
    #[should_panic(expected = "use set_terminator")]
    fn push_rejects_terminators() {
        let mut f = Function::new("t");
        let e = f.entry();
        f.push_instr(e, Op::Ret(None));
    }

    #[test]
    fn fresh_regs_are_distinct() {
        let mut f = Function::new("t");
        let a = f.fresh_reg();
        let b = f.fresh_reg();
        assert_ne!(a, b);
        assert_eq!(f.num_regs(), 2);
        f.ensure_reg(Reg(10));
        assert_eq!(f.num_regs(), 11);
    }

    #[test]
    fn objects_are_recorded() {
        let mut f = Function::new("t");
        let o = f.add_object("arr", 64);
        assert_eq!(f.object(o).size, 64);
        assert_eq!(f.objects().len(), 1);
    }

    #[test]
    fn all_instrs_covers_blocks_in_order() {
        let f = two_block_fn();
        let ids: Vec<_> = f.all_instrs().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(f.block_of(ids[0]), BlockId(0));
        assert_eq!(f.block_of(ids[2]), BlockId(1));
    }
}
