//! A single-threaded interpreter: the functional reference semantics,
//! the edge profiler, and the dynamic-instruction counter.
//!
//! [`run`] executes through the pre-decoded flat instruction stream
//! ([`crate::decoded`]); [`run_reference`] keeps the original
//! ID-walking execution loop, which the `decoded_equivalence` tests
//! hold byte-identical to the decoded path.

use crate::decoded::{DecodedFunction, DecodedThread};
use crate::function::Function;
use crate::instr::Op;
use crate::profile::Profile;
use crate::types::{AddrMode, InstrId, ObjectId, Operand, QueueId, Reg};
use std::error::Error;
use std::fmt;

/// Interpreter limits.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Maximum dynamic instructions before the run is aborted with
    /// [`ExecError::OutOfFuel`].
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { max_steps: 500_000_000 }
    }
}

/// The memory layout of a function's objects: each object is placed at
/// a fixed base address in one flat cell array, in declaration order,
/// with a one-cell red zone between objects so off-by-one indexing is
/// caught rather than silently corrupting a neighbor.
#[derive(Clone, Debug)]
pub struct MemoryLayout {
    bases: Vec<u64>,
    total: u64,
}

/// Largest layout (in cells) any executor will materialize. Untrusted
/// object tables — a parsed function can declare sizes up to
/// `u64::MAX` — must produce [`ExecError::InvalidConfig`] rather than
/// an allocation abort, so every run path checks against this budget
/// before touching the allocator.
pub const MAX_MEMORY_CELLS: u64 = 1 << 30;

impl MemoryLayout {
    /// Computes the layout of `f`'s objects. Address arithmetic
    /// saturates: an object table whose total overflows `u64` yields a
    /// layout over [`MAX_MEMORY_CELLS`], which every executor rejects
    /// as [`ExecError::InvalidConfig`] at memory-creation time.
    pub fn of(f: &Function) -> MemoryLayout {
        let mut bases = Vec::with_capacity(f.objects().len());
        // Address 0 is reserved so a zero "null" base faults.
        let mut next = 1u64;
        for obj in f.objects() {
            bases.push(next);
            // +1 red-zone cell (also keeps zero-sized objects at
            // distinct addresses).
            next = next.saturating_add(obj.size).saturating_add(1);
        }
        MemoryLayout { bases, total: next }
    }

    /// Base address of object `o`.
    pub fn base(&self, o: ObjectId) -> u64 {
        self.bases[o.index()]
    }

    /// Total number of cells (including red zones).
    pub fn total_cells(&self) -> u64 {
        self.total
    }
}

/// Flat data memory shared by all threads of a run.
#[derive(Clone, Debug)]
pub struct Memory {
    cells: Vec<i64>,
}

impl Memory {
    /// Zero-initialized memory sized for `layout`.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidConfig`] when the layout exceeds
    /// [`MAX_MEMORY_CELLS`] (including the saturated total of an
    /// overflowing object table) — the typed rejection for hostile
    /// object sizes.
    pub fn for_layout(layout: &MemoryLayout) -> Result<Memory, ExecError> {
        let total = layout.total_cells();
        if total > MAX_MEMORY_CELLS {
            return Err(ExecError::InvalidConfig(format!(
                "memory layout of {total} cells exceeds the executor budget of {MAX_MEMORY_CELLS}"
            )));
        }
        Ok(Memory { cells: vec![0; total as usize] })
    }

    /// Reads the cell at `addr`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if out of bounds.
    pub fn read(&self, addr: i64) -> Result<i64, ExecError> {
        self.cells
            .get(usize::try_from(addr).map_err(|_| ExecError::MemoryFault { addr })?)
            .copied()
            .ok_or(ExecError::MemoryFault { addr })
    }

    /// Writes the cell at `addr`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if out of bounds.
    pub fn write(&mut self, addr: i64, value: i64) -> Result<(), ExecError> {
        let idx = usize::try_from(addr).map_err(|_| ExecError::MemoryFault { addr })?;
        match self.cells.get_mut(idx) {
            Some(cell) => {
                *cell = value;
                Ok(())
            }
            None => Err(ExecError::MemoryFault { addr }),
        }
    }

    /// Bulk view of the cells (for workload initialization).
    pub fn cells_mut(&mut self) -> &mut [i64] {
        &mut self.cells
    }

    /// Read-only view of the cells.
    pub fn cells(&self) -> &[i64] {
        &self.cells
    }
}

/// The kind of queue operation a deadlocked thread was blocked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockedOp {
    /// A `produce`/`produce.sync` found its queue full.
    ProduceFull,
    /// A `consume`/`consume.sync` waited on an empty queue.
    ConsumeEmpty,
}

impl BlockedOp {
    /// Stable kebab-case label used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            BlockedOp::ProduceFull => "produce-full",
            BlockedOp::ConsumeEmpty => "consume-empty",
        }
    }
}

/// Where a multi-threaded deadlock was detected: the first blocked
/// unfinished core in index order, the queue its stalled operation
/// addresses, and the blocking direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// The blocked core (thread index).
    pub core: usize,
    /// The queue the blocking operation addresses.
    pub queue: QueueId,
    /// Whether the core was producing into a full queue or consuming
    /// from an empty one.
    pub op: BlockedOp,
}

/// Dynamic-execution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget ran out (probable infinite loop).
    OutOfFuel,
    /// An out-of-bounds memory access.
    MemoryFault {
        /// The faulting address.
        addr: i64,
    },
    /// A communication instruction was executed outside a
    /// multi-threaded run (single-threaded code must not contain
    /// produce/consume).
    CommunicationOutsideMt(InstrId),
    /// Fewer arguments than parameters were supplied.
    MissingArguments,
    /// Multi-threaded execution deadlocked: every unfinished thread is
    /// blocked on a queue. The payload (when attributable) names the
    /// first blocked core, its queue, and the blocking op kind.
    Deadlock(Option<DeadlockInfo>),
    /// A queue id outside the configured queue count was referenced.
    BadQueue(InstrId),
    /// The run was configured with values the executor cannot model
    /// (no threads, a zero-way cache, a zero-width core, ...). The
    /// string names the offending parameter.
    InvalidConfig(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "execution exceeded the step budget"),
            ExecError::MemoryFault { addr } => write!(f, "memory fault at address {addr}"),
            ExecError::CommunicationOutsideMt(i) => {
                write!(f, "communication instruction {i:?} in single-threaded run")
            }
            ExecError::MissingArguments => write!(f, "fewer arguments than parameters"),
            ExecError::Deadlock(None) => write!(f, "deadlock: all unfinished threads blocked"),
            ExecError::Deadlock(Some(d)) => write!(
                f,
                "deadlock: all unfinished threads blocked; core {} {} on queue {}",
                d.core,
                d.op.name(),
                d.queue.0
            ),
            ExecError::BadQueue(i) => write!(f, "instruction {i:?} references bad queue"),
            ExecError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for ExecError {}

/// Dynamic instruction counts of a run, split the way Figure 1 of the
/// paper splits them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynCounts {
    /// Original program ("computation") instructions.
    pub computation: u64,
    /// `produce`/`consume` register/control communication instructions.
    pub communication: u64,
    /// `produce.sync`/`consume.sync` memory synchronization
    /// instructions.
    pub synchronization: u64,
}

impl DynCounts {
    /// All dynamic instructions.
    pub fn total(&self) -> u64 {
        self.computation + self.communication + self.synchronization
    }

    /// Communication plus synchronization (the quantity Figure 7
    /// reports).
    pub fn comm_total(&self) -> u64 {
        self.communication + self.synchronization
    }

    /// Adds another count.
    pub fn add(&mut self, other: DynCounts) {
        self.computation += other.computation;
        self.communication += other.communication;
        self.synchronization += other.synchronization;
    }
}

/// The result of a single-threaded run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The value returned by `ret`, if any.
    pub return_value: Option<i64>,
    /// The observable output trace.
    pub output: Vec<i64>,
    /// Dynamic instruction counts.
    pub counts: DynCounts,
    /// The edge profile collected during the run.
    pub profile: Profile,
    /// Final memory state.
    pub memory: Memory,
}

/// Runs `f` to completion with zeroed memory.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run(f: &Function, args: &[i64], config: &ExecConfig) -> Result<RunResult, ExecError> {
    run_with_memory(f, args, |_, _| {}, config)
}

/// Runs `f` after letting `init` populate memory (given the layout).
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_with_memory(
    f: &Function,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &ExecConfig,
) -> Result<RunResult, ExecError> {
    let d = DecodedFunction::decode(f);
    run_decoded_with_memory(&d, args, init, config)
}

/// Runs an already-decoded function to completion with zeroed memory.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_decoded(
    d: &DecodedFunction,
    args: &[i64],
    config: &ExecConfig,
) -> Result<RunResult, ExecError> {
    run_decoded_with_memory(d, args, |_, _| {}, config)
}

/// Runs an already-decoded function after letting `init` populate
/// memory.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_decoded_with_memory(
    d: &DecodedFunction,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &ExecConfig,
) -> Result<RunResult, ExecError> {
    let mut memory = Memory::for_layout(d.layout())?;
    init(d.layout(), &mut memory);
    let mut state = DecodedThread::new(d, args)?;
    let mut profile = Profile::new();
    profile.count_entry();
    let mut output = Vec::new();
    let mut counts = DynCounts::default();
    let mut fuel = config.max_steps;

    loop {
        if fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        fuel -= 1;
        match state.step(d, &mut memory, &mut output, &mut NoQueues)? {
            StepOutcome::Continue => counts.computation += 1,
            StepOutcome::Blocked => unreachable!("NoQueues never blocks"),
            StepOutcome::TookEdge(from, to) => {
                counts.computation += 1;
                profile.count_edge(from, to);
            }
            StepOutcome::Returned(v) => {
                counts.computation += 1;
                return Ok(RunResult {
                    return_value: v,
                    output,
                    counts,
                    profile,
                    memory,
                });
            }
        }
    }
}

/// The ID-walking reference executor ([`run`] without pre-decoding).
/// Kept as the semantic oracle for the decoded engine.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_reference(
    f: &Function,
    args: &[i64],
    config: &ExecConfig,
) -> Result<RunResult, ExecError> {
    run_with_memory_reference(f, args, |_, _| {}, config)
}

/// [`run_with_memory`] on the ID-walking reference path.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_with_memory_reference(
    f: &Function,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    config: &ExecConfig,
) -> Result<RunResult, ExecError> {
    let layout = MemoryLayout::of(f);
    let mut memory = Memory::for_layout(&layout)?;
    init(&layout, &mut memory);
    let mut state = ThreadState::new(f, args, &layout)?;
    let mut profile = Profile::new();
    profile.count_entry();
    let mut output = Vec::new();
    let mut counts = DynCounts::default();
    let mut fuel = config.max_steps;

    loop {
        if fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        fuel -= 1;
        match state.step(f, &mut memory, &mut output, &mut NoQueues)? {
            StepOutcome::Continue => counts.computation += 1,
            StepOutcome::Blocked => unreachable!("NoQueues never blocks"),
            StepOutcome::TookEdge(from, to) => {
                counts.computation += 1;
                profile.count_edge(from, to);
            }
            StepOutcome::Returned(v) => {
                counts.computation += 1;
                return Ok(RunResult {
                    return_value: v,
                    output,
                    counts,
                    profile,
                    memory,
                });
            }
        }
    }
}

/// Queue access used by [`ThreadState::step`]; single-threaded runs use
/// [`NoQueues`], the multi-threaded interpreter supplies real queues.
pub(crate) trait QueueAccess {
    /// Attempts to push; `Ok(true)` on success, `Ok(false)` when full.
    fn try_produce(&mut self, queue: usize, value: i64) -> Result<bool, ExecError>;
    /// Attempts to pop; `Ok(Some(v))` on success, `Ok(None)` when empty.
    fn try_consume(&mut self, queue: usize) -> Result<Option<i64>, ExecError>;
}

/// Queue access that rejects all communication (single-threaded runs).
pub(crate) struct NoQueues;

impl QueueAccess for NoQueues {
    fn try_produce(&mut self, _q: usize, _v: i64) -> Result<bool, ExecError> {
        Err(ExecError::CommunicationOutsideMt(InstrId(u32::MAX)))
    }
    fn try_consume(&mut self, _q: usize) -> Result<Option<i64>, ExecError> {
        Err(ExecError::CommunicationOutsideMt(InstrId(u32::MAX)))
    }
}

/// What one interpreter step did.
pub(crate) enum StepOutcome {
    /// Executed a straight-line instruction.
    Continue,
    /// Executed a terminator, traversing the given CFG edge.
    TookEdge(crate::types::BlockId, crate::types::BlockId),
    /// Blocked on a queue; the program counter did not advance.
    Blocked,
    /// Executed `ret`.
    Returned(Option<i64>),
}

/// Architectural state of one thread. Borrows the run's shared
/// [`MemoryLayout`] rather than cloning it per thread.
pub(crate) struct ThreadState<'a> {
    regs: Vec<i64>,
    block: crate::types::BlockId,
    /// Index into the block: `< len` body, `== len` terminator.
    pos: usize,
    layout: &'a MemoryLayout,
}

impl<'a> ThreadState<'a> {
    pub(crate) fn new(
        f: &Function,
        args: &[i64],
        layout: &'a MemoryLayout,
    ) -> Result<ThreadState<'a>, ExecError> {
        if args.len() < f.params.len() {
            return Err(ExecError::MissingArguments);
        }
        let mut regs = vec![0i64; f.num_regs() as usize];
        for (r, &v) in f.params.iter().zip(args) {
            regs[r.index()] = v;
        }
        Ok(ThreadState { regs, block: f.entry(), pos: 0, layout })
    }

    fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    fn operand(&self, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }

    fn addr(&self, a: AddrMode) -> i64 {
        self.reg(a.base).wrapping_add(a.offset)
    }

    /// Executes one instruction (or reports a queue block).
    pub(crate) fn step(
        &mut self,
        f: &Function,
        memory: &mut Memory,
        output: &mut Vec<i64>,
        queues: &mut dyn QueueAccess,
    ) -> Result<StepOutcome, ExecError> {
        let instr_id = self.current_instr(f)?;
        match *f.instr(instr_id) {
            Op::Const(d, v) => {
                self.regs[d.index()] = v;
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Lea(d, obj, off) => {
                self.regs[d.index()] = self.layout.base(obj) as i64 + off;
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Bin(op, d, a, b) => {
                self.regs[d.index()] = op.eval(self.operand(a), self.operand(b));
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Un(op, d, a) => {
                self.regs[d.index()] = op.eval(self.operand(a));
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Load(d, a) => {
                self.regs[d.index()] = memory.read(self.addr(a))?;
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Store(a, v) => {
                memory.write(self.addr(a), self.operand(v))?;
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Output(v) => {
                output.push(self.operand(v));
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
            Op::Branch { cond, then_bb, else_bb } => {
                let from = self.block;
                let to = if self.reg(cond) != 0 { then_bb } else { else_bb };
                self.block = to;
                self.pos = 0;
                Ok(StepOutcome::TookEdge(from, to))
            }
            Op::Jump(t) => {
                let from = self.block;
                self.block = t;
                self.pos = 0;
                Ok(StepOutcome::TookEdge(from, t))
            }
            Op::Ret(v) => Ok(StepOutcome::Returned(v.map(|o| self.operand(o)))),
            Op::Produce { queue, value } => {
                let v = self.operand(value);
                if queues.try_produce(queue.index(), v).map_err(|e| retag(e, instr_id))? {
                    self.pos += 1;
                    Ok(StepOutcome::Continue)
                } else {
                    Ok(StepOutcome::Blocked)
                }
            }
            Op::Consume { dst, queue } => {
                match queues.try_consume(queue.index()).map_err(|e| retag(e, instr_id))? {
                    Some(v) => {
                        self.regs[dst.index()] = v;
                        self.pos += 1;
                        Ok(StepOutcome::Continue)
                    }
                    None => Ok(StepOutcome::Blocked),
                }
            }
            Op::ProduceSync { queue } => {
                if queues.try_produce(queue.index(), 1).map_err(|e| retag(e, instr_id))? {
                    self.pos += 1;
                    Ok(StepOutcome::Continue)
                } else {
                    Ok(StepOutcome::Blocked)
                }
            }
            Op::ConsumeSync { queue } => {
                match queues.try_consume(queue.index()).map_err(|e| retag(e, instr_id))? {
                    Some(_) => {
                        self.pos += 1;
                        Ok(StepOutcome::Continue)
                    }
                    None => Ok(StepOutcome::Blocked),
                }
            }
            Op::Nop => {
                self.pos += 1;
                Ok(StepOutcome::Continue)
            }
        }
    }

    /// The instruction the thread will execute next.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidConfig`] when control sits at the end of a
    /// block with no terminator — an unverified function handed
    /// straight to the executor instead of a panic.
    pub(crate) fn current_instr(&self, f: &Function) -> Result<InstrId, ExecError> {
        let block = f.block(self.block);
        if self.pos < block.instrs.len() {
            Ok(block.instrs[self.pos])
        } else {
            block.terminator.ok_or_else(|| unterminated(self.block))
        }
    }
}

/// The typed rejection for reaching the end of a terminator-less block
/// (only possible on functions that never passed [`crate::verify`]).
pub fn unterminated(b: crate::types::BlockId) -> ExecError {
    ExecError::InvalidConfig(format!("block {b:?} has no terminator (function not verified)"))
}

fn retag(e: ExecError, instr: InstrId) -> ExecError {
    match e {
        ExecError::CommunicationOutsideMt(_) => ExecError::CommunicationOutsideMt(instr),
        ExecError::BadQueue(_) => ExecError::BadQueue(instr),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, QueueId};

    #[test]
    fn profile_matches_trip_counts() {
        // Loop of 7 iterations.
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let header = b.block("h");
        let body = b.block("b");
        let exit = b.block("x");
        b.const_into(i, 0);
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, 7i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let r = run(&f, &[], &ExecConfig::default()).unwrap();
        use crate::types::BlockId;
        assert_eq!(r.profile.edge(BlockId(1), BlockId(2)), 7);
        assert_eq!(r.profile.edge(BlockId(1), BlockId(3)), 1);
        assert_eq!(r.profile.edge(BlockId(2), BlockId(1)), 7);
        assert_eq!(r.profile.block_weight(&f, BlockId(1)), 8);
    }

    #[test]
    fn output_trace_is_ordered() {
        let mut b = FunctionBuilder::new("o");
        b.output(1i64);
        b.output(2i64);
        b.output(3i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let r = run(&f, &[], &ExecConfig::default()).unwrap();
        assert_eq!(r.output, vec![1, 2, 3]);
        assert_eq!(r.counts.computation, 4);
        assert_eq!(r.counts.comm_total(), 0);
    }

    #[test]
    fn out_of_fuel_detected() {
        let mut b = FunctionBuilder::new("spin");
        let header = b.block("h");
        let exit = b.block("x");
        let z = b.const_(0);
        b.jump(header);
        b.switch_to(header);
        let one = b.bin(BinOp::Eq, z, 0i64);
        b.branch(one, header, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let err = run(&f, &[], &ExecConfig { max_steps: 100 }).unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    /// A memory layout whose object sizes overflow or exceed the
    /// executor budget is rejected with a typed error, not an OOM abort
    /// or an arithmetic panic.
    #[test]
    fn oversized_memory_layout_rejected() {
        let mut b = FunctionBuilder::new("huge");
        b.object("a", u64::MAX - 1);
        b.object("b", u64::MAX - 1); // total saturates instead of overflowing
        b.ret(None);
        let f = b.finish().unwrap();
        let err = run(&f, &[], &ExecConfig::default()).unwrap_err();
        assert!(
            matches!(&err, ExecError::InvalidConfig(m) if m.contains("budget")),
            "{err:?}"
        );

        // Just over the budget, no overflow involved.
        let mut b = FunctionBuilder::new("big");
        b.object("a", MAX_MEMORY_CELLS);
        b.ret(None);
        let f = b.finish().unwrap();
        let err = run(&f, &[], &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InvalidConfig(_)), "{err:?}");
    }

    /// An unverified function whose entry block lacks a terminator is a
    /// typed error from the single-threaded engines, not a panic.
    #[test]
    fn unterminated_block_is_typed_error() {
        let b = FunctionBuilder::new("stub");
        let f = b.finish_unverified();
        let err = run(&f, &[], &ExecConfig::default()).unwrap_err();
        assert!(
            matches!(&err, ExecError::InvalidConfig(m) if m.contains("terminator")),
            "decoded: {err:?}"
        );
        let err = run_reference(&f, &[], &ExecConfig::default()).unwrap_err();
        assert!(
            matches!(&err, ExecError::InvalidConfig(m) if m.contains("terminator")),
            "reference: {err:?}"
        );
    }

    #[test]
    fn memory_fault_on_wild_address() {
        let mut b = FunctionBuilder::new("wild");
        let p = b.const_(999_999);
        let v = b.load(p, 0);
        b.ret(Some(v.into()));
        let f = b.finish().unwrap();
        let err = run(&f, &[], &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::MemoryFault { .. }));
    }

    #[test]
    fn negative_address_faults() {
        let mut b = FunctionBuilder::new("neg");
        let p = b.const_(-5);
        b.store(p, 0, 1i64);
        b.ret(None);
        let f = b.finish().unwrap();
        assert!(matches!(
            run(&f, &[], &ExecConfig::default()),
            Err(ExecError::MemoryFault { addr: -5 })
        ));
    }

    #[test]
    fn communication_rejected_single_threaded() {
        let mut b = FunctionBuilder::new("comm");
        b.emit(Op::ProduceSync { queue: QueueId(0) });
        b.ret(None);
        let f = b.finish().unwrap();
        assert!(matches!(
            run(&f, &[], &ExecConfig::default()),
            Err(ExecError::CommunicationOutsideMt(_))
        ));
    }

    #[test]
    fn missing_arguments_detected() {
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        b.ret(Some(x.into()));
        let f = b.finish().unwrap();
        assert_eq!(run(&f, &[], &ExecConfig::default()).unwrap_err(), ExecError::MissingArguments);
    }

    #[test]
    fn red_zone_separates_objects() {
        let mut b = FunctionBuilder::new("rz");
        let a = b.object("a", 2);
        let c = b.object("c", 2);
        let pa = b.lea(a, 0);
        let pc = b.lea(c, 0);
        b.store(pa, 0, 11i64);
        b.store(pc, 0, 22i64);
        let va = b.load(pa, 0);
        b.ret(Some(va.into()));
        let f = b.finish().unwrap();
        let layout = MemoryLayout::of(&f);
        assert!(layout.base(crate::types::ObjectId(1)) >= layout.base(crate::types::ObjectId(0)) + 3);
        let r = run(&f, &[], &ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(11));
    }
}
