//! A low-level, register-based intermediate representation for global
//! multi-threaded (GMT) instruction scheduling, with the analyses,
//! interpreters, and profiler the rest of the toolchain builds on.
//!
//! This crate models the assembly-level IR of the VELOCITY research
//! compiler used by the DSWP/GREMIO/MTCG/COCO line of work: virtual
//! registers, explicit loads/stores against named memory objects,
//! explicit conditional branches, and the `produce`/`consume`
//! communication primitives of the synchronization-array ISA extension.
//!
//! What lives here:
//!
//! - [`Function`], [`FunctionBuilder`], [`Op`] — the IR itself;
//! - [`Dominators`], [`PostDominators`], [`ControlDeps`], [`Liveness`],
//!   [`DefUse`], [`LoopForest`] — the CFG analyses every downstream
//!   phase (PDG construction, MTCG, COCO) consumes;
//! - [`interp::run`] — the single-threaded reference interpreter, which
//!   doubles as the edge profiler;
//! - [`interp_mt::run_mt`] — the functional multi-threaded interpreter
//!   (shared memory + blocking scalar queues) used for exact dynamic
//!   instruction counting.
//!
//! # Example
//!
//! ```
//! use gmt_ir::{FunctionBuilder, BinOp, interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("double");
//! let x = b.param();
//! let d = b.bin(BinOp::Add, x, x);
//! b.ret(Some(d.into()));
//! let f = b.finish()?;
//! let result = interp::run(&f, &[21], &interp::ExecConfig::default())?;
//! assert_eq!(result.return_value, Some(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod ctrldep;
mod dataflow;
mod dom;
mod function;
mod instr;
mod loops;
mod parser;
mod printer;
mod profile;
mod static_profile;
mod transform;
mod types;
mod verify;

pub mod decoded;
pub mod interp;
pub mod interp_mt;

pub use builder::FunctionBuilder;
pub use ctrldep::{ControlDep, ControlDeps};
pub use dataflow::{BitSet, DefUse, Liveness};
pub use dom::{Dominators, PostDominators};
pub use function::{Block, Function, MemObject};
pub use instr::Op;
pub use loops::{Loop, LoopForest};
pub use parser::{parse, ParseError};
pub use printer::{display, FunctionDisplay};
pub use profile::Profile;
pub use static_profile::estimate_profile;
pub use transform::{has_critical_edges, split_critical_edges};
pub use types::{AddrMode, BinOp, BlockId, InstrId, ObjectId, Operand, QueueId, Reg, UnOp};
pub use verify::{verify, VerifyError};
