//! Natural-loop detection and the loop forest.
//!
//! GREMIO's hierarchical scheduling walks the loop forest bottom-up, and
//! DSWP's heuristics use loop depth; both come from here.

use crate::dom::Dominators;
use crate::function::Function;
use crate::types::BlockId;

/// A natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge(s)).
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub blocks: Vec<BlockId>,
    /// Parent loop index in the forest, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (outermost loop = 1).
    pub depth: u32,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, nested into a forest.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// The loops, outer loops before their inner loops.
    pub loops: Vec<Loop>,
    /// For each block, the index of its innermost containing loop.
    pub innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detects natural loops of `f` using its dominator tree. Back
    /// edges with the same header are merged into one loop.
    pub fn compute(f: &Function, dom: &Dominators) -> LoopForest {
        // Find back edges (n -> h) where h dominates n; collect bodies.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut bodies: Vec<Vec<BlockId>> = Vec::new();
        let preds = f.predecessors();
        for n in f.blocks() {
            for h in f.successors(n) {
                if !dom.dominates(h, n) {
                    continue;
                }
                let idx = match headers.iter().position(|&x| x == h) {
                    Some(i) => i,
                    None => {
                        headers.push(h);
                        bodies.push(vec![h]);
                        headers.len() - 1
                    }
                };
                // Backward walk from n to h.
                let body = &mut bodies[idx];
                let mut stack = vec![n];
                while let Some(x) = stack.pop() {
                    if body.contains(&x) {
                        continue;
                    }
                    body.push(x);
                    for &p in &preds[x.index()] {
                        stack.push(p);
                    }
                }
            }
        }
        // Nest: loop A is inside loop B if A's header is in B's body
        // (and A != B). Sort outer-first by body size (a containing loop
        // is strictly larger).
        let mut order: Vec<usize> = (0..headers.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(bodies[i].len()));
        let mut loops: Vec<Loop> = Vec::with_capacity(headers.len());
        for &i in &order {
            let mut parent: Option<usize> = None;
            let mut depth = 1;
            // The innermost already-placed loop containing this header.
            for (j, l) in loops.iter().enumerate() {
                if l.header != headers[i] && l.contains(headers[i]) && l.contains(bodies[i][0]) {
                    // candidate parent; pick the deepest.
                    if parent.is_none() || l.depth >= loops[parent.unwrap()].depth {
                        parent = Some(j);
                        depth = l.depth + 1;
                    }
                }
            }
            let mut blocks = bodies[i].clone();
            blocks.sort();
            loops.push(Loop { header: headers[i], blocks, parent, depth });
        }
        // Innermost loop per block: the deepest loop containing it.
        let mut innermost: Vec<Option<usize>> = vec![None; f.num_blocks()];
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                match innermost[b.index()] {
                    Some(prev) if loops[prev].depth >= l.depth => {}
                    _ => innermost[b.index()] = Some(li),
                }
            }
        }
        LoopForest { loops, innermost }
    }

    /// The loop-nesting depth of block `b` (0 = not in any loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost[b.index()].map_or(0, |i| self.loops[i].depth)
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_loop(&self, b: BlockId) -> Option<&Loop> {
        self.innermost[b.index()].map(|i| &self.loops[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    /// Two nested loops:
    /// B0 -> H1 -> {H2 -> {Body2 -> H2, AfterInner -> H1}, Exit}.
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("n");
        let i = b.fresh_reg();
        let j = b.fresh_reg();
        let h1 = b.block("h1");
        let h2 = b.block("h2");
        let body2 = b.block("body2");
        let after = b.block("after");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h1);
        b.switch_to(h1);
        let c1 = b.bin(BinOp::Lt, i, 3i64);
        b.branch(c1, h2, exit);
        b.switch_to(h2);
        let c2 = b.bin(BinOp::Lt, j, 3i64);
        b.branch(c2, body2, after);
        b.switch_to(body2);
        b.bin_into(BinOp::Add, j, j, 1i64);
        b.jump(h2);
        b.switch_to(after);
        b.const_into(j, 0);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h1);
        b.switch_to(exit);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn nested_loops_detected() {
        let f = nested();
        let dom = Dominators::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = forest.loops.iter().find(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.contains(BlockId(2)));
        assert!(outer.contains(BlockId(4)));
        assert!(inner.contains(BlockId(3)));
        assert!(!inner.contains(BlockId(4)));
    }

    #[test]
    fn depth_queries() {
        let f = nested();
        let dom = Dominators::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.depth_of(BlockId(0)), 0);
        assert_eq!(forest.depth_of(BlockId(1)), 1);
        assert_eq!(forest.depth_of(BlockId(3)), 2);
        assert_eq!(forest.depth_of(BlockId(5)), 0);
        assert_eq!(forest.innermost_loop(BlockId(3)).unwrap().header, BlockId(2));
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut b = FunctionBuilder::new("s");
        b.const_(1);
        b.ret(None);
        let f = b.finish().unwrap();
        let dom = Dominators::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(forest.loops.is_empty());
        assert_eq!(forest.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn self_loop_detected() {
        let mut b = FunctionBuilder::new("s");
        let i = b.fresh_reg();
        let l = b.block("l");
        let x = b.block("x");
        b.const_into(i, 0);
        b.jump(l);
        b.switch_to(l);
        b.bin_into(BinOp::Add, i, i, 1i64);
        let c = b.bin(BinOp::Lt, i, 4i64);
        b.branch(c, l, x);
        b.switch_to(x);
        b.ret(None);
        let f = b.finish().unwrap();
        let dom = Dominators::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].blocks, vec![BlockId(1)]);
    }
}
