//! A parser for the textual IR format produced by
//! [`display`](crate::display), enabling text fixtures and round-trip
//! debugging of dumped threads.

use crate::function::Function;
use crate::instr::Op;
use crate::types::{AddrMode, BinOp, BlockId, ObjectId, Operand, QueueId, Reg, UnOp};
use std::error::Error;
use std::fmt;

/// A parse failure with its (1-based) line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// Caps on parsed block and register indices. Block declarations are
/// materialized eagerly (`B5:` creates blocks 1..=5) and the register
/// count sizes the interpreter's register file, so an adversarial
/// `B99999999999:` or `r4294967295 = ...` would otherwise turn one
/// input line into a multi-gigabyte allocation.
const MAX_PARSE_BLOCKS: usize = 1 << 20;
const MAX_PARSE_REGS: u32 = 1 << 20;

/// Parses the textual form produced by [`display`](crate::display)
/// back into a [`Function`]. The result is verified.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, including functions
/// that fail structural verification.
///
/// ```
/// use gmt_ir::{FunctionBuilder, BinOp, display, parse};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FunctionBuilder::new("roundtrip");
/// let x = b.param();
/// let y = b.bin(BinOp::Mul, x, 3i64);
/// b.ret(Some(y.into()));
/// let f = b.finish()?;
/// let text = display(&f).to_string();
/// let g = parse(&text)?;
/// assert_eq!(display(&g).to_string(), text);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Function, ParseError> {
    let mut lines = text.lines().enumerate().peekable();

    // Header: `func name(r0, r1)`.
    let (ln, header) = lines
        .next()
        .ok_or(ParseError { line: 1, message: "empty input".into() })?;
    let header = header.trim();
    let rest = header
        .strip_prefix("func ")
        .ok_or(ParseError { line: ln + 1, message: "expected `func`".into() })?;
    let open = rest.find('(').ok_or(ParseError { line: ln + 1, message: "expected `(`".into() })?;
    let name = &rest[..open];
    let params_str = rest[open + 1..]
        .strip_suffix(')')
        .ok_or(ParseError { line: ln + 1, message: "expected `)`".into() })?;
    let mut f = Function::new(name);
    // The default entry block exists; blocks are declared by `Bk:` lines
    // in order, so predeclare on demand.
    for p in params_str.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let r = parse_reg(p, ln + 1)?;
        f.ensure_reg(r);
        f.params.push(r);
    }

    let mut current: Option<BlockId> = None;
    let mut declared_blocks = 1usize; // entry exists

    for (ln0, raw) in lines {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("object ") {
            // `object obj0 "name"[size]`
            let q1 = rest.find('"').ok_or(ParseError { line: ln, message: "object name".into() })?;
            let q2 = rest[q1 + 1..]
                .find('"')
                .ok_or(ParseError { line: ln, message: "object name close".into() })?
                + q1
                + 1;
            let name = &rest[q1 + 1..q2];
            let size_str = rest[q2 + 1..]
                .trim()
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or(ParseError { line: ln, message: "object size".into() })?;
            let size: u64 = size_str
                .parse()
                .map_err(|_| ParseError { line: ln, message: "object size number".into() })?;
            f.add_object(name, size);
            continue;
        }
        if line.ends_with(':') && line.starts_with('B') {
            // `B0:` or `B0 (label):`
            let body = &line[..line.len() - 1];
            let (bid_str, label) = match body.find('(') {
                Some(p) => (body[..p].trim(), body[p + 1..].trim_end_matches(')').to_string()),
                None => (body.trim(), String::new()),
            };
            let idx: usize = bid_str[1..]
                .parse()
                .map_err(|_| ParseError { line: ln, message: "block id".into() })?;
            if idx >= MAX_PARSE_BLOCKS {
                return err(ln, format!("block id B{idx} exceeds the {MAX_PARSE_BLOCKS} limit"));
            }
            while declared_blocks <= idx {
                f.add_block("");
                declared_blocks += 1;
            }
            if idx >= f.num_blocks() {
                return err(ln, "non-sequential block id");
            }
            current = Some(BlockId(idx as u32));
            // Record the label by rebuilding the name in place (blocks
            // expose name via the Block struct; we cannot mutate it
            // through the public API, so labels are cosmetic and kept
            // only when parse order matches creation order).
            let _ = label;
            continue;
        }
        // An instruction line.
        let Some(block) = current else {
            return err(ln, "instruction before any block header");
        };
        // A second terminator (or any instruction after one) would trip
        // `Function`'s construction asserts — diagnose it here instead.
        if f.block(block).terminator.is_some() {
            return err(ln, format!("block B{} already has a terminator", block.index()));
        }
        let op = parse_instr(line, ln, &mut f)?;
        if op.is_terminator() {
            // Targets may reference not-yet-declared blocks.
            for t in op.successors() {
                if t.index() >= MAX_PARSE_BLOCKS {
                    return err(
                        ln,
                        format!("block id B{} exceeds the {MAX_PARSE_BLOCKS} limit", t.index()),
                    );
                }
                while declared_blocks <= t.index() {
                    f.add_block("");
                    declared_blocks += 1;
                }
            }
            f.set_terminator(block, op);
        } else {
            f.push_instr(block, op);
        }
    }

    crate::verify(&f).map_err(|e| ParseError { line: 0, message: e.to_string() })?;
    Ok(f)
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let r = s
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .map(Reg)
        .ok_or(ParseError { line, message: format!("expected register, got `{s}`") })?;
    if r.0 >= MAX_PARSE_REGS {
        return err(line, format!("register r{} exceeds the {MAX_PARSE_REGS} limit", r.0));
    }
    Ok(r)
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    if s.starts_with('r') {
        parse_reg(s, line).map(Operand::Reg)
    } else {
        s.parse::<i64>()
            .map(Operand::Imm)
            .map_err(|_| ParseError { line, message: format!("expected operand, got `{s}`") })
    }
}

fn parse_queue(s: &str, line: usize) -> Result<QueueId, ParseError> {
    s.trim()
        .strip_prefix('q')
        .and_then(|n| n.parse().ok())
        .map(QueueId)
        .ok_or(ParseError { line, message: format!("expected queue, got `{s}`") })
}

fn parse_block_ref(s: &str, line: usize) -> Result<BlockId, ParseError> {
    s.trim()
        .strip_prefix('B')
        .and_then(|n| n.parse().ok())
        .map(BlockId)
        .ok_or(ParseError { line, message: format!("expected block, got `{s}`") })
}

fn parse_addr(s: &str, line: usize) -> Result<AddrMode, ParseError> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or(ParseError { line, message: format!("expected [addr], got `{s}`") })?;
    match inner.split_once('+') {
        Some((b, off)) => Ok(AddrMode {
            base: parse_reg(b.trim(), line)?,
            offset: off
                .trim()
                .parse()
                .map_err(|_| ParseError { line, message: "address offset".into() })?,
        }),
        None => Ok(AddrMode::base(parse_reg(inner.trim(), line)?)),
    }
}

fn bin_op_by_name(s: &str) -> Option<BinOp> {
    Some(match s {
        "Add" => BinOp::Add,
        "Sub" => BinOp::Sub,
        "Mul" => BinOp::Mul,
        "Div" => BinOp::Div,
        "Rem" => BinOp::Rem,
        "And" => BinOp::And,
        "Or" => BinOp::Or,
        "Xor" => BinOp::Xor,
        "Shl" => BinOp::Shl,
        "Shr" => BinOp::Shr,
        "Lt" => BinOp::Lt,
        "Le" => BinOp::Le,
        "Eq" => BinOp::Eq,
        "Ne" => BinOp::Ne,
        "Min" => BinOp::Min,
        "Max" => BinOp::Max,
        "FAdd" => BinOp::FAdd,
        "FSub" => BinOp::FSub,
        "FMul" => BinOp::FMul,
        "FDiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn un_op_by_name(s: &str) -> Option<UnOp> {
    Some(match s {
        "Mov" => UnOp::Mov,
        "Neg" => UnOp::Neg,
        "Not" => UnOp::Not,
        _ => return None,
    })
}

fn parse_instr(line: &str, ln: usize, f: &mut Function) -> Result<Op, ParseError> {
    // Terminators and no-destination forms first.
    if let Some(rest) = line.strip_prefix("br ") {
        // `br r1 ? B1 : B2`
        let (c, targets) = rest
            .split_once('?')
            .ok_or(ParseError { line: ln, message: "branch `?`".into() })?;
        let (t, e) = targets
            .split_once(':')
            .ok_or(ParseError { line: ln, message: "branch `:`".into() })?;
        return Ok(Op::Branch {
            cond: parse_reg(c.trim(), ln)?,
            then_bb: parse_block_ref(t, ln)?,
            else_bb: parse_block_ref(e, ln)?,
        });
    }
    if let Some(rest) = line.strip_prefix("jump ") {
        return Ok(Op::Jump(parse_block_ref(rest, ln)?));
    }
    if line == "ret" {
        return Ok(Op::Ret(None));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        return Ok(Op::Ret(Some(parse_operand(rest, ln)?)));
    }
    if let Some(rest) = line.strip_prefix("output ") {
        return Ok(Op::Output(parse_operand(rest, ln)?));
    }
    if let Some(rest) = line.strip_prefix("store ") {
        let (a, v) = rest
            .split_once('=')
            .ok_or(ParseError { line: ln, message: "store `=`".into() })?;
        return Ok(Op::Store(parse_addr(a, ln)?, parse_operand(v, ln)?));
    }
    if let Some(rest) = line.strip_prefix("produce.sync ") {
        return Ok(Op::ProduceSync { queue: parse_queue(rest, ln)? });
    }
    if let Some(rest) = line.strip_prefix("consume.sync ") {
        return Ok(Op::ConsumeSync { queue: parse_queue(rest, ln)? });
    }
    if let Some(rest) = line.strip_prefix("produce ") {
        let (q, v) = rest
            .split_once('=')
            .ok_or(ParseError { line: ln, message: "produce `=`".into() })?;
        return Ok(Op::Produce { queue: parse_queue(q, ln)?, value: parse_operand(v, ln)? });
    }
    if line == "nop" {
        return Ok(Op::Nop);
    }

    // `rN = <rhs>` forms.
    let (dst, rhs) = line
        .split_once('=')
        .ok_or(ParseError { line: ln, message: format!("unrecognized instruction `{line}`") })?;
    let dst = parse_reg(dst.trim(), ln)?;
    f.ensure_reg(dst);
    let rhs = rhs.trim();
    if let Some(rest) = rhs.strip_prefix("const ") {
        let v = rest
            .trim()
            .parse()
            .map_err(|_| ParseError { line: ln, message: "const value".into() })?;
        return Ok(Op::Const(dst, v));
    }
    if let Some(rest) = rhs.strip_prefix("lea ") {
        let (o, off) = rest
            .split_once('+')
            .ok_or(ParseError { line: ln, message: "lea `+`".into() })?;
        let obj = o
            .trim()
            .strip_prefix("obj")
            .and_then(|n| n.parse().ok())
            .map(ObjectId)
            .ok_or(ParseError { line: ln, message: "lea object".into() })?;
        let off = off
            .trim()
            .parse()
            .map_err(|_| ParseError { line: ln, message: "lea offset".into() })?;
        return Ok(Op::Lea(dst, obj, off));
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        return Ok(Op::Load(dst, parse_addr(rest, ln)?));
    }
    if let Some(rest) = rhs.strip_prefix("consume ") {
        return Ok(Op::Consume { dst, queue: parse_queue(rest, ln)? });
    }
    // `dst = Op a, b` or `dst = Op a`.
    let mut parts = rhs.splitn(2, ' ');
    let opname = parts.next().unwrap_or("");
    let args = parts.next().unwrap_or("");
    if let Some(u) = un_op_by_name(opname) {
        return Ok(Op::Un(u, dst, parse_operand(args, ln)?));
    }
    if let Some(b2) = bin_op_by_name(opname) {
        let (a, b) = args
            .split_once(',')
            .ok_or(ParseError { line: ln, message: "binary operands".into() })?;
        return Ok(Op::Bin(b2, dst, parse_operand(a, ln)?, parse_operand(b, ln)?));
    }
    err(ln, format!("unrecognized instruction `{line}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::display;
    use crate::types::BinOp;

    fn roundtrip(f: &Function) {
        let text = display(f).to_string();
        let g = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        // Labels are not preserved, so compare a label-free rendering.
        let strip = |t: &str| {
            t.lines()
                .map(|l| {
                    if l.ends_with(':') && l.starts_with('B') {
                        l.split(' ').next().unwrap().trim_end_matches(':').to_string() + ":"
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&display(&g).to_string()), strip(&text));
    }

    #[test]
    fn roundtrip_loop_with_memory() {
        let mut b = FunctionBuilder::new("k");
        let n = b.param();
        let arr = b.object("arr", 8);
        let i = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let p = b.lea(arr, 0);
        let a = b.bin(BinOp::Add, p, i);
        b.store(a, 1, i);
        let v = b.load(a, 1);
        b.output(v);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        roundtrip(&b.finish().unwrap());
    }

    #[test]
    fn roundtrip_communication_ops() {
        use crate::types::QueueId;
        let mut b = FunctionBuilder::new("comm");
        let v = b.const_(3);
        b.emit(Op::Produce { queue: QueueId(2), value: v.into() });
        let d = b.fresh_reg();
        b.emit(Op::Consume { dst: d, queue: QueueId(2) });
        b.emit(Op::ProduceSync { queue: QueueId(5) });
        b.emit(Op::ConsumeSync { queue: QueueId(5) });
        b.emit(Op::Nop);
        let neg = b.un(UnOp::Neg, d);
        b.ret(Some(neg.into()));
        roundtrip(&b.finish().unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("func f()\nB0:\n    garbage here\n").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn parse_rejects_double_terminator_without_panicking() {
        // Pre-fix this tripped `Function::set_terminator`'s assert.
        let e = parse("func f()\nB0:\n    ret\n    ret\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("already has a terminator"), "{e}");
        // Same guard for a plain instruction after the terminator.
        let e = parse("func f()\nB0:\n    ret\n    nop\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("already has a terminator"), "{e}");
    }

    #[test]
    fn parse_caps_block_and_register_indices() {
        // Pre-fix these two were allocation bombs: a block header (or a
        // jump target) materializes every block up to its index, and a
        // register definition sizes the register file.
        let e = parse("func f()\nB99999999999:\n    ret\n").unwrap_err();
        assert!(e.message.contains("block id"), "{e}");
        let e = parse("func f()\nB0:\n    jump B4000000000\n").unwrap_err();
        assert!(e.message.contains("block id"), "{e}");
        let e = parse("func f()\nB0:\n    r4294967295 = const 1\n    ret\n").unwrap_err();
        assert!(e.message.contains("register"), "{e}");
    }

    #[test]
    fn parse_rejects_unverifiable() {
        // Uses r9 without any definition.
        let text = "func f()\nB0:\n    ret r9\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("never-defined"), "{e}");
    }

    #[test]
    fn parsed_function_executes() {
        let text = "func f(r0)\nB0:\n    r1 = Mul r0, 7\n    ret r1\n";
        let f = parse(text).unwrap();
        let r = crate::interp::run(&f, &[6], &crate::interp::ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(42));
    }
}
