//! A multi-threaded functional interpreter.
//!
//! Executes the set of per-thread CFGs produced by MTCG against one
//! shared memory and a set of blocking scalar queues (the functional
//! semantics of the synchronization array). This is the tool behind
//! Figures 1 and 7: it counts dynamic computation, communication, and
//! synchronization instructions exactly, independent of timing. The
//! cycle-accurate model lives in the `gmt-sim` crate.
//!
//! Scheduling is deterministic round-robin (one instruction per
//! runnable thread per round). Any correctly synchronized program
//! produces the same memory/output/return results under every
//! interleaving; determinism here just makes tests reproducible.

use crate::decoded::{DecodedFunction, DecodedOp, DecodedProgram, DecodedThread, InstrKind};
use crate::function::Function;
use crate::instr::Op;
use crate::interp::{
    BlockedOp, DeadlockInfo, DynCounts, ExecConfig, ExecError, Memory, MemoryLayout, QueueAccess,
    StepOutcome, ThreadState,
};
use std::collections::VecDeque;

/// Queue configuration for a functional MT run.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Number of queues available.
    pub num_queues: usize,
    /// Capacity of each queue in elements (the paper: 1-element queues
    /// for GREMIO's synchronization array, 32-element for DSWP).
    pub capacity: usize,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig { num_queues: 256, capacity: 32 }
    }
}

struct Queues {
    queues: Vec<VecDeque<i64>>,
    capacity: usize,
}

impl QueueAccess for Queues {
    fn try_produce(&mut self, queue: usize, value: i64) -> Result<bool, ExecError> {
        let q = self
            .queues
            .get_mut(queue)
            .ok_or(ExecError::BadQueue(crate::types::InstrId(u32::MAX)))?;
        if q.len() >= self.capacity {
            Ok(false)
        } else {
            q.push_back(value);
            Ok(true)
        }
    }

    fn try_consume(&mut self, queue: usize) -> Result<Option<i64>, ExecError> {
        let q = self
            .queues
            .get_mut(queue)
            .ok_or(ExecError::BadQueue(crate::types::InstrId(u32::MAX)))?;
        Ok(q.pop_front())
    }
}

/// The result of a multi-threaded functional run.
#[derive(Clone, Debug)]
pub struct MtRunResult {
    /// The return value (from whichever thread returned one).
    pub return_value: Option<i64>,
    /// The merged observable output trace.
    pub output: Vec<i64>,
    /// Dynamic counts per thread.
    pub per_thread: Vec<DynCounts>,
    /// Final memory state.
    pub memory: Memory,
}

impl MtRunResult {
    /// Dynamic counts summed over all threads.
    pub fn totals(&self) -> DynCounts {
        let mut t = DynCounts::default();
        for c in &self.per_thread {
            t.add(*c);
        }
        t
    }
}

/// The queue a decoded op addresses, if it is a communication op.
fn decoded_queue_of(op: DecodedOp) -> Option<crate::types::QueueId> {
    match op {
        DecodedOp::Produce { queue, .. }
        | DecodedOp::ProduceSync { queue }
        | DecodedOp::Consume { queue, .. }
        | DecodedOp::ConsumeSync { queue } => Some(queue),
        _ => None,
    }
}

/// Rejects a queue id outside the configured queue file at load time,
/// so a misallocated program fails before any thread runs instead of
/// faulting mid-simulation.
fn check_queue_id(
    queue: Option<crate::types::QueueId>,
    num_queues: usize,
) -> Result<(), ExecError> {
    match queue {
        Some(q) if q.index() >= num_queues => Err(ExecError::InvalidConfig(format!(
            "program targets queue {} but the configuration has {num_queues} queues",
            q.0
        ))),
        _ => Ok(()),
    }
}

/// Runs `threads` concurrently against one shared memory.
///
/// All threads receive the same `args`. Memory is laid out from
/// `threads[0]`'s object table (MTCG copies the object table into every
/// thread, so they agree) and initialized by `init`.
///
/// # Errors
///
/// - [`ExecError::InvalidConfig`] if `threads` is empty.
/// - [`ExecError::Deadlock`] if every unfinished thread is blocked.
/// - [`ExecError::OutOfFuel`] if total steps exceed
///   `config.max_steps`.
/// - Any per-instruction fault ([`ExecError::MemoryFault`], ...).
pub fn run_mt(
    threads: &[Function],
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    queue_config: &QueueConfig,
    config: &ExecConfig,
) -> Result<MtRunResult, ExecError> {
    let program = DecodedProgram::decode(threads)?;
    run_mt_decoded(&program, args, init, queue_config, config)
}

/// [`run_mt`] on an already-decoded program.
///
/// # Errors
///
/// See [`run_mt`].
pub fn run_mt_decoded(
    program: &DecodedProgram,
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    queue_config: &QueueConfig,
    config: &ExecConfig,
) -> Result<MtRunResult, ExecError> {
    let threads = program.threads();
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    if queue_config.capacity == 0 {
        return Err(ExecError::InvalidConfig(
            "queue capacity 0 cannot satisfy any consume".to_string(),
        ));
    }
    for d in threads {
        for pc in 0..d.num_slots() as u32 {
            check_queue_id(decoded_queue_of(d.op(pc)), queue_config.num_queues)?;
        }
    }
    let layout = program.layout();
    let mut memory = Memory::for_layout(layout)?;
    init(layout, &mut memory);

    let mut states: Vec<DecodedThread> = threads
        .iter()
        .map(|d| DecodedThread::new(d, args))
        .collect::<Result<_, _>>()?;
    let mut finished: Vec<bool> = vec![false; threads.len()];
    let mut per_thread = vec![DynCounts::default(); threads.len()];
    let mut queues = Queues {
        queues: vec![VecDeque::new(); queue_config.num_queues],
        capacity: queue_config.capacity,
    };
    let mut output = Vec::new();
    let mut return_value = None;
    let mut fuel = config.max_steps;

    loop {
        if finished.iter().all(|&f| f) {
            return Ok(MtRunResult { return_value, output, per_thread, memory });
        }
        let mut any_progress = false;
        for t in 0..threads.len() {
            if finished[t] {
                continue;
            }
            if fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            fuel -= 1;
            let d = &threads[t];
            let kind = d.op(states[t].pc).kind();
            match states[t].step(d, &mut memory, &mut output, &mut queues)? {
                StepOutcome::Blocked => {
                    fuel += 1; // blocked polls don't consume the budget
                }
                StepOutcome::Returned(v) => {
                    finished[t] = true;
                    any_progress = true;
                    per_thread[t].computation += 1;
                    if v.is_some() {
                        return_value = v;
                    }
                }
                StepOutcome::Continue | StepOutcome::TookEdge(..) => {
                    any_progress = true;
                    match kind {
                        InstrKind::Synchronization => per_thread[t].synchronization += 1,
                        InstrKind::Communication => per_thread[t].communication += 1,
                        InstrKind::Computation => per_thread[t].computation += 1,
                    }
                }
            }
        }
        if !any_progress {
            return Err(ExecError::Deadlock(deadlock_info_decoded(threads, &states, &finished)));
        }
    }
}

/// Attributes a functional-run deadlock to the first unfinished thread
/// (every unfinished thread is blocked on its current queue operation
/// when no round makes progress).
fn deadlock_info_decoded(
    threads: &[DecodedFunction],
    states: &[DecodedThread],
    finished: &[bool],
) -> Option<DeadlockInfo> {
    let t = (0..threads.len()).find(|&t| !finished[t])?;
    match threads[t].op(states[t].pc) {
        DecodedOp::Produce { queue, .. } | DecodedOp::ProduceSync { queue } => {
            Some(DeadlockInfo { core: t, queue, op: BlockedOp::ProduceFull })
        }
        DecodedOp::Consume { queue, .. } | DecodedOp::ConsumeSync { queue } => {
            Some(DeadlockInfo { core: t, queue, op: BlockedOp::ConsumeEmpty })
        }
        _ => None,
    }
}

/// [`deadlock_info_decoded`] for the ID-walking reference path.
fn deadlock_info_reference(
    threads: &[Function],
    states: &[ThreadState],
    finished: &[bool],
) -> Option<DeadlockInfo> {
    let t = (0..threads.len()).find(|&t| !finished[t])?;
    let f = &threads[t];
    match *f.instr(states[t].current_instr(f).ok()?) {
        Op::Produce { queue, .. } | Op::ProduceSync { queue } => {
            Some(DeadlockInfo { core: t, queue, op: BlockedOp::ProduceFull })
        }
        Op::Consume { queue, .. } | Op::ConsumeSync { queue } => {
            Some(DeadlockInfo { core: t, queue, op: BlockedOp::ConsumeEmpty })
        }
        _ => None,
    }
}

/// The ID-walking reference executor ([`run_mt`] without pre-decoding).
/// Kept as the semantic oracle for the decoded engine.
///
/// # Errors
///
/// See [`run_mt`].
pub fn run_mt_reference(
    threads: &[Function],
    args: &[i64],
    init: impl FnOnce(&MemoryLayout, &mut Memory),
    queue_config: &QueueConfig,
    config: &ExecConfig,
) -> Result<MtRunResult, ExecError> {
    if threads.is_empty() {
        return Err(ExecError::InvalidConfig("at least one thread required".to_string()));
    }
    if queue_config.capacity == 0 {
        return Err(ExecError::InvalidConfig(
            "queue capacity 0 cannot satisfy any consume".to_string(),
        ));
    }
    for f in threads {
        for i in f.all_instrs() {
            let q = match *f.instr(i) {
                Op::Produce { queue, .. }
                | Op::ProduceSync { queue }
                | Op::Consume { queue, .. }
                | Op::ConsumeSync { queue } => Some(queue),
                _ => None,
            };
            check_queue_id(q, queue_config.num_queues)?;
        }
    }
    let layout = MemoryLayout::of(&threads[0]);
    let mut memory = Memory::for_layout(&layout)?;
    init(&layout, &mut memory);

    let mut states: Vec<ThreadState> = threads
        .iter()
        .map(|f| ThreadState::new(f, args, &layout))
        .collect::<Result<_, _>>()?;
    let mut finished: Vec<bool> = vec![false; threads.len()];
    let mut per_thread = vec![DynCounts::default(); threads.len()];
    let mut queues = Queues {
        queues: vec![VecDeque::new(); queue_config.num_queues],
        capacity: queue_config.capacity,
    };
    let mut output = Vec::new();
    let mut return_value = None;
    let mut fuel = config.max_steps;

    loop {
        if finished.iter().all(|&f| f) {
            return Ok(MtRunResult { return_value, output, per_thread, memory });
        }
        let mut any_progress = false;
        for t in 0..threads.len() {
            if finished[t] {
                continue;
            }
            if fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            fuel -= 1;
            let f = &threads[t];
            let instr = states[t].current_instr(f)?;
            let is_comm = f.instr(instr).is_communication();
            let is_sync = matches!(
                f.instr(instr),
                crate::instr::Op::ProduceSync { .. } | crate::instr::Op::ConsumeSync { .. }
            );
            match states[t].step(f, &mut memory, &mut output, &mut queues)? {
                StepOutcome::Blocked => {
                    fuel += 1; // blocked polls don't consume the budget
                }
                StepOutcome::Returned(v) => {
                    finished[t] = true;
                    any_progress = true;
                    per_thread[t].computation += 1;
                    if v.is_some() {
                        return_value = v;
                    }
                }
                StepOutcome::Continue | StepOutcome::TookEdge(..) => {
                    any_progress = true;
                    if is_sync {
                        per_thread[t].synchronization += 1;
                    } else if is_comm {
                        per_thread[t].communication += 1;
                    } else {
                        per_thread[t].computation += 1;
                    }
                }
            }
        }
        if !any_progress {
            return Err(ExecError::Deadlock(deadlock_info_reference(threads, &states, &finished)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Op;
    use crate::types::{BinOp, QueueId};

    /// Producer thread sends 1..=3; consumer sums and returns.
    fn producer_consumer(capacity: usize) -> (Vec<Function>, QueueConfig) {
        let q = QueueId(0);
        let mut p = FunctionBuilder::new("producer");
        for v in 1..=3 {
            p.emit(Op::Produce { queue: q, value: (v as i64).into() });
        }
        p.ret(None);
        let producer = p.finish().unwrap();

        let mut c = FunctionBuilder::new("consumer");
        let sum = c.fresh_reg();
        c.const_into(sum, 0);
        for _ in 0..3 {
            let v = c.fresh_reg();
            c.emit(Op::Consume { dst: v, queue: q });
            c.bin_into(BinOp::Add, sum, sum, v);
        }
        c.ret(Some(sum.into()));
        let consumer = c.finish().unwrap();
        (vec![producer, consumer], QueueConfig { num_queues: 4, capacity })
    }

    #[test]
    fn producer_consumer_sums() {
        let (threads, qc) = producer_consumer(32);
        let r = run_mt(&threads, &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(6));
        assert_eq!(r.per_thread[0].communication, 3);
        assert_eq!(r.per_thread[1].communication, 3);
    }

    #[test]
    fn single_element_queues_backpressure() {
        let (threads, qc) = producer_consumer(1);
        let r = run_mt(&threads, &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(6));
    }

    #[test]
    fn deadlock_detected() {
        // Both threads consume from empty queues first.
        let q = QueueId(0);
        let mk = || {
            let mut b = FunctionBuilder::new("d");
            let v = b.fresh_reg();
            b.emit(Op::Consume { dst: v, queue: q });
            b.ret(None);
            b.finish().unwrap()
        };
        let err = run_mt(
            &[mk(), mk()],
            &[],
            |_, _| {},
            &QueueConfig::default(),
            &ExecConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::Deadlock(Some(DeadlockInfo {
                core: 0,
                queue: QueueId(0),
                op: BlockedOp::ConsumeEmpty,
            }))
        );
    }

    #[test]
    fn sync_tokens_order_memory() {
        // T0 stores 7 to cell then produce.sync; T1 consume.sync then
        // loads and outputs. Output must be 7 under any schedule.
        let q = QueueId(1);
        let mut t0 = FunctionBuilder::new("t0");
        let obj = t0.object("cell", 1);
        let p0 = t0.lea(obj, 0);
        t0.store(p0, 0, 7i64);
        t0.emit(Op::ProduceSync { queue: q });
        t0.ret(None);
        let t0 = t0.finish().unwrap();

        let mut t1 = FunctionBuilder::new("t1");
        let obj1 = t1.object("cell", 1);
        t1.emit(Op::ConsumeSync { queue: q });
        let p1 = t1.lea(obj1, 0);
        let v = t1.load(p1, 0);
        t1.output(v);
        t1.ret(None);
        let t1 = t1.finish().unwrap();

        let r = run_mt(
            &[t0, t1],
            &[],
            |_, _| {},
            &QueueConfig::default(),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(r.output, vec![7]);
        let totals = r.totals();
        assert_eq!(totals.synchronization, 2);
    }

    #[test]
    fn bad_queue_rejected_at_load_time() {
        let mut b = FunctionBuilder::new("bad");
        b.emit(Op::ProduceSync { queue: QueueId(99) });
        b.ret(None);
        let f = b.finish().unwrap();
        let qc = QueueConfig { num_queues: 2, capacity: 1 };
        // Both executors reject the misallocated queue id before any
        // thread takes a step.
        let err = run_mt(&[f.clone()], &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InvalidConfig(_)));
        let err = run_mt_reference(&[f], &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InvalidConfig(_)));
    }

    /// A queue capacity of 0 can never satisfy a consume: both engines
    /// reject it up front with a typed error instead of clamping it or
    /// spinning on a produce that can never land.
    #[test]
    fn zero_capacity_rejected_at_load_time() {
        let (threads, mut qc) = producer_consumer(32);
        qc.capacity = 0;
        let err = run_mt(&threads, &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InvalidConfig(_)), "decoded: {err:?}");
        let err = run_mt_reference(&threads, &[], |_, _| {}, &qc, &ExecConfig::default())
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidConfig(_)), "reference: {err:?}");
    }

    /// An unverified function whose entry block has no terminator must
    /// surface as a typed error from both MT engines, not a panic.
    #[test]
    fn unterminated_block_is_typed_error() {
        let b = FunctionBuilder::new("stub");
        let f = b.finish_unverified(); // entry block, no terminator
        let qc = QueueConfig::default();
        let err = run_mt(&[f.clone()], &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap_err();
        assert!(
            matches!(&err, ExecError::InvalidConfig(m) if m.contains("terminator")),
            "decoded: {err:?}"
        );
        let err = run_mt_reference(&[f], &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap_err();
        assert!(
            matches!(&err, ExecError::InvalidConfig(m) if m.contains("terminator")),
            "reference: {err:?}"
        );
    }

    #[test]
    fn totals_sum_threads() {
        let (threads, qc) = producer_consumer(32);
        let r = run_mt(&threads, &[], |_, _| {}, &qc, &ExecConfig::default()).unwrap();
        let t = r.totals();
        assert_eq!(t.communication, 6);
        assert!(t.computation > 0);
    }
}
