//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

use crate::function::Function;
use crate::types::BlockId;

/// Node indices used internally: block ids, plus one virtual node for
/// the post-dominator computation's unique exit.
const UNDEF: u32 = u32::MAX;

/// The dominator tree of a function's CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<u32>, // immediate dominator per block index; UNDEF for entry/unreachable
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators of `f`.
    pub fn compute(f: &Function) -> Dominators {
        let n = f.num_blocks();
        let preds = f.predecessors();
        let rpo = f.reverse_post_order();
        // Only reachable blocks participate.
        let mut rpo_pos = vec![UNDEF; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i as u32;
        }
        let succs_of = |b: BlockId| f.successors(b);
        let _ = succs_of;
        let mut idom = vec![UNDEF; n];
        idom[f.entry().index()] = f.entry().0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip_while(|&&b| b != f.entry()).skip(1) {
                let mut new_idom = UNDEF;
                for &p in &preds[b.index()] {
                    if idom[p.index()] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p.0
                    } else {
                        intersect(&idom, &rpo_pos, new_idom, p.0)
                    };
                }
                if new_idom != UNDEF && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, entry: f.entry() }
    }

    /// The immediate dominator of `b` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.index()];
        if d == UNDEF || b == self.entry {
            None
        } else {
            Some(BlockId(d))
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

fn intersect(idom: &[u32], rpo_pos: &[u32], mut a: u32, mut b: u32) -> u32 {
    while a != b {
        while rpo_pos[a as usize] > rpo_pos[b as usize] {
            a = idom[a as usize];
        }
        while rpo_pos[b as usize] > rpo_pos[a as usize] {
            b = idom[b as usize];
        }
    }
    a
}

/// The post-dominator tree of a function's CFG, computed against a
/// virtual exit node that succeeds every `ret` block. MTCG's
/// branch-target fixing and the control-dependence computation both
/// consume this.
#[derive(Clone, Debug)]
pub struct PostDominators {
    /// immediate post-dominator per block index; the virtual exit is
    /// index `n`.
    ipdom: Vec<u32>,
    n: usize,
}

impl PostDominators {
    /// Computes post-dominators of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` has an unterminated block.
    pub fn compute(f: &Function) -> PostDominators {
        let n = f.num_blocks();
        let exit = n as u32;
        // Reverse CFG: preds(rev) = succs(fwd); exit's rev-succs are ret blocks.
        let mut rev_succs: Vec<Vec<u32>> = vec![Vec::new(); n + 1]; // preds in forward CFG terms
        let mut rev_preds: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        for b in f.blocks() {
            let succs = f.successors(b);
            if succs.is_empty() {
                // ret block: forward arc to virtual exit.
                rev_succs[exit as usize].push(b.0);
                rev_preds[b.index()].push(exit);
            }
            for s in succs {
                rev_succs[s.index()].push(b.0);
                rev_preds[b.index()].push(s.0);
            }
        }
        // RPO of the reverse CFG from exit.
        let mut visited = vec![false; n + 1];
        let mut post = Vec::with_capacity(n + 1);
        let mut stack: Vec<(u32, usize)> = vec![(exit, 0)];
        visited[exit as usize] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let kids = &rev_succs[node as usize];
            if *next < kids.len() {
                let s = kids[*next];
                *next += 1;
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![UNDEF; n + 1];
        for (i, &b) in post.iter().enumerate() {
            rpo_pos[b as usize] = i as u32;
        }
        let mut ipdom = vec![UNDEF; n + 1];
        ipdom[exit as usize] = exit;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in post.iter().skip(1) {
                let mut new_idom = UNDEF;
                for &p in &rev_preds[b as usize] {
                    if ipdom[p as usize] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p
                    } else {
                        intersect(&ipdom, &rpo_pos, new_idom, p)
                    };
                }
                if new_idom != UNDEF && ipdom[b as usize] != new_idom {
                    ipdom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }
        PostDominators { ipdom, n }
    }

    /// The immediate post-dominator of `b`; `None` if it is the virtual
    /// exit (i.e. `b` is a return block) or `b` is unreachable.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.ipdom[b.index()];
        if d == UNDEF || d as usize == self.n {
            None
        } else {
            Some(BlockId(d))
        }
    }

    /// Whether `a` post-dominates `b` (reflexively).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b.0;
        loop {
            if cur == a.0 {
                return true;
            }
            let next = self.ipdom[cur as usize];
            if next == UNDEF || next as usize == self.n {
                return false;
            }
            if next == cur {
                return false;
            }
            cur = next;
        }
    }

    /// Walks up the post-dominator tree from `b` (exclusive), yielding
    /// ancestors until the virtual exit.
    pub fn ancestors(&self, b: BlockId) -> Ancestors<'_> {
        Ancestors { pdom: self, cur: Some(b) }
    }
}

/// Iterator over proper post-dominator-tree ancestors.
pub struct Ancestors<'a> {
    pdom: &'a PostDominators,
    cur: Option<BlockId>,
}

impl Iterator for Ancestors<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        let cur = self.cur?;
        let next = self.pdom.ipdom(cur);
        self.cur = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    /// entry(B0) -> {B1, B2} -> B3(ret)
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 10i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dom = Dominators::compute(&f);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_post_dominators() {
        let f = diamond();
        let pdom = PostDominators::compute(&f);
        assert_eq!(pdom.ipdom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(2)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(3)), None);
        assert!(pdom.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pdom.post_dominates(BlockId(1), BlockId(0)));
        assert!(pdom.post_dominates(BlockId(1), BlockId(1)));
    }

    #[test]
    fn loop_post_dominators() {
        // B0 -> B1(header) -> {B2(body) -> B1, B3(ret)}
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let header = b.block("h");
        let body = b.block("b");
        let exit = b.block("x");
        b.const_into(i, 0);
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, 7i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let dom = Dominators::compute(&f);
        let pdom = PostDominators::compute(&f);
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert_eq!(pdom.ipdom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(pdom.ipdom(BlockId(1)), Some(BlockId(3)));
        // Body does not post-dominate the header (the loop may exit).
        assert!(!pdom.post_dominates(BlockId(2), BlockId(1)));
        let anc: Vec<_> = pdom.ancestors(BlockId(2)).collect();
        assert_eq!(anc, vec![BlockId(1), BlockId(3)]);
    }
}
