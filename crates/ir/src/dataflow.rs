//! Data-flow analyses: a dense bit-set, (filtered) liveness, and
//! reaching definitions / def-use chains.

use crate::function::Function;
use crate::types::{InstrId, Reg};
use std::collections::HashMap;

/// A dense bit set over `usize` indices.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for `n` elements.
    pub fn new(n: usize) -> BitSet {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    /// Inserts `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.words[w] &= !(1 << b);
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|&word| word & (1 << b) != 0)
    }

    /// Unions `other` in; returns whether the set changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Intersects `other` in.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Removes all elements of `other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates over the set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Per-block liveness of registers, with a *use filter*.
///
/// Standard liveness uses every instruction's uses; COCO's thread-aware
/// variant ("the live range of r considering only the uses of r in the
/// instructions assigned to T_t", §3.1.1) passes a filter that accepts
/// only target-thread instructions. Definitions always kill, regardless
/// of thread, because a redefinition anywhere makes the old value stale.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live registers at each block entry.
    pub live_in: Vec<BitSet>,
    /// Live registers at each block exit.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Computes liveness counting the uses of every instruction.
    pub fn compute(f: &Function) -> Liveness {
        Liveness::compute_filtered(f, |_| true)
    }

    /// Computes liveness counting only uses of instructions accepted by
    /// `use_filter`.
    pub fn compute_filtered(f: &Function, use_filter: impl Fn(InstrId) -> bool) -> Liveness {
        let nb = f.num_blocks();
        let nr = f.num_regs() as usize;
        // Per-block gen (upward-exposed filtered uses) and kill (defs).
        let mut gen = vec![BitSet::new(nr); nb];
        let mut kill = vec![BitSet::new(nr); nb];
        let mut uses = Vec::new();
        for b in f.blocks() {
            let (g, k) = (&mut gen[b.index()], &mut kill[b.index()]);
            for i in f.block(b).all_instrs() {
                uses.clear();
                f.instr(i).uses_into(&mut uses);
                if use_filter(i) {
                    for r in &uses {
                        if !k.contains(r.index()) {
                            g.insert(r.index());
                        }
                    }
                }
                if let Some(d) = f.instr(i).def() {
                    k.insert(d.index());
                }
            }
        }
        let mut live_in = vec![BitSet::new(nr); nb];
        let mut live_out = vec![BitSet::new(nr); nb];
        // Backward fixpoint over reverse RPO.
        let mut order = f.reverse_post_order();
        order.reverse();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = BitSet::new(nr);
                for s in f.successors(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inn = out.clone();
                inn.subtract(&kill[b.index()]);
                inn.union_with(&gen[b.index()]);
                if out != live_out[b.index()] || inn != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Whether `r` is live at the entry of block `b`.
    pub fn live_at_entry(&self, b: crate::types::BlockId, r: Reg) -> bool {
        self.live_in[b.index()].contains(r.index())
    }

    /// Whether `r` is live at the exit of block `b`.
    pub fn live_at_exit(&self, b: crate::types::BlockId, r: Reg) -> bool {
        self.live_out[b.index()].contains(r.index())
    }
}

/// Def-use chains via reaching definitions.
///
/// For every instruction use `(user, r)` the analysis records which
/// definitions of `r` may reach it — exactly the register data
/// dependences the PDG needs.
#[derive(Clone, Debug)]
pub struct DefUse {
    /// For each (use instruction, register): the reaching definitions.
    reaching: HashMap<(InstrId, Reg), Vec<InstrId>>,
    /// Definitions of each register that may reach function exit.
    live_out_defs: HashMap<Reg, Vec<InstrId>>,
}

impl DefUse {
    /// Computes def-use chains for `f`. Parameters are modeled as
    /// defined by a virtual entry definition which is *not* reported
    /// (uses reached only by the parameter value get no dependence).
    pub fn compute(f: &Function) -> DefUse {
        // Enumerate definitions.
        let mut defs: Vec<(InstrId, Reg)> = Vec::new();
        let mut defs_of_reg: HashMap<Reg, Vec<usize>> = HashMap::new();
        for b in f.blocks() {
            for i in f.block(b).all_instrs() {
                if let Some(d) = f.instr(i).def() {
                    defs_of_reg.entry(d).or_default().push(defs.len());
                    defs.push((i, d));
                }
            }
        }
        let nd = defs.len();
        let nb = f.num_blocks();
        // Per-block gen/kill over definition indices.
        let mut gen = vec![BitSet::new(nd); nb];
        let mut kill = vec![BitSet::new(nd); nb];
        let mut def_index_at: HashMap<InstrId, usize> = HashMap::new();
        for (di, &(i, _)) in defs.iter().enumerate() {
            def_index_at.insert(i, di);
        }
        for b in f.blocks() {
            for i in f.block(b).all_instrs() {
                if let Some(d) = f.instr(i).def() {
                    let di = def_index_at[&i];
                    // This def kills all other defs of d and gens itself.
                    for &other in &defs_of_reg[&d] {
                        if other != di {
                            kill[b.index()].insert(other);
                        }
                        gen[b.index()].remove(other);
                    }
                    gen[b.index()].insert(di);
                }
            }
        }
        // Forward fixpoint.
        let order = f.reverse_post_order();
        let preds = f.predecessors();
        let mut reach_in = vec![BitSet::new(nd); nb];
        let mut reach_out = vec![BitSet::new(nd); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut inn = BitSet::new(nd);
                for &p in &preds[b.index()] {
                    inn.union_with(&reach_out[p.index()]);
                }
                let mut out = inn.clone();
                out.subtract(&kill[b.index()]);
                out.union_with(&gen[b.index()]);
                if inn != reach_in[b.index()] || out != reach_out[b.index()] {
                    reach_in[b.index()] = inn;
                    reach_out[b.index()] = out;
                    changed = true;
                }
            }
        }
        // Walk blocks recording reaching defs at each use.
        let mut reaching: HashMap<(InstrId, Reg), Vec<InstrId>> = HashMap::new();
        let mut uses = Vec::new();
        for b in f.blocks() {
            let mut cur = reach_in[b.index()].clone();
            for i in f.block(b).all_instrs() {
                uses.clear();
                f.instr(i).uses_into(&mut uses);
                for &r in &uses {
                    let mut sources: Vec<InstrId> = defs_of_reg
                        .get(&r)
                        .into_iter()
                        .flatten()
                        .filter(|&&di| cur.contains(di))
                        .map(|&di| defs[di].0)
                        .collect();
                    sources.sort();
                    sources.dedup();
                    if !sources.is_empty() {
                        reaching.insert((i, r), sources);
                    }
                }
                if let Some(d) = f.instr(i).def() {
                    for &other in &defs_of_reg[&d] {
                        cur.remove(other);
                    }
                    cur.insert(def_index_at[&i]);
                }
            }
        }
        // Live-out defs: defs reaching the exit of any ret block.
        let mut live_out_defs: HashMap<Reg, Vec<InstrId>> = HashMap::new();
        for b in f.blocks() {
            if !f.successors(b).is_empty() {
                continue;
            }
            for di in reach_out[b.index()].iter() {
                let (i, r) = defs[di];
                let v = live_out_defs.entry(r).or_default();
                if !v.contains(&i) {
                    v.push(i);
                }
            }
        }
        DefUse { reaching, live_out_defs }
    }

    /// Definitions of `r` that may reach the use in `user`.
    pub fn reaching_defs(&self, user: InstrId, r: Reg) -> &[InstrId] {
        self.reaching.get(&(user, r)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All (use, reg, def) triples, sorted.
    pub fn def_use_pairs(&self) -> Vec<(InstrId, InstrId, Reg)> {
        let mut pairs: Vec<(InstrId, InstrId, Reg)> = Vec::new();
        for (&(user, r), ds) in &self.reaching {
            for &d in ds {
                pairs.push((d, user, r));
            }
        }
        pairs.sort();
        pairs
    }

    /// Definitions of `r` that may reach the function's exit.
    pub fn live_out_defs(&self, r: Reg) -> &[InstrId] {
        self.live_out_defs.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, BlockId};

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        s.remove(64);
        assert!(!s.contains(64));
        let mut t = BitSet::new(130);
        t.insert(1);
        assert!(s.union_with(&t));
        assert!(!s.union_with(&t));
        t.insert(0);
        s.intersect_with(&t);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1]);
        s.subtract(&t);
        assert!(s.is_empty());
    }

    /// r0 defined in entry, used in exit: live across the middle block.
    #[test]
    fn liveness_across_blocks() {
        let mut b = FunctionBuilder::new("l");
        let mid = b.block("mid");
        let exit = b.block("exit");
        let v = b.const_(42);
        b.jump(mid);
        b.switch_to(mid);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(Some(v.into()));
        let f = b.finish().unwrap();
        let live = Liveness::compute(&f);
        assert!(live.live_at_entry(BlockId(1), v));
        assert!(live.live_at_exit(BlockId(0), v));
        assert!(!live.live_at_entry(BlockId(0), v));
    }

    #[test]
    fn filtered_liveness_ignores_foreign_uses() {
        let mut b = FunctionBuilder::new("l");
        let exit = b.block("exit");
        let v = b.const_(42);
        b.jump(exit);
        b.switch_to(exit);
        b.output(v);
        b.ret(None);
        let f = b.finish().unwrap();
        let use_instr = f.block(BlockId(1)).instrs[0];
        // Filter rejects the only use: nothing live.
        let live = Liveness::compute_filtered(&f, |i| i != use_instr);
        assert!(!live.live_at_entry(BlockId(1), v));
        // Filter accepts it: live.
        let live = Liveness::compute_filtered(&f, |_| true);
        assert!(live.live_at_entry(BlockId(1), v));
    }

    #[test]
    fn reaching_defs_through_diamond() {
        // r = 1; if (p) r = 2; use(r) — use sees both defs... here: def
        // in entry, redefinition in one arm.
        let mut b = FunctionBuilder::new("d");
        let p = b.param();
        let r = b.fresh_reg();
        let arm = b.block("arm");
        let join = b.block("join");
        b.const_into(r, 1);
        b.branch(p, arm, join);
        b.switch_to(arm);
        b.const_into(r, 2);
        b.jump(join);
        b.switch_to(join);
        b.output(r);
        b.ret(None);
        let f = b.finish().unwrap();
        let du = DefUse::compute(&f);
        let use_instr = f.block(BlockId(2)).instrs[0];
        let defs = du.reaching_defs(use_instr, r);
        assert_eq!(defs.len(), 2, "both definitions reach the join use");
    }

    #[test]
    fn redefinition_kills() {
        let mut b = FunctionBuilder::new("k");
        let r = b.fresh_reg();
        b.const_into(r, 1);
        b.const_into(r, 2);
        b.output(r);
        b.ret(None);
        let f = b.finish().unwrap();
        let du = DefUse::compute(&f);
        let entry = f.entry();
        let second_def = f.block(entry).instrs[1];
        let use_instr = f.block(entry).instrs[2];
        assert_eq!(du.reaching_defs(use_instr, r), &[second_def]);
    }

    #[test]
    fn loop_carried_def_use() {
        // i updated in body, used in header condition: body def reaches
        // header use around the back edge.
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let header = b.block("h");
        let body = b.block("b");
        let exit = b.block("x");
        b.const_into(i, 0);
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, 7i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let du = DefUse::compute(&f);
        let cond_instr = f.block(BlockId(1)).instrs[0];
        let defs = du.reaching_defs(cond_instr, i);
        assert_eq!(defs.len(), 2, "init and loop update both reach the condition");
    }

    #[test]
    fn live_out_defs_reported() {
        let mut b = FunctionBuilder::new("lo");
        let r = b.const_(5);
        b.ret(Some(r.into()));
        let f = b.finish().unwrap();
        let du = DefUse::compute(&f);
        assert_eq!(du.live_out_defs(r).len(), 1);
    }

    #[test]
    fn def_use_pairs_sorted_and_complete() {
        let mut b = FunctionBuilder::new("p");
        let x = b.const_(1);
        let y = b.bin(BinOp::Add, x, x);
        b.ret(Some(y.into()));
        let f = b.finish().unwrap();
        let du = DefUse::compute(&f);
        let pairs = du.def_use_pairs();
        // x -> add (one pair, even though used twice as operand), add -> ret.
        assert_eq!(pairs.len(), 2);
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
    }
}
