//! Static profile estimation — the alternative to training runs that
//! the paper points at ("These estimates can be obtained through
//! profiling or through static analyses, which have been demonstrated
//! to be also very accurate \[28\]" — Wu & Larus).
//!
//! A simplified Wu–Larus estimator: branch probabilities come from
//! structural heuristics (back edges are taken, loop exits are not),
//! and block frequencies are obtained by propagating the entry
//! frequency through the CFG to a fixpoint (geometric convergence,
//! since every cycle's probability product is below 1).

use crate::dom::Dominators;
use crate::function::Function;
use crate::profile::Profile;
use crate::types::BlockId;

/// Probability (×1000) that a branch takes its back edge each visit
/// (i.e. an expected trip count of ~9 per entry).
const LOOP_BACK_PROB: f64 = 0.9;
/// Probability for either arm of an unbiased branch.
const EVEN_PROB: f64 = 0.5;
/// Scale factor from (fractional) frequencies to integer counts.
const SCALE: f64 = 1000.0;

/// Estimates an edge [`Profile`] for `f` without executing it.
///
/// The result plugs in anywhere a trained profile does; partition
/// quality and COCO's placements degrade gracefully with estimate
/// error, and correctness never depends on the weights.
///
/// ```
/// use gmt_ir::{FunctionBuilder, estimate_profile};
///
/// # fn main() -> Result<(), gmt_ir::VerifyError> {
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// b.ret(Some(x.into()));
/// let f = b.finish()?;
/// let profile = estimate_profile(&f);
/// assert!(profile.block_weight(&f, f.entry()) > 0);
/// # Ok(())
/// # }
/// ```
pub fn estimate_profile(f: &Function) -> Profile {
    let dom = Dominators::compute(f);
    let loops = crate::loops::LoopForest::compute(f, &dom);
    let n = f.num_blocks();

    // Whether the edge `b -> s` stays inside b's innermost loop.
    let stays_in_loop = |b: BlockId, s: BlockId| -> bool {
        let Some(li) = loops.innermost[b.index()] else { return false };
        loops.loops[li].contains(s)
    };

    // Edge probabilities by heuristic: the arm that keeps executing
    // b's innermost loop is strongly taken (the loop heuristic of Wu &
    // Larus); otherwise the arms are even.
    let mut edges: Vec<(BlockId, BlockId, f64)> = Vec::new();
    for b in f.blocks() {
        let succs = f.successors(b);
        match succs.len() {
            0 => {}
            1 => edges.push((b, succs[0], 1.0)),
            _ => {
                let inside: Vec<bool> = succs.iter().map(|&s| stays_in_loop(b, s)).collect();
                if inside.iter().any(|&x| x) && !inside.iter().all(|&x| x) {
                    for (k, &s) in succs.iter().enumerate() {
                        let p = if inside[k] { LOOP_BACK_PROB } else { 1.0 - LOOP_BACK_PROB };
                        edges.push((b, s, p));
                    }
                } else {
                    for &s in &succs {
                        edges.push((b, s, EVEN_PROB));
                    }
                }
            }
        }
    }

    // Propagate block frequencies to a fixpoint.
    let mut freq = vec![0.0f64; n];
    let order = f.reverse_post_order();
    for _ in 0..200 {
        let mut next = vec![0.0f64; n];
        next[f.entry().index()] = 1.0;
        for &(from, to, p) in &edges {
            next[to.index()] += freq[from.index()] * p;
        }
        // Entry keeps its external inflow.
        next[f.entry().index()] = 1.0
            + edges
                .iter()
                .filter(|&&(_, to, _)| to == f.entry())
                .map(|&(from, _, p)| freq[from.index()] * p)
                .sum::<f64>();
        let delta: f64 = order
            .iter()
            .map(|b| (next[b.index()] - freq[b.index()]).abs())
            .sum();
        freq = next;
        if delta < 1e-9 {
            break;
        }
    }

    let mut profile = Profile::new();
    profile.set_entries(SCALE as u64);
    let mut weights: std::collections::HashMap<(BlockId, BlockId), u64> =
        std::collections::HashMap::new();
    for &(from, to, p) in &edges {
        let w = (freq[from.index()] * p * SCALE).round() as u64;
        *weights.entry((from, to)).or_insert(0) += w;
    }
    for ((from, to), w) in weights {
        profile.set_edge(from, to, w);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    /// Counted loop: the estimator should weight the body ~9x the exit.
    #[test]
    fn loop_body_heavily_weighted() {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let i = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let p = estimate_profile(&f);
        let body_w = p.block_weight(&f, BlockId(2));
        let exit_w = p.block_weight(&f, BlockId(3));
        assert!(
            body_w > exit_w * 5,
            "body {body_w} should dwarf exit {exit_w}"
        );
    }

    /// Diamond: both arms get roughly half the entry weight.
    #[test]
    fn diamond_splits_evenly() {
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 3i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish().unwrap();
        let p = estimate_profile(&f);
        let wt = p.block_weight(&f, BlockId(1));
        let we = p.block_weight(&f, BlockId(2));
        assert_eq!(wt, we);
        assert!(wt > 0);
        // The join gets everything back.
        assert_eq!(p.block_weight(&f, BlockId(3)), wt + we);
    }

    /// Nested loops multiply: the inner body is the hottest block.
    #[test]
    fn nesting_compounds() {
        let mut b = FunctionBuilder::new("n");
        let n = b.param();
        let i = b.fresh_reg();
        let j = b.fresh_reg();
        let h1 = b.block("h1");
        let h2 = b.block("h2");
        let b2 = b.block("b2");
        let a1 = b.block("a1");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.jump(h1);
        b.switch_to(h1);
        let c1 = b.bin(BinOp::Lt, i, n);
        b.branch(c1, h2, exit);
        b.switch_to(h2);
        b.const_into(j, 0);
        b.jump(b2);
        b.switch_to(b2);
        b.bin_into(BinOp::Add, j, j, 1i64);
        let c2 = b.bin(BinOp::Lt, j, n);
        b.branch(c2, b2, a1);
        b.switch_to(a1);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h1);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let p = estimate_profile(&f);
        let weights = p.block_weights(&f);
        let inner = weights[BlockId(3).index()];
        assert_eq!(
            weights.iter().copied().max().unwrap(),
            inner,
            "inner body must be hottest: {weights:?}"
        );
    }
}
