//! Control-dependence computation (Ferrante–Ottenstein–Warren).

use crate::dom::PostDominators;
use crate::function::Function;
use crate::types::{BlockId, InstrId};

/// One control dependence: block/instruction `X` executes iff branch
/// `branch` (the terminator of `block`) takes its `edge`-th successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ControlDep {
    /// The controlling block (whose terminator is the branch).
    pub block: BlockId,
    /// The controlling branch instruction (terminator of `block`).
    pub branch: InstrId,
    /// Which successor edge of the branch leads to the dependent code
    /// (0 = taken, 1 = fallthrough).
    pub edge: usize,
}

/// Control dependences of every block of a function.
///
/// Computed by the classic CFG-edge walk: for each edge `(A, B)` where
/// `B` does not post-dominate `A`, every node on the post-dominator-tree
/// path from `B` up to (but excluding) `ipdom(A)` is control dependent
/// on that edge.
#[derive(Clone, Debug)]
pub struct ControlDeps {
    deps: Vec<Vec<ControlDep>>,
}

impl ControlDeps {
    /// Computes control dependences for `f` using `pdom`.
    pub fn compute(f: &Function, pdom: &PostDominators) -> ControlDeps {
        let mut deps: Vec<Vec<ControlDep>> = vec![Vec::new(); f.num_blocks()];
        for a in f.blocks() {
            let term = f.block(a).terminator.expect("verified function");
            let succs = f.successors(a);
            if succs.len() < 2 {
                continue; // only conditional branches generate control deps
            }
            for (edge, &b) in succs.iter().enumerate() {
                // Skip only if B *strictly* post-dominates A; a self-loop
                // edge (A -> A) makes A control dependent on itself
                // (do-while loops).
                if b != a && pdom.post_dominates(b, a) {
                    continue;
                }
                let dep = ControlDep { block: a, branch: term, edge };
                // Walk B, ipdom(B), ... up to but excluding ipdom(A)
                // (`None` means the virtual exit). Note a loop header is
                // control dependent on its own branch via this walk.
                let stop = pdom.ipdom(a);
                let mut cur = Some(b);
                while let Some(x) = cur {
                    if Some(x) == stop {
                        break;
                    }
                    if !deps[x.index()].contains(&dep) {
                        deps[x.index()].push(dep);
                    }
                    cur = pdom.ipdom(x);
                }
            }
        }
        ControlDeps { deps }
    }

    /// The control dependences of block `b`.
    pub fn of_block(&self, b: BlockId) -> &[ControlDep] {
        &self.deps[b.index()]
    }

    /// The control dependences of instruction `i` (those of its block).
    pub fn of_instr(&self, f: &Function, i: InstrId) -> &[ControlDep] {
        self.of_block(f.block_of(i))
    }

    /// The blocks on whose branches `b` is (directly) control dependent.
    pub fn controlling_blocks(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.deps[b.index()].iter().map(|d| d.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    /// B0: br -> {B1, B2}; B1,B2 -> B3(ret).
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 10i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn diamond_arms_depend_on_branch() {
        let f = diamond();
        let pdom = PostDominators::compute(&f);
        let cd = ControlDeps::compute(&f, &pdom);
        assert_eq!(cd.of_block(BlockId(1)).len(), 1);
        assert_eq!(cd.of_block(BlockId(1))[0].block, BlockId(0));
        assert_eq!(cd.of_block(BlockId(1))[0].edge, 0);
        assert_eq!(cd.of_block(BlockId(2))[0].edge, 1);
        // The join and the branch block itself depend on nothing.
        assert!(cd.of_block(BlockId(0)).is_empty());
        assert!(cd.of_block(BlockId(3)).is_empty());
    }

    #[test]
    fn loop_header_controls_body_and_itself() {
        // B0 -> B1(header: br body/exit) ; B2(body) -> B1 ; B3 ret.
        let mut b = FunctionBuilder::new("l");
        let i = b.fresh_reg();
        let header = b.block("h");
        let body = b.block("b");
        let exit = b.block("x");
        b.const_into(i, 0);
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, 7i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let pdom = PostDominators::compute(&f);
        let cd = ControlDeps::compute(&f, &pdom);
        // Body depends on the header's taken edge.
        let body_deps = cd.of_block(BlockId(2));
        assert_eq!(body_deps.len(), 1);
        assert_eq!(body_deps[0].block, BlockId(1));
        assert_eq!(body_deps[0].edge, 0);
        // The header depends on itself (loop-carried control).
        let hdr_deps = cd.of_block(BlockId(1));
        assert_eq!(hdr_deps.len(), 1);
        assert_eq!(hdr_deps[0].block, BlockId(1));
        // Exit post-dominates everything: no control deps.
        assert!(cd.of_block(BlockId(3)).is_empty());
    }

    #[test]
    fn instr_deps_match_block_deps() {
        let f = diamond();
        let pdom = PostDominators::compute(&f);
        let cd = ControlDeps::compute(&f, &pdom);
        let i = f.block(BlockId(1)).terminator.unwrap();
        assert_eq!(cd.of_instr(&f, i), cd.of_block(BlockId(1)));
    }
}
