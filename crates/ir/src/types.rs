//! Core identifier and operand types of the IR.

use std::fmt;

/// A virtual register.
///
/// The IR is register-based and unbounded: the builder allocates fresh
/// registers on demand and there is no register allocation pass (the
/// paper's toolchain runs GMT scheduling *before* register allocation,
/// on virtual registers — §4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl Reg {
    /// The register index as a `usize`, for indexing side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A basic block id within a [`Function`](crate::Function).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A stable instruction id within a [`Function`](crate::Function).
///
/// Instructions live in an arena on the function; ids never move when
/// instructions are inserted into or removed from blocks, so analyses
/// and the PDG can use them as dense side-table keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrId(pub u32);

impl InstrId {
    /// The instruction index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A named memory object (array/struct) of a function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The object index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A communication queue id in the synchronization array.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub u32);

impl QueueId {
    /// The queue index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An instruction operand: a virtual register or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{:?}", r),
            Operand::Imm(v) => write!(f, "{}", v),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A memory address: base register plus constant displacement.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrMode {
    /// Base address register.
    pub base: Reg,
    /// Constant displacement in cells.
    pub offset: i64,
}

impl AddrMode {
    /// `base + 0`.
    pub fn base(base: Reg) -> AddrMode {
        AddrMode { base, offset: 0 }
    }

    /// `base + offset`.
    pub fn with_offset(base: Reg, offset: i64) -> AddrMode {
        AddrMode { base, offset }
    }
}

impl fmt::Debug for AddrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{:?}]", self.base)
        } else {
            write!(f, "[{:?}+{}]", self.base, self.offset)
        }
    }
}

/// Binary arithmetic/logic operations.
///
/// The `F*` variants compute with the same two's-complement integer
/// semantics as their integer counterparts (the library's value domain
/// is `i64`; workloads using floating point in the original benchmarks
/// are re-expressed in fixed point), but are *classified* as
/// floating-point for simulator latency and issue-port modeling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero yields 0 (hardware-style
    /// quiet semantics so the interpreter never traps).
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `rhs & 63`.
    Shl,
    /// Arithmetic shift right by `rhs & 63`.
    Shr,
    /// Signed less-than, producing 0 or 1.
    Lt,
    /// Signed less-or-equal, producing 0 or 1.
    Le,
    /// Equality, producing 0 or 1.
    Eq,
    /// Inequality, producing 0 or 1.
    Ne,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Floating-class addition (integer semantics, FP latency).
    FAdd,
    /// Floating-class subtraction (integer semantics, FP latency).
    FSub,
    /// Floating-class multiplication (integer semantics, FP latency).
    FMul,
    /// Floating-class division (integer semantics, FP latency).
    FDiv,
}

impl BinOp {
    /// Whether this operation is classified floating-point for the
    /// machine model (issue on FP units, longer latency).
    pub fn is_float_class(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Evaluates the operation on two values.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add | BinOp::FAdd => lhs.wrapping_add(rhs),
            BinOp::Sub | BinOp::FSub => lhs.wrapping_sub(rhs),
            BinOp::Mul | BinOp::FMul => lhs.wrapping_mul(rhs),
            BinOp::Div | BinOp::FDiv => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs as u32 & 63),
            BinOp::Shr => lhs.wrapping_shr(rhs as u32 & 63),
            BinOp::Lt => (lhs < rhs) as i64,
            BinOp::Le => (lhs <= rhs) as i64,
            BinOp::Eq => (lhs == rhs) as i64,
            BinOp::Ne => (lhs != rhs) as i64,
            BinOp::Min => lhs.min(rhs),
            BinOp::Max => lhs.max(rhs),
        }
    }
}

/// Unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Copy.
    Mov,
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Evaluates the operation.
    pub fn eval(self, v: i64) -> i64 {
        match self {
            UnOp::Mov => v,
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => !v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Lt.eval(2, 1), 0);
        assert_eq!(BinOp::Min.eval(4, -2), -2);
        assert_eq!(BinOp::Shl.eval(1, 65), 2, "shift amount is masked");
    }

    #[test]
    fn float_class_ops_share_integer_semantics() {
        assert_eq!(BinOp::FMul.eval(3, 4), BinOp::Mul.eval(3, 4));
        assert!(BinOp::FMul.is_float_class());
        assert!(!BinOp::Mul.is_float_class());
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Mov.eval(9), 9);
        assert_eq!(UnOp::Neg.eval(9), -9);
        assert_eq!(UnOp::Not.eval(0), -1);
    }

    #[test]
    fn wrapping_never_panics() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(UnOp::Neg.eval(i64::MIN), i64::MIN);
    }

    #[test]
    fn operand_conversions() {
        let r = Reg(4);
        let o: Operand = r.into();
        assert_eq!(o.as_reg(), Some(r));
        let i: Operand = 7i64.into();
        assert_eq!(i.as_reg(), None);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Reg(3)), "r3");
        assert_eq!(format!("{:?}", BlockId(1)), "B1");
        assert_eq!(format!("{:?}", Operand::Imm(-2)), "-2");
        assert_eq!(format!("{:?}", AddrMode::with_offset(Reg(1), 8)), "[r1+8]");
        assert_eq!(format!("{:?}", AddrMode::base(Reg(0))), "[r0]");
    }
}
