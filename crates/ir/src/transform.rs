//! CFG normalization transforms.

use crate::function::Function;
use crate::instr::Op;
use crate::types::BlockId;

/// Splits every critical edge of `f` by inserting an empty trampoline
/// block, and returns how many edges were split.
///
/// A *critical edge* runs from a block with multiple successors to a
/// block with multiple predecessors. COCO's min-cut placements live on
/// CFG arcs; a cut arc maps to a concrete program point only when the
/// arc has a dedicated end (single-successor tail or single-predecessor
/// head). Running this transform before profiling and PDG construction
/// guarantees every arc is placeable, matching the paper's assumption
/// that communication can be inserted on any `G_f` arc.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let mut preds_count = vec![0usize; f.num_blocks()];
    for b in f.blocks() {
        for s in f.successors(b) {
            preds_count[s.index()] += 1;
        }
    }
    let blocks: Vec<BlockId> = f.blocks().collect();
    let mut split = 0;
    for b in blocks {
        let term = f.block(b).terminator.expect("terminated block");
        let Op::Branch { cond, then_bb, else_bb } = *f.instr(term) else {
            continue;
        };
        if then_bb == else_bb {
            continue;
        }
        let mut new_then = then_bb;
        let mut new_else = else_bb;
        if preds_count[then_bb.index()] > 1 {
            let tramp = f.add_block(format!("split_{}_{}", b.0, then_bb.0));
            f.set_terminator(tramp, Op::Jump(then_bb));
            new_then = tramp;
            split += 1;
        }
        if preds_count[else_bb.index()] > 1 {
            let tramp = f.add_block(format!("split_{}_{}", b.0, else_bb.0));
            f.set_terminator(tramp, Op::Jump(else_bb));
            new_else = tramp;
            split += 1;
        }
        if new_then != then_bb || new_else != else_bb {
            f.replace_terminator(b, Op::Branch { cond, then_bb: new_then, else_bb: new_else });
        }
    }
    split
}

/// Whether `f` contains a critical edge.
pub fn has_critical_edges(f: &Function) -> bool {
    let mut preds_count = vec![0usize; f.num_blocks()];
    for b in f.blocks() {
        for s in f.successors(b) {
            preds_count[s.index()] += 1;
        }
    }
    f.blocks().any(|b| {
        let succs = f.successors(b);
        succs.len() > 1 && succs.iter().any(|s| preds_count[s.index()] > 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{run, ExecConfig};
    use crate::types::BinOp;

    /// Loop header branch whose exit edge targets a multi-pred block.
    fn loopy() -> Function {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let i = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let tail = b.block("tail");
        b.const_into(i, 0);
        b.jump(tail); // entry jumps straight to tail too (multi-pred)
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, tail);
        b.switch_to(body);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(tail);
        b.output(i);
        b.ret(Some(i.into()));
        b.finish_unverified()
    }

    #[test]
    fn splitting_removes_critical_edges() {
        let mut f = loopy();
        assert!(has_critical_edges(&f));
        let n = split_critical_edges(&mut f);
        assert!(n > 0);
        assert!(!has_critical_edges(&f));
        assert!(crate::verify(&f).is_ok());
    }

    #[test]
    fn splitting_preserves_behavior() {
        let f0 = loopy();
        let mut f1 = f0.clone();
        split_critical_edges(&mut f1);
        let r0 = run(&f0, &[0], &ExecConfig::default()).unwrap();
        let r1 = run(&f1, &[0], &ExecConfig::default()).unwrap();
        assert_eq!(r0.return_value, r1.return_value);
        assert_eq!(r0.output, r1.output);
    }

    #[test]
    fn idempotent() {
        let mut f = loopy();
        split_critical_edges(&mut f);
        assert_eq!(split_critical_edges(&mut f), 0);
    }

    #[test]
    fn diamond_needs_no_split() {
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 1i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let mut f = b.finish().unwrap();
        assert!(!has_critical_edges(&f));
        assert_eq!(split_critical_edges(&mut f), 0);
    }
}
