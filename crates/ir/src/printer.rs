//! Textual dumps of functions.

use crate::function::Function;
use std::fmt;

/// Wraps a [`Function`] for display.
///
/// ```
/// use gmt_ir::{FunctionBuilder, display};
///
/// # fn main() -> Result<(), gmt_ir::VerifyError> {
/// let mut b = FunctionBuilder::new("tiny");
/// b.ret(None);
/// let f = b.finish()?;
/// let text = display(&f).to_string();
/// assert!(text.contains("func tiny"));
/// assert!(text.contains("ret"));
/// # Ok(())
/// # }
/// ```
pub fn display(f: &Function) -> FunctionDisplay<'_> {
    FunctionDisplay { f }
}

/// Displays a function as structured text.
pub struct FunctionDisplay<'a> {
    f: &'a Function,
}

impl fmt::Display for FunctionDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let f = self.f;
        write!(out, "func {}(", f.name)?;
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{p}")?;
        }
        writeln!(out, ")")?;
        for (i, obj) in f.objects().iter().enumerate() {
            writeln!(out, "  object obj{} \"{}\"[{}]", i, obj.name, obj.size)?;
        }
        for b in f.blocks() {
            let block = f.block(b);
            if block.name.is_empty() {
                writeln!(out, "{b}:")?;
            } else {
                writeln!(out, "{b} ({}):", block.name)?;
            }
            for i in block.all_instrs() {
                writeln!(out, "    {}", f.instr(i))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    #[test]
    fn dump_contains_everything() {
        let mut b = FunctionBuilder::new("demo");
        let x = b.param();
        let obj = b.object("arr", 8);
        let p = b.lea(obj, 0);
        let v = b.bin(BinOp::Mul, x, 2i64);
        b.store(p, 1, v);
        b.ret(Some(v.into()));
        let f = b.finish().unwrap();
        let text = display(&f).to_string();
        assert!(text.contains("func demo(r0)"));
        assert!(text.contains("object obj0 \"arr\"[8]"));
        assert!(text.contains("Mul"));
        assert!(text.contains("store"));
        assert!(text.contains("ret r2"));
    }
}
