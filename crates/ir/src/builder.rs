//! An ergonomic builder for IR functions.

use crate::function::Function;
use crate::instr::Op;
use crate::types::{AddrMode, BinOp, BlockId, InstrId, ObjectId, Operand, Reg, UnOp};
use crate::verify::{verify, VerifyError};

/// Builds a [`Function`] block by block.
///
/// The builder keeps a *current block*; instruction-emitting methods
/// append to it and return the defined register, so straight-line code
/// reads like three-address code:
///
/// ```
/// use gmt_ir::{FunctionBuilder, BinOp};
///
/// # fn main() -> Result<(), gmt_ir::VerifyError> {
/// let mut b = FunctionBuilder::new("sum3");
/// let x = b.param();
/// let y = b.param();
/// let t = b.bin(BinOp::Add, x, y);
/// let s = b.bin(BinOp::Add, t, 1i64);
/// b.ret(Some(s.into()));
/// let f = b.finish()?;
/// assert_eq!(f.num_blocks(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a new function; the current block is the entry block.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        let func = Function::new(name);
        let current = func.entry();
        FunctionBuilder { func, current }
    }

    /// Declares a parameter register (delivered in declaration order).
    pub fn param(&mut self) -> Reg {
        let r = self.func.fresh_reg();
        self.func.params.push(r);
        r
    }

    /// Declares a memory object of `size` cells.
    pub fn object(&mut self, name: impl Into<String>, size: u64) -> ObjectId {
        self.func.add_object(name, size)
    }

    /// Creates a new (empty, unpositioned) block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Switches the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.func.entry()
    }

    /// Allocates a register without defining it (for loop-carried values
    /// that are initialized in one block and updated in another).
    pub fn fresh_reg(&mut self) -> Reg {
        self.func.fresh_reg()
    }

    /// Emits a raw instruction into the current block.
    pub fn emit(&mut self, op: Op) -> InstrId {
        if op.is_terminator() {
            self.func.set_terminator(self.current, op)
        } else {
            self.func.push_instr(self.current, op)
        }
    }

    /// `dst = imm` into a fresh register.
    pub fn const_(&mut self, value: i64) -> Reg {
        let dst = self.func.fresh_reg();
        self.emit(Op::Const(dst, value));
        dst
    }

    /// `dst = imm` into an existing register (for loop-carried updates).
    pub fn const_into(&mut self, dst: Reg, value: i64) -> InstrId {
        self.emit(Op::Const(dst, value))
    }

    /// `dst = &object + offset` into a fresh register.
    pub fn lea(&mut self, object: ObjectId, offset: i64) -> Reg {
        let dst = self.func.fresh_reg();
        self.emit(Op::Lea(dst, object, offset));
        dst
    }

    /// `dst = lhs <op> rhs` into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        self.emit(Op::Bin(op, dst, lhs.into(), rhs.into()));
        dst
    }

    /// `dst = lhs <op> rhs` into an existing register.
    pub fn bin_into(
        &mut self,
        op: BinOp,
        dst: Reg,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> InstrId {
        self.emit(Op::Bin(op, dst, lhs.into(), rhs.into()))
    }

    /// `dst = <op> src` into a fresh register.
    pub fn un(&mut self, op: UnOp, src: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        self.emit(Op::Un(op, dst, src.into()));
        dst
    }

    /// `dst = src` (copy) into an existing register.
    pub fn mov_into(&mut self, dst: Reg, src: impl Into<Operand>) -> InstrId {
        self.emit(Op::Un(UnOp::Mov, dst, src.into()))
    }

    /// `dst = mem[base + offset]` into a fresh register.
    pub fn load(&mut self, base: Reg, offset: i64) -> Reg {
        let dst = self.func.fresh_reg();
        self.emit(Op::Load(dst, AddrMode::with_offset(base, offset)));
        dst
    }

    /// `dst = mem[base + offset]` into an existing register.
    pub fn load_into(&mut self, dst: Reg, base: Reg, offset: i64) -> InstrId {
        self.emit(Op::Load(dst, AddrMode::with_offset(base, offset)))
    }

    /// `mem[base + offset] = value`.
    pub fn store(&mut self, base: Reg, offset: i64, value: impl Into<Operand>) -> InstrId {
        self.emit(Op::Store(AddrMode::with_offset(base, offset), value.into()))
    }

    /// `output value` — append to the observable trace.
    pub fn output(&mut self, value: impl Into<Operand>) -> InstrId {
        self.emit(Op::Output(value.into()))
    }

    /// Conditional branch terminator: `cond != 0 ? then_bb : else_bb`.
    pub fn branch(&mut self, cond: Reg, then_bb: BlockId, else_bb: BlockId) -> InstrId {
        self.emit(Op::Branch { cond, then_bb, else_bb })
    }

    /// Unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) -> InstrId {
        self.emit(Op::Jump(target))
    }

    /// Return terminator.
    pub fn ret(&mut self, value: Option<Operand>) -> InstrId {
        self.emit(Op::Ret(value))
    }

    /// Finishes the function, verifying its structure.
    ///
    /// # Errors
    ///
    /// Returns any [`VerifyError`] detected (unterminated block, bad
    /// branch target, use of a never-defined register, ...).
    pub fn finish(self) -> Result<Function, VerifyError> {
        verify(&self.func)?;
        Ok(self.func)
    }

    /// Finishes without verification (for tests that intentionally
    /// construct ill-formed functions).
    pub fn finish_unverified(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig};

    #[test]
    fn build_and_run_a_counting_loop() {
        // for (i = 0; i < 5; i++) sum += i; ret sum
        let mut b = FunctionBuilder::new("loop");
        let sum = b.fresh_reg();
        let i = b.fresh_reg();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(sum, 0);
        b.const_into(i, 0);
        b.jump(header);
        b.switch_to(header);
        let cond = b.bin(BinOp::Lt, i, 5i64);
        b.branch(cond, body, exit);
        b.switch_to(body);
        b.bin_into(BinOp::Add, sum, sum, i);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(sum.into()));
        let f = b.finish().expect("verifies");
        let result = run(&f, &[], &ExecConfig::default()).expect("runs");
        assert_eq!(result.return_value, Some(10));
    }

    #[test]
    fn params_arrive_in_order() {
        let mut b = FunctionBuilder::new("sub");
        let x = b.param();
        let y = b.param();
        let d = b.bin(BinOp::Sub, x, y);
        b.ret(Some(d.into()));
        let f = b.finish().unwrap();
        let result = run(&f, &[10, 4], &ExecConfig::default()).unwrap();
        assert_eq!(result.return_value, Some(6));
    }

    #[test]
    fn memory_round_trip() {
        let mut b = FunctionBuilder::new("mem");
        let obj = b.object("cell", 4);
        let p = b.lea(obj, 2);
        b.store(p, 0, 42i64);
        let v = b.load(p, 0);
        b.ret(Some(v.into()));
        let f = b.finish().unwrap();
        let result = run(&f, &[], &ExecConfig::default()).unwrap();
        assert_eq!(result.return_value, Some(42));
    }

    #[test]
    fn finish_rejects_unterminated_blocks() {
        let mut b = FunctionBuilder::new("bad");
        b.const_(1);
        assert!(b.finish().is_err());
    }
}
