//! Structural verification of IR functions.

use crate::function::Function;
use crate::instr::Op;
use crate::types::{BlockId, InstrId};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural defect found by [`verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A block has no terminator.
    Unterminated(BlockId),
    /// A branch or jump targets a block id that does not exist.
    BadTarget {
        /// The offending instruction.
        instr: InstrId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// A register is used but never defined anywhere in the function
    /// (and is not a parameter).
    UndefinedRegister {
        /// The instruction using the register.
        instr: InstrId,
        /// The register number.
        reg: u32,
    },
    /// A memory instruction references an object id out of range.
    BadObject(InstrId),
    /// The function has no reachable `ret`; every execution would loop
    /// forever, which breaks post-dominance (GMT scheduling requires a
    /// unique exit).
    NoReachableReturn,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Unterminated(b) => write!(f, "block {b:?} has no terminator"),
            VerifyError::BadTarget { instr, target } => {
                write!(f, "instruction {instr:?} targets nonexistent block {target:?}")
            }
            VerifyError::UndefinedRegister { instr, reg } => {
                write!(f, "instruction {instr:?} uses never-defined register r{reg}")
            }
            VerifyError::BadObject(i) => write!(f, "instruction {i:?} references bad object"),
            VerifyError::NoReachableReturn => write!(f, "no reachable return"),
        }
    }
}

impl Error for VerifyError {}

/// Checks the structural invariants GMT scheduling relies on.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    // Every block terminated; targets in range.
    for b in f.blocks() {
        let Some(term) = f.block(b).terminator else {
            return Err(VerifyError::Unterminated(b));
        };
        for target in f.instr(term).successors() {
            if target.index() >= f.num_blocks() {
                return Err(VerifyError::BadTarget { instr: term, target });
            }
        }
    }

    // Register definedness (whole-function, flow-insensitive: a use must
    // have at least one def or be a parameter).
    let mut defined: HashSet<u32> = f.params.iter().map(|r| r.0).collect();
    for i in f.all_instrs() {
        if let Some(d) = f.instr(i).def() {
            defined.insert(d.0);
        }
    }
    let mut uses = Vec::new();
    for i in f.all_instrs() {
        uses.clear();
        f.instr(i).uses_into(&mut uses);
        for r in &uses {
            if !defined.contains(&r.0) {
                return Err(VerifyError::UndefinedRegister { instr: i, reg: r.0 });
            }
        }
        if let Op::Lea(_, obj, _) = *f.instr(i) {
            if obj.index() >= f.objects().len() {
                return Err(VerifyError::BadObject(i));
            }
        }
    }

    // A return must be reachable from entry.
    let mut stack = vec![f.entry()];
    let mut seen = vec![false; f.num_blocks()];
    seen[f.entry().index()] = true;
    let mut found_ret = false;
    while let Some(b) = stack.pop() {
        let term = f.block(b).terminator.expect("checked above");
        if matches!(f.instr(term), Op::Ret(_)) {
            found_ret = true;
            break;
        }
        for s in f.successors(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    if !found_ret {
        return Err(VerifyError::NoReachableReturn);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Operand, Reg};

    #[test]
    fn accepts_minimal_function() {
        let mut f = Function::new("ok");
        let e = f.entry();
        f.set_terminator(e, Op::Ret(None));
        assert!(verify(&f).is_ok());
    }

    #[test]
    fn rejects_unterminated() {
        let f = Function::new("bad");
        assert_eq!(verify(&f), Err(VerifyError::Unterminated(BlockId(0))));
    }

    #[test]
    fn rejects_undefined_register() {
        let mut f = Function::new("bad");
        let e = f.entry();
        f.ensure_reg(Reg(0));
        f.set_terminator(e, Op::Ret(Some(Operand::Reg(Reg(0)))));
        assert!(matches!(verify(&f), Err(VerifyError::UndefinedRegister { .. })));
    }

    #[test]
    fn params_count_as_defined() {
        let mut f = Function::new("ok");
        let e = f.entry();
        let r = f.fresh_reg();
        f.params.push(r);
        f.set_terminator(e, Op::Ret(Some(Operand::Reg(r))));
        assert!(verify(&f).is_ok());
    }

    #[test]
    fn rejects_infinite_loop_without_exit() {
        let mut f = Function::new("spin");
        let e = f.entry();
        f.set_terminator(e, Op::Jump(e));
        assert_eq!(verify(&f), Err(VerifyError::NoReachableReturn));
    }

    #[test]
    fn error_messages_are_nonempty() {
        for e in [
            VerifyError::Unterminated(BlockId(0)),
            VerifyError::NoReachableReturn,
            VerifyError::UndefinedRegister { instr: InstrId(1), reg: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
