//! s–t flow networks and minimum cuts.

use crate::capacity::Capacity;
use crate::digraph::NodeId;
use crate::maxflow::{self, MaxFlowAlgo};
use std::fmt;

/// Index of a *forward* arc in a [`FlowNetwork`], stable across solves.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub u32);

impl ArcId {
    /// The arc index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A node of a flow network. Alias of the [`DiGraph`](crate::DiGraph)
/// node id so ids can be shared with companion graphs.
pub type FlowNode = NodeId;

/// A forward arc of a flow network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowArc {
    /// Tail node.
    pub from: FlowNode,
    /// Head node.
    pub to: FlowNode,
    /// Capacity (cut cost).
    pub capacity: Capacity,
}

/// A directed flow network on which max-flow / min-cut is solved.
///
/// This is the `G_f` of the COCO paper: nodes are program points of a
/// register live-range (or of the whole region, for memory), arcs are
/// control-flow arcs weighted by profile frequency, and a minimum s–t cut
/// is the cheapest set of program points at which to communicate.
///
/// Arcs are stored in pairs (forward, residual-reverse) as in standard
/// max-flow implementations. Only forward arcs are exposed through
/// [`ArcId`]s.
#[derive(Clone, Default)]
pub struct FlowNetwork {
    /// head node of each half-arc (even = forward, odd = reverse).
    head: Vec<FlowNode>,
    /// residual capacity of each half-arc.
    residual: Vec<Capacity>,
    /// original capacity of each *forward* arc.
    original: Vec<Capacity>,
    /// tail node of each forward arc.
    tail: Vec<FlowNode>,
    /// per-node list of half-arc indices leaving the node.
    adjacency: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> FlowNetwork {
        FlowNetwork::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> FlowNode {
        let id = NodeId(self.adjacency.len() as u32);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `n` nodes at once, returning the id of the first.
    pub fn add_nodes(&mut self, n: usize) -> FlowNode {
        let first = NodeId(self.adjacency.len() as u32);
        for _ in 0..n {
            self.add_node();
        }
        first
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of forward arcs.
    pub fn arc_count(&self) -> usize {
        self.original.len()
    }

    /// Adds a directed arc with the given capacity; returns its id.
    ///
    /// Parallel arcs are allowed (their capacities act additively).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_arc(&mut self, from: FlowNode, to: FlowNode, capacity: Capacity) -> ArcId {
        assert!(from.index() < self.node_count() && to.index() < self.node_count());
        let arc = ArcId(self.original.len() as u32);
        let fwd = self.head.len() as u32;
        self.head.push(to);
        self.residual.push(capacity);
        self.head.push(from);
        self.residual.push(Capacity::ZERO);
        self.adjacency[from.index()].push(fwd);
        self.adjacency[to.index()].push(fwd + 1);
        self.original.push(capacity);
        self.tail.push(from);
        arc
    }

    /// The forward arc `id` as stored (original capacity, not residual).
    pub fn arc(&self, id: ArcId) -> FlowArc {
        FlowArc {
            from: self.tail[id.index()],
            to: self.head[id.index() * 2],
            capacity: self.original[id.index()],
        }
    }

    /// All forward arcs in insertion order.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, FlowArc)> + '_ {
        (0..self.arc_count() as u32).map(move |i| (ArcId(i), self.arc(ArcId(i))))
    }

    /// Computes a maximum s–t flow with the requested algorithm and
    /// returns its value. The network's residual state is updated; call
    /// [`FlowNetwork::reset`] to solve again from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink`.
    pub fn max_flow(&mut self, source: FlowNode, sink: FlowNode, algo: MaxFlowAlgo) -> Capacity {
        assert_ne!(source, sink, "source and sink must differ");
        match algo {
            MaxFlowAlgo::EdmondsKarp => maxflow::edmonds_karp(self, source, sink),
            MaxFlowAlgo::Dinic => maxflow::dinic(self, source, sink),
        }
    }

    /// Computes a minimum s–t cut using Edmonds–Karp (the paper's
    /// algorithm). Equivalent to
    /// [`min_cut_with`](FlowNetwork::min_cut_with) with
    /// [`MaxFlowAlgo::EdmondsKarp`].
    pub fn min_cut(&self, source: FlowNode, sink: FlowNode) -> MinCut {
        self.min_cut_with(source, sink, MaxFlowAlgo::EdmondsKarp)
    }

    /// Computes a minimum s–t cut: the cheapest set of forward arcs whose
    /// removal disconnects `sink` from `source`.
    ///
    /// The receiver is not mutated; the solve runs on a clone, so a
    /// network can be cut repeatedly (the multicut heuristic relies on
    /// this).
    ///
    /// If every s–t path crosses an infinite-capacity arc the returned
    /// cut has `value == Capacity::INFINITE` and lists no arcs; callers
    /// treat that as "no feasible placement" (COCO then falls back to the
    /// MTCG placement, which the paper proves always yields a finite
    /// cut).
    pub fn min_cut_with(
        &self,
        source: FlowNode,
        sink: FlowNode,
        algo: MaxFlowAlgo,
    ) -> MinCut {
        let mut solved = self.clone();
        let value = solved.max_flow(source, sink, algo);
        if value.is_infinite() {
            return MinCut {
                value,
                arcs: Vec::new(),
                source_side: Vec::new(),
            };
        }
        // Nodes reachable from the source in the residual graph form the
        // source side of the cut.
        let reachable = solved.residual_reachable(source);
        let mut arcs = Vec::new();
        for (id, arc) in self.arcs() {
            if reachable[arc.from.index()] && !reachable[arc.to.index()] {
                // Saturated forward arc crossing the cut.
                if !arc.capacity.is_zero() {
                    arcs.push(id);
                }
            }
        }
        let source_side = (0..self.node_count())
            .map(|i| NodeId(i as u32))
            .filter(|n| reachable[n.index()])
            .collect();
        MinCut {
            value,
            arcs,
            source_side,
        }
    }

    /// Restores all residual capacities to the original arc capacities.
    pub fn reset(&mut self) {
        for i in 0..self.original.len() {
            self.residual[i * 2] = self.original[i];
            self.residual[i * 2 + 1] = Capacity::ZERO;
        }
    }

    /// Nodes reachable from `start` through arcs with positive residual
    /// capacity.
    fn residual_reachable(&self, start: FlowNode) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            for &half in &self.adjacency[n.index()] {
                if self.residual[half as usize].is_zero() {
                    continue;
                }
                let to = self.head[half as usize];
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }

    // ---- internals shared with the max-flow algorithms ----

    pub(crate) fn half_arcs_from(&self, n: FlowNode) -> &[u32] {
        &self.adjacency[n.index()]
    }

    pub(crate) fn half_head(&self, half: u32) -> FlowNode {
        self.head[half as usize]
    }

    pub(crate) fn half_residual(&self, half: u32) -> Capacity {
        self.residual[half as usize]
    }

    pub(crate) fn push_flow(&mut self, half: u32, amount: Capacity) {
        let h = half as usize;
        self.residual[h] = self.residual[h] - amount;
        let mate = h ^ 1;
        // Reverse residual of an infinite arc saturates harmlessly.
        self.residual[mate] += amount;
    }
}

impl fmt::Debug for FlowNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FlowNetwork({} nodes, {} arcs)",
            self.node_count(),
            self.arc_count()
        )?;
        for (id, arc) in self.arcs() {
            writeln!(f, "  {:?}: {:?} -> {:?} cap {:?}", id, arc.from, arc.to, arc.capacity)?;
        }
        Ok(())
    }
}

/// A minimum s–t cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// Total capacity of the cut (equals the max-flow value).
    pub value: Capacity,
    /// The forward arcs crossing the cut, source side → sink side.
    /// Empty if `value` is infinite (no finite cut exists).
    pub arcs: Vec<ArcId>,
    /// Nodes on the source side of the cut.
    pub source_side: Vec<FlowNode>,
}

impl MinCut {
    /// Whether a finite cut was found.
    pub fn is_feasible(&self) -> bool {
        !self.value.is_infinite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_both_algos(build: impl Fn() -> (FlowNetwork, FlowNode, FlowNode), expect: Capacity) {
        for algo in [MaxFlowAlgo::EdmondsKarp, MaxFlowAlgo::Dinic] {
            let (net, s, t) = build();
            let cut = net.min_cut_with(s, t, algo);
            assert_eq!(cut.value, expect, "algo {:?}", algo);
            if cut.is_feasible() {
                let total: Capacity = cut.arcs.iter().map(|&a| net.arc(a).capacity).sum();
                assert_eq!(total, expect, "cut arcs must sum to cut value ({:?})", algo);
            }
        }
    }

    #[test]
    fn single_path() {
        check_both_algos(
            || {
                let mut net = FlowNetwork::new();
                let s = net.add_node();
                let a = net.add_node();
                let t = net.add_node();
                net.add_arc(s, a, Capacity::finite(5));
                net.add_arc(a, t, Capacity::finite(3));
                (net, s, t)
            },
            Capacity::finite(3),
        );
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.6-style network, max flow 23.
        check_both_algos(
            || {
                let mut net = FlowNetwork::new();
                let s = net.add_node();
                let v1 = net.add_node();
                let v2 = net.add_node();
                let v3 = net.add_node();
                let v4 = net.add_node();
                let t = net.add_node();
                net.add_arc(s, v1, Capacity::finite(16));
                net.add_arc(s, v2, Capacity::finite(13));
                net.add_arc(v1, v3, Capacity::finite(12));
                net.add_arc(v2, v1, Capacity::finite(4));
                net.add_arc(v2, v4, Capacity::finite(14));
                net.add_arc(v3, v2, Capacity::finite(9));
                net.add_arc(v3, t, Capacity::finite(20));
                net.add_arc(v4, v3, Capacity::finite(7));
                net.add_arc(v4, t, Capacity::finite(4));
                (net, s, t)
            },
            Capacity::finite(23),
        );
    }

    #[test]
    fn infinite_arcs_never_cut() {
        // s -inf-> a -2-> b -inf-> t : only the middle arc can be cut.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, Capacity::INFINITE);
        let middle = net.add_arc(a, b, Capacity::finite(2));
        net.add_arc(b, t, Capacity::INFINITE);
        let cut = net.min_cut(s, t);
        assert_eq!(cut.value, Capacity::finite(2));
        assert_eq!(cut.arcs, vec![middle]);
    }

    #[test]
    fn no_finite_cut_reports_infeasible() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, Capacity::INFINITE);
        let cut = net.min_cut(s, t);
        assert!(!cut.is_feasible());
        assert!(cut.arcs.is_empty());
    }

    #[test]
    fn disconnected_sink_has_empty_cut() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, Capacity::finite(4));
        let cut = net.min_cut(s, t);
        assert_eq!(cut.value, Capacity::ZERO);
        assert!(cut.arcs.is_empty());
    }

    #[test]
    fn parallel_arcs_add() {
        check_both_algos(
            || {
                let mut net = FlowNetwork::new();
                let s = net.add_node();
                let t = net.add_node();
                net.add_arc(s, t, Capacity::finite(2));
                net.add_arc(s, t, Capacity::finite(3));
                (net, s, t)
            },
            Capacity::finite(5),
        );
    }

    #[test]
    fn min_cut_does_not_mutate_network() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, Capacity::finite(2));
        let c1 = net.min_cut(s, t);
        let c2 = net.min_cut(s, t);
        assert_eq!(c1, c2);
    }

    #[test]
    fn source_side_contains_source() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, Capacity::finite(1));
        let cut = net.min_cut(s, t);
        assert!(cut.source_side.contains(&s));
        assert!(!cut.source_side.contains(&t));
    }

    #[test]
    fn zero_capacity_arcs_excluded_from_cut() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, Capacity::ZERO);
        let cut = net.min_cut(s, t);
        assert_eq!(cut.value, Capacity::ZERO);
        assert!(cut.arcs.is_empty());
    }

    #[test]
    fn reset_allows_resolving() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, Capacity::finite(7));
        assert_eq!(net.max_flow(s, t, MaxFlowAlgo::EdmondsKarp), Capacity::finite(7));
        assert_eq!(net.max_flow(s, t, MaxFlowAlgo::EdmondsKarp), Capacity::ZERO);
        net.reset();
        assert_eq!(net.max_flow(s, t, MaxFlowAlgo::Dinic), Capacity::finite(7));
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn max_flow_rejects_equal_endpoints() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        net.max_flow(s, s, MaxFlowAlgo::EdmondsKarp);
    }
}
