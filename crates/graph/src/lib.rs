//! Graph algorithms underpinning GMT instruction scheduling and COCO.
//!
//! This crate provides the discrete-math substrate of the COCO framework
//! (Ottoni & August, "Communication Optimizations for Global Multi-Threaded
//! Instruction Scheduling"): directed graphs with condensation and
//! topological orders (used by the DSWP partitioner and the thread graph of
//! COCO's Algorithm 2), and s–t flow networks with max-flow/min-cut solvers
//! (used to place communication instructions).
//!
//! Two max-flow algorithms are provided behind one interface:
//! [`MaxFlowAlgo::EdmondsKarp`] — the algorithm the paper uses, with
//! worst-case `O(V·E²)` — and [`MaxFlowAlgo::Dinic`] with `O(V²·E)`, which
//! is faster on the small, sparse flow graphs built from register
//! live-ranges. Both compute identical cut values; the ablation bench
//! `mincut_compile_time` compares their compile-time cost.
//!
//! # Example
//!
//! ```
//! use gmt_graph::{FlowNetwork, Capacity};
//!
//! let mut net = FlowNetwork::new();
//! let s = net.add_node();
//! let a = net.add_node();
//! let t = net.add_node();
//! net.add_arc(s, a, Capacity::finite(5));
//! net.add_arc(a, t, Capacity::finite(3));
//! let cut = net.min_cut(s, t);
//! assert_eq!(cut.value, Capacity::finite(3));
//! assert_eq!(cut.arcs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod digraph;
mod flow;
mod maxflow;
mod multicut;
mod scc;

pub use capacity::Capacity;
pub use digraph::{Condensation, DiGraph, NodeId};
pub use flow::{ArcId, FlowArc, FlowNetwork, FlowNode, MinCut};
pub use maxflow::MaxFlowAlgo;
pub use multicut::{multicut, Commodity, MultiCut};
pub use scc::{strongly_connected_components, Scc};
