//! A compact directed graph with the traversals GMT scheduling needs.

use std::collections::VecDeque;
use std::fmt;

/// Index of a node in a [`DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph stored as adjacency lists.
///
/// Used for the PDG's inter-thread *thread graph* (COCO Algorithm 2 walks
/// its arcs in quasi-topological order) and for DSWP's SCC condensation
/// (the pipeline DAG). Parallel arcs are allowed; self-loops are allowed
/// and reported as trivial cycles.
///
/// ```
/// use gmt_graph::DiGraph;
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_arc(a, b);
/// assert_eq!(g.topological_order(), Some(vec![a, b]));
/// ```
#[derive(Clone, Default)]
pub struct DiGraph {
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> DiGraph {
        DiGraph::default()
    }

    /// Creates a graph with `n` nodes and no arcs.
    pub fn with_nodes(n: usize) -> DiGraph {
        DiGraph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.succs.len() as u32);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds a directed arc `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.len() && to.index() < self.len());
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
    }

    /// Adds `from -> to` unless that exact arc is already present.
    pub fn add_arc_dedup(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from.index()].contains(&to) {
            self.add_arc(from, to);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// All node ids, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.succs.len() as u32).map(NodeId)
    }

    /// Successors of `n`, in insertion order.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors of `n`, in insertion order.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n.index()]
    }

    /// Total number of arcs.
    pub fn arc_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Kahn's algorithm: a topological order, or `None` if the graph is
    /// cyclic.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: VecDeque<NodeId> = self
            .nodes()
            .filter(|n| indegree[n.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for &s in self.succs(n) {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() == self.len() {
            Some(order)
        } else {
            None
        }
    }

    /// A quasi-topological order that is defined even for cyclic graphs:
    /// nodes are emitted in reverse post-order of a DFS over all roots.
    ///
    /// For a DAG this is a topological order; for a cyclic graph, back
    /// arcs are the only arcs that go "backwards". COCO's Algorithm 2 uses
    /// this to process thread-graph arcs so the `repeat-until` loop
    /// converges in few iterations.
    pub fn quasi_topological_order(&self) -> Vec<NodeId> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        for root in self.nodes() {
            if visited[root.index()] {
                continue;
            }
            // Iterative DFS emitting post-order.
            let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
            visited[root.index()] = true;
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                if *child < self.succs(node).len() {
                    let next = self.succs(node)[*child];
                    *child += 1;
                    if !visited[next.index()] {
                        visited[next.index()] = true;
                        stack.push((next, 0));
                    }
                } else {
                    post.push(node);
                    stack.pop();
                }
            }
        }
        post.reverse();
        post
    }

    /// Whether the graph contains a directed cycle (including self-loops).
    pub fn is_cyclic(&self) -> bool {
        self.topological_order().is_none()
    }

    /// Condenses the graph by its strongly connected components.
    pub fn condensation(&self) -> Condensation {
        let sccs = crate::scc::strongly_connected_components(self);
        let mut component_of = vec![0usize; self.len()];
        for (i, scc) in sccs.iter().enumerate() {
            for &n in &scc.nodes {
                component_of[n.index()] = i;
            }
        }
        let mut dag = DiGraph::with_nodes(sccs.len());
        for n in self.nodes() {
            for &s in self.succs(n) {
                let (cf, ct) = (component_of[n.index()], component_of[s.index()]);
                if cf != ct {
                    dag.add_arc_dedup(NodeId(cf as u32), NodeId(ct as u32));
                }
            }
        }
        Condensation {
            components: sccs,
            component_of,
            dag,
        }
    }

    /// All nodes reachable from `start`, including `start` itself.
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in self.succs(n) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph({} nodes)", self.len())?;
        for n in self.nodes() {
            if !self.succs(n).is_empty() {
                writeln!(f, "  {:?} -> {:?}", n, self.succs(n))?;
            }
        }
        Ok(())
    }
}

/// The strongly-connected-component condensation of a [`DiGraph`].
#[derive(Clone, Debug)]
pub struct Condensation {
    /// The components, in reverse topological order (Tarjan's output
    /// order: every arc in [`Condensation::dag`] goes from a
    /// later-indexed component to an earlier one... reversed here; see
    /// `dag`).
    pub components: Vec<crate::scc::Scc>,
    /// For each original node, the index of its component in
    /// [`Condensation::components`].
    pub component_of: Vec<usize>,
    /// The acyclic condensed graph; node `i` is `components[i]`.
    pub dag: DiGraph,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_arc(a, b);
        g.add_arc(a, c);
        g.add_arc(b, d);
        g.add_arc(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn topological_order_of_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topological_order().expect("diamond is acyclic");
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
    }

    #[test]
    fn cycle_has_no_topological_order() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, a);
        assert!(g.topological_order().is_none());
        assert!(g.is_cyclic());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        g.add_arc(a, a);
        assert!(g.is_cyclic());
    }

    #[test]
    fn quasi_topological_order_covers_all_nodes() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, a); // cycle
        g.add_arc(b, c);
        let order = g.quasi_topological_order();
        assert_eq!(order.len(), 3);
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn condensation_collapses_cycles() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, a);
        g.add_arc(b, c);
        let cond = g.condensation();
        assert_eq!(cond.components.len(), 2);
        assert!(!cond.dag.is_cyclic());
        assert_eq!(cond.component_of[a.index()], cond.component_of[b.index()]);
        assert_ne!(cond.component_of[a.index()], cond.component_of[c.index()]);
    }

    #[test]
    fn reachability() {
        let (g, [a, _b, _c, d]) = diamond();
        let from_a = g.reachable_from(a);
        assert!(from_a.iter().all(|&r| r));
        let from_d = g.reachable_from(d);
        assert_eq!(from_d.iter().filter(|&&r| r).count(), 1);
    }

    #[test]
    fn dedup_arcs() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_arc_dedup(a, b);
        g.add_arc_dedup(a, b);
        assert_eq!(g.arc_count(), 1);
    }
}
