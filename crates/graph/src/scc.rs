//! Tarjan's strongly-connected-components algorithm (iterative).

use crate::digraph::{DiGraph, NodeId};

/// One strongly connected component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scc {
    /// The member nodes, in discovery order.
    pub nodes: Vec<NodeId>,
}

impl Scc {
    /// Whether this SCC contains a cycle: more than one node, or a single
    /// node with a self-loop (callers must check self-loops themselves;
    /// this method only looks at cardinality).
    pub fn is_nontrivial(&self) -> bool {
        self.nodes.len() > 1
    }
}

/// Computes the strongly connected components of `g` with Tarjan's
/// algorithm, implemented iteratively so deep graphs cannot overflow the
/// call stack.
///
/// Components are returned in *reverse topological order* of the
/// condensation: if there is an arc from component `A` to component `B`
/// in the condensed DAG, then `B` appears before `A` in the result. DSWP
/// relies on this to lay pipeline stages out front-to-back by reversing
/// the returned list.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Scc> {
    const UNVISITED: u32 = u32::MAX;
    let n = g.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in g.nodes() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < g.succs(v).len() {
                let w = g.succs(v)[*child];
                *child += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent.index()] =
                        lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut nodes = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        nodes.push(w);
                        if w == v {
                            break;
                        }
                    }
                    nodes.reverse();
                    sccs.push(Scc { nodes });
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_nodes() {
        let mut g = DiGraph::new();
        g.add_node();
        g.add_node();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|s| s.nodes.len() == 1));
    }

    #[test]
    fn two_node_cycle_is_one_component() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, a);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].nodes.len(), 2);
        assert!(sccs[0].is_nontrivial());
    }

    #[test]
    fn reverse_topological_output_order() {
        // a -> b -> c, all separate components: c must come first.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, c);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs[0].nodes, vec![c]);
        assert_eq!(sccs[1].nodes, vec![b]);
        assert_eq!(sccs[2].nodes, vec![a]);
    }

    #[test]
    fn pipeline_with_recurrence() {
        // Classic DSWP shape: {a,b} cycle feeding {c}.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, a);
        g.add_arc(b, c);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].nodes, vec![c]);
        assert_eq!(sccs[1].nodes.len(), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..200_000).map(|_| g.add_node()).collect();
        for w in nodes.windows(2) {
            g.add_arc(w[0], w[1]);
        }
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 200_000);
    }

    #[test]
    fn complete_graph_is_one_scc() {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..10).map(|_| g.add_node()).collect();
        for &x in &nodes {
            for &y in &nodes {
                if x != y {
                    g.add_arc(x, y);
                }
            }
        }
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].nodes.len(), 10);
    }
}
