//! Multi-commodity min-cut heuristic for memory synchronization placement.
//!
//! COCO §3.1.3: memory dependences from `T_s` to `T_t` can *share*
//! synchronization instructions, so they must be optimized simultaneously
//! — a multi-source/multi-sink ("multicommodity") min-cut, which is
//! NP-hard in general. The paper's heuristic, implemented here: apply the
//! optimal single-pair min-cut to each commodity in turn, and after each
//! pair is disconnected, zero the capacity of its cut arcs so the arcs
//! already paid for help disconnect subsequent pairs for free.

use crate::capacity::Capacity;
use crate::flow::{ArcId, FlowNetwork, FlowNode};

/// One source–sink pair to disconnect: a single memory dependence arc
/// from an instruction in `T_s` (source) to one in `T_t` (sink).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commodity {
    /// Node of the dependence's source instruction.
    pub source: FlowNode,
    /// Node of the dependence's target instruction.
    pub sink: FlowNode,
}

/// Result of the multicut heuristic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiCut {
    /// Union of all arcs cut, in the order they were first cut.
    pub arcs: Vec<ArcId>,
    /// Total original capacity of the cut arcs (each arc counted once).
    pub value: Capacity,
    /// Per-commodity feasibility: `false` where no finite cut existed
    /// (the caller falls back to MTCG's placement for that dependence).
    pub feasible: Vec<bool>,
}

/// Runs the greedy per-pair multicut heuristic over `commodities`.
///
/// Pairs are processed in the given order. For each pair a single-pair
/// min-cut (Edmonds–Karp) is computed on the network with all
/// previously-cut arcs removed; newly cut arcs are appended to the
/// result and removed from the working network.
///
/// A pair whose source equals its sink, or that is already disconnected
/// by earlier cuts, contributes no new arcs and is reported feasible.
///
/// A final *redundancy elimination* pass then drops every cut arc whose
/// restoration leaves all commodities disconnected. This matters when
/// arc costs tie: the per-pair min-cuts may each pick a private arc even
/// though one shared arc downstream covers every pair (the sharing the
/// paper's §3.1.3 is after), and the elimination pass recovers the
/// shared solution.
pub fn multicut(net: &FlowNetwork, commodities: &[Commodity]) -> MultiCut {
    let mut work = net.clone();
    let mut cut_arcs: Vec<ArcId> = Vec::new();
    let mut is_cut = vec![false; net.arc_count()];
    let mut feasible = Vec::with_capacity(commodities.len());
    let mut value = Capacity::ZERO;

    for &Commodity { source, sink } in commodities {
        if source == sink {
            feasible.push(true);
            continue;
        }
        let cut = work.min_cut(source, sink);
        if !cut.is_feasible() {
            feasible.push(false);
            continue;
        }
        feasible.push(true);
        if cut.arcs.is_empty() {
            continue; // already disconnected
        }
        for id in cut.arcs {
            if !is_cut[id.index()] {
                is_cut[id.index()] = true;
                value += net.arc(id).capacity;
                cut_arcs.push(id);
            }
        }
        // Rebuild the working network with the cut arcs removed so they
        // help disconnect subsequent pairs.
        work = rebuild_without(net, &is_cut);
    }

    // Redundancy elimination: try restoring each cut arc (cheapest
    // last, so expensive arcs are dropped first when possible); keep
    // the restoration if every feasible commodity stays disconnected.
    let mut order: Vec<usize> = (0..cut_arcs.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(net.arc(cut_arcs[k]).capacity));
    for k in order {
        let arc = cut_arcs[k];
        is_cut[arc.index()] = false;
        let still_ok = commodities.iter().zip(&feasible).all(|(c, &ok)| {
            !ok || c.source == c.sink || !reaches(net, &is_cut, c.source, c.sink)
        });
        if still_ok {
            value = value - net.arc(arc).capacity;
        } else {
            is_cut[arc.index()] = true;
        }
    }
    let cut_arcs: Vec<ArcId> = cut_arcs.into_iter().filter(|a| is_cut[a.index()]).collect();

    MultiCut {
        arcs: cut_arcs,
        value,
        feasible,
    }
}

/// Whether `to` is reachable from `from` along arcs not flagged in
/// `removed` (zero-capacity arcs are treated as absent: they cannot be
/// program paths).
fn reaches(net: &FlowNetwork, removed: &[bool], from: FlowNode, to: FlowNode) -> bool {
    let mut adj: Vec<Vec<FlowNode>> = vec![Vec::new(); net.node_count()];
    for (id, arc) in net.arcs() {
        if !removed[id.index()] && !arc.capacity.is_zero() {
            adj[arc.from.index()].push(arc.to);
        }
    }
    let mut seen = vec![false; net.node_count()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        for &s in &adj[n.index()] {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// A copy of `net` with the flagged arcs' capacities zeroed. Arc ids are
/// preserved (arcs are kept with zero capacity rather than removed).
fn rebuild_without(net: &FlowNetwork, removed: &[bool]) -> FlowNetwork {
    let mut out = FlowNetwork::new();
    out.add_nodes(net.node_count());
    for (id, arc) in net.arcs() {
        let cap = if removed[id.index()] {
            Capacity::ZERO
        } else {
            arc.capacity
        };
        out.add_arc(arc.from, arc.to, cap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two pairs sharing a bottleneck arc: the heuristic should cut the
    /// shared arc once and disconnect both pairs with it.
    #[test]
    fn shared_arc_paid_once() {
        //   s1 --5--> m --3--> n --5--> t1
        //   s2 --5--/            \--5--> t2
        let mut net = FlowNetwork::new();
        let s1 = net.add_node();
        let s2 = net.add_node();
        let m = net.add_node();
        let n = net.add_node();
        let t1 = net.add_node();
        let t2 = net.add_node();
        net.add_arc(s1, m, Capacity::finite(5));
        net.add_arc(s2, m, Capacity::finite(5));
        let shared = net.add_arc(m, n, Capacity::finite(3));
        net.add_arc(n, t1, Capacity::finite(5));
        net.add_arc(n, t2, Capacity::finite(5));
        let result = multicut(
            &net,
            &[
                Commodity { source: s1, sink: t1 },
                Commodity { source: s2, sink: t2 },
            ],
        );
        assert_eq!(result.arcs, vec![shared]);
        assert_eq!(result.value, Capacity::finite(3));
        assert_eq!(result.feasible, vec![true, true]);
    }

    /// Disjoint pairs each get their own cut.
    #[test]
    fn disjoint_pairs() {
        let mut net = FlowNetwork::new();
        let s1 = net.add_node();
        let t1 = net.add_node();
        let s2 = net.add_node();
        let t2 = net.add_node();
        let a1 = net.add_arc(s1, t1, Capacity::finite(2));
        let a2 = net.add_arc(s2, t2, Capacity::finite(7));
        let result = multicut(
            &net,
            &[
                Commodity { source: s1, sink: t1 },
                Commodity { source: s2, sink: t2 },
            ],
        );
        assert_eq!(result.arcs, vec![a1, a2]);
        assert_eq!(result.value, Capacity::finite(9));
    }

    /// A pair with only infinite-capacity paths is infeasible; others are
    /// unaffected.
    #[test]
    fn infeasible_pair_reported() {
        let mut net = FlowNetwork::new();
        let s1 = net.add_node();
        let t1 = net.add_node();
        let s2 = net.add_node();
        let t2 = net.add_node();
        net.add_arc(s1, t1, Capacity::INFINITE);
        let a2 = net.add_arc(s2, t2, Capacity::finite(1));
        let result = multicut(
            &net,
            &[
                Commodity { source: s1, sink: t1 },
                Commodity { source: s2, sink: t2 },
            ],
        );
        assert_eq!(result.feasible, vec![false, true]);
        assert_eq!(result.arcs, vec![a2]);
    }

    /// An already-disconnected pair contributes nothing.
    #[test]
    fn disconnected_pair_is_free() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let result = multicut(&net, &[Commodity { source: s, sink: t }]);
        assert!(result.arcs.is_empty());
        assert_eq!(result.value, Capacity::ZERO);
        assert_eq!(result.feasible, vec![true]);
    }

    /// Self-pair (source == sink) is trivially satisfied.
    #[test]
    fn self_pair_is_trivial() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let result = multicut(&net, &[Commodity { source: s, sink: s }]);
        assert!(result.arcs.is_empty());
        assert_eq!(result.feasible, vec![true]);
    }

    /// Order dependence: the greedy heuristic cuts the first pair's
    /// min-cut even when a globally cheaper shared cut exists — the
    /// documented sub-optimality of the paper's approach.
    #[test]
    fn heuristic_is_greedy_not_optimal() {
        // s1 -> x -> t1 with cheap direct arc s1->t1;
        // a truly optimal multicut over crafted instances may differ,
        // but the invariant we guarantee is: after the run, every
        // feasible pair is disconnected in the residual graph.
        let mut net = FlowNetwork::new();
        let s1 = net.add_node();
        let x = net.add_node();
        let t1 = net.add_node();
        net.add_arc(s1, x, Capacity::finite(1));
        net.add_arc(x, t1, Capacity::finite(4));
        net.add_arc(s1, t1, Capacity::finite(2));
        let result = multicut(&net, &[Commodity { source: s1, sink: t1 }]);
        // Min cut = min(1+2, ...) => cutting s1->x (1) and s1->t1 (2) = 3.
        assert_eq!(result.value, Capacity::finite(3));
        // Verify disconnection: remove cut arcs, re-run min-cut => zero.
        let removed: Vec<bool> = (0..net.arc_count())
            .map(|i| result.arcs.contains(&ArcId(i as u32)))
            .collect();
        let pruned = super::rebuild_without(&net, &removed);
        assert_eq!(pruned.min_cut(s1, t1).value, Capacity::ZERO);
    }
}
