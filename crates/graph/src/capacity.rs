//! Saturating arc capacities with a distinguished infinity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An arc capacity (or cut cost): a non-negative integer or infinity.
///
/// COCO sets the cost of arcs that must never participate in a cut —
/// special source/sink arcs and arcs violating Properties 1–3 — to
/// infinity. `Capacity` makes that sentinel explicit and keeps all
/// arithmetic saturating so a sum involving infinity stays infinite.
///
/// ```
/// use gmt_graph::Capacity;
/// assert!(Capacity::INFINITE > Capacity::finite(u64::MAX / 2));
/// assert_eq!(Capacity::INFINITE + Capacity::finite(7), Capacity::INFINITE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Capacity(u64);

impl Capacity {
    /// The infinite capacity: never exhausted by augmentation, never cut.
    pub const INFINITE: Capacity = Capacity(u64::MAX);

    /// The zero capacity.
    pub const ZERO: Capacity = Capacity(0);

    /// A finite capacity of `value` units.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX`, which is reserved for
    /// [`Capacity::INFINITE`].
    pub fn finite(value: u64) -> Capacity {
        assert!(value != u64::MAX, "u64::MAX is reserved for Capacity::INFINITE");
        Capacity(value)
    }

    /// Whether this capacity is the infinite sentinel.
    pub fn is_infinite(self) -> bool {
        self == Capacity::INFINITE
    }

    /// Whether this capacity is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The numeric value of a finite capacity.
    ///
    /// Returns `None` for [`Capacity::INFINITE`].
    pub fn value(self) -> Option<u64> {
        if self.is_infinite() {
            None
        } else {
            Some(self.0)
        }
    }

    /// The smaller of two capacities.
    pub fn min(self, other: Capacity) -> Capacity {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Capacity {
    type Output = Capacity;

    fn add(self, rhs: Capacity) -> Capacity {
        if self.is_infinite() || rhs.is_infinite() {
            Capacity::INFINITE
        } else {
            Capacity(self.0.saturating_add(rhs.0).min(u64::MAX - 1))
        }
    }
}

impl AddAssign for Capacity {
    fn add_assign(&mut self, rhs: Capacity) {
        *self = *self + rhs;
    }
}

impl Sub for Capacity {
    type Output = Capacity;

    /// Saturating subtraction; subtracting anything from infinity leaves
    /// infinity (an infinite-capacity arc is never exhausted).
    fn sub(self, rhs: Capacity) -> Capacity {
        if self.is_infinite() {
            Capacity::INFINITE
        } else {
            Capacity(self.0.saturating_sub(rhs.0))
        }
    }
}

impl Sum for Capacity {
    fn sum<I: Iterator<Item = Capacity>>(iter: I) -> Capacity {
        iter.fold(Capacity::ZERO, |a, b| a + b)
    }
}

impl Default for Capacity {
    fn default() -> Capacity {
        Capacity::ZERO
    }
}

impl From<u64> for Capacity {
    fn from(value: u64) -> Capacity {
        Capacity::finite(value)
    }
}

impl fmt::Debug for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_arithmetic() {
        assert_eq!(Capacity::finite(2) + Capacity::finite(3), Capacity::finite(5));
        assert_eq!(Capacity::finite(5) - Capacity::finite(3), Capacity::finite(2));
        assert_eq!(Capacity::finite(1) - Capacity::finite(3), Capacity::ZERO);
    }

    #[test]
    fn infinity_absorbs() {
        assert_eq!(Capacity::INFINITE + Capacity::finite(1), Capacity::INFINITE);
        assert_eq!(Capacity::INFINITE - Capacity::finite(1_000_000), Capacity::INFINITE);
        assert!(Capacity::INFINITE.is_infinite());
        assert!(!Capacity::finite(0).is_infinite());
    }

    #[test]
    fn saturating_add_does_not_reach_infinity() {
        let big = Capacity::finite(u64::MAX - 1);
        assert!(!(big + big).is_infinite());
    }

    #[test]
    fn ordering_places_infinity_last() {
        let mut v = vec![Capacity::INFINITE, Capacity::finite(3), Capacity::ZERO];
        v.sort();
        assert_eq!(v, vec![Capacity::ZERO, Capacity::finite(3), Capacity::INFINITE]);
    }

    #[test]
    fn value_roundtrip() {
        assert_eq!(Capacity::finite(42).value(), Some(42));
        assert_eq!(Capacity::INFINITE.value(), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn finite_rejects_sentinel() {
        let _ = Capacity::finite(u64::MAX);
    }

    #[test]
    fn sum_of_capacities() {
        let total: Capacity = [1u64, 2, 3].iter().map(|&v| Capacity::finite(v)).sum();
        assert_eq!(total, Capacity::finite(6));
    }
}
