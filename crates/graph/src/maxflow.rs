//! Max-flow algorithms: Edmonds–Karp and Dinic.
//!
//! Both operate on the residual representation inside
//! [`FlowNetwork`](crate::FlowNetwork). If an augmenting path consists
//! entirely of infinite-capacity arcs the flow value is infinite and the
//! solve returns [`Capacity::INFINITE`] immediately — COCO interprets
//! that as "no feasible communication placement on this graph".

use crate::capacity::Capacity;
use crate::flow::{FlowNetwork, FlowNode};
use std::collections::VecDeque;

/// Which max-flow algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaxFlowAlgo {
    /// BFS augmenting paths; `O(V·E²)`. The algorithm used in the paper
    /// (§4: "Our current implementation of COCO uses Edmonds-Karp's
    /// min-cut algorithm").
    EdmondsKarp,
    /// Level graphs + blocking flows; `O(V²·E)`. The "faster min-cut
    /// algorithm" the paper suggests for production compilers.
    Dinic,
}

/// Edmonds–Karp: repeatedly push along a shortest augmenting path.
pub(crate) fn edmonds_karp(
    net: &mut FlowNetwork,
    source: FlowNode,
    sink: FlowNode,
) -> Capacity {
    let mut total = Capacity::ZERO;
    loop {
        // BFS for the shortest residual path, remembering the half-arc
        // used to enter each node.
        let n = net.node_count();
        let mut pred_half: Vec<Option<u32>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[source.index()] = true;
        let mut queue = VecDeque::from([source]);
        'bfs: while let Some(u) = queue.pop_front() {
            for &half in net.half_arcs_from(u) {
                if net.half_residual(half).is_zero() {
                    continue;
                }
                let v = net.half_head(half);
                if visited[v.index()] {
                    continue;
                }
                visited[v.index()] = true;
                pred_half[v.index()] = Some(half);
                if v == sink {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        if !visited[sink.index()] {
            return total;
        }
        // Bottleneck along the path.
        let mut bottleneck = Capacity::INFINITE;
        let mut v = sink;
        while v != source {
            let half = pred_half[v.index()].expect("path reconstruction");
            bottleneck = bottleneck.min(net.half_residual(half));
            v = net.half_head(half ^ 1);
        }
        if bottleneck.is_infinite() {
            return Capacity::INFINITE;
        }
        // Apply.
        let mut v = sink;
        while v != source {
            let half = pred_half[v.index()].expect("path reconstruction");
            net.push_flow(half, bottleneck);
            v = net.half_head(half ^ 1);
        }
        total += bottleneck;
    }
}

/// Dinic: BFS level graph, then DFS blocking flow.
pub(crate) fn dinic(net: &mut FlowNetwork, source: FlowNode, sink: FlowNode) -> Capacity {
    let n = net.node_count();
    let mut total = Capacity::ZERO;
    loop {
        // Level graph via BFS on positive-residual arcs.
        let mut level = vec![u32::MAX; n];
        level[source.index()] = 0;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &half in net.half_arcs_from(u) {
                if net.half_residual(half).is_zero() {
                    continue;
                }
                let v = net.half_head(half);
                if level[v.index()] == u32::MAX {
                    level[v.index()] = level[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink.index()] == u32::MAX {
            return total;
        }
        // Blocking flow with per-node arc cursors (current-arc heuristic).
        let mut cursor = vec![0usize; n];
        loop {
            let pushed = dinic_dfs(net, source, sink, Capacity::INFINITE, &level, &mut cursor);
            if pushed.is_zero() {
                break;
            }
            if pushed.is_infinite() {
                return Capacity::INFINITE;
            }
            total += pushed;
        }
    }
}

/// DFS one augmenting path through the level graph; returns the amount
/// pushed (zero when no path remains).
fn dinic_dfs(
    net: &mut FlowNetwork,
    u: FlowNode,
    sink: FlowNode,
    limit: Capacity,
    level: &[u32],
    cursor: &mut [usize],
) -> Capacity {
    if u == sink {
        return limit;
    }
    while cursor[u.index()] < net.half_arcs_from(u).len() {
        let half = net.half_arcs_from(u)[cursor[u.index()]];
        let v = net.half_head(half);
        let res = net.half_residual(half);
        if !res.is_zero() && level[v.index()] == level[u.index()] + 1 {
            let pushed = dinic_dfs(net, v, sink, limit.min(res), level, cursor);
            if !pushed.is_zero() {
                if pushed.is_infinite() {
                    return Capacity::INFINITE;
                }
                net.push_flow(half, pushed);
                return pushed;
            }
        }
        cursor[u.index()] += 1;
    }
    Capacity::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random-ish deterministic networks; both algorithms must agree.
    #[test]
    fn algorithms_agree_on_grid() {
        // 4x4 grid, capacities derived from position.
        let build = || {
            let mut net = FlowNetwork::new();
            let nodes: Vec<Vec<FlowNode>> = (0..4)
                .map(|_| (0..4).map(|_| net.add_node()).collect())
                .collect();
            for r in 0..4 {
                for c in 0..4 {
                    if c + 1 < 4 {
                        net.add_arc(
                            nodes[r][c],
                            nodes[r][c + 1],
                            Capacity::finite(((r * 7 + c * 3) % 9 + 1) as u64),
                        );
                    }
                    if r + 1 < 4 {
                        net.add_arc(
                            nodes[r][c],
                            nodes[r + 1][c],
                            Capacity::finite(((r * 5 + c * 11) % 9 + 1) as u64),
                        );
                    }
                }
            }
            (net, nodes[0][0], nodes[3][3])
        };
        let (net1, s1, t1) = build();
        let (net2, s2, t2) = build();
        let ek = net1.min_cut_with(s1, t1, MaxFlowAlgo::EdmondsKarp);
        let di = net2.min_cut_with(s2, t2, MaxFlowAlgo::Dinic);
        assert_eq!(ek.value, di.value);
    }

    #[test]
    fn infinite_path_detected_by_both() {
        for algo in [MaxFlowAlgo::EdmondsKarp, MaxFlowAlgo::Dinic] {
            let mut net = FlowNetwork::new();
            let s = net.add_node();
            let a = net.add_node();
            let t = net.add_node();
            net.add_arc(s, a, Capacity::INFINITE);
            net.add_arc(a, t, Capacity::INFINITE);
            assert_eq!(net.max_flow(s, t, algo), Capacity::INFINITE, "{:?}", algo);
        }
    }

    #[test]
    fn finite_and_infinite_mix() {
        // Infinite arc into a finite bottleneck: flow is finite.
        for algo in [MaxFlowAlgo::EdmondsKarp, MaxFlowAlgo::Dinic] {
            let mut net = FlowNetwork::new();
            let s = net.add_node();
            let a = net.add_node();
            let t = net.add_node();
            net.add_arc(s, a, Capacity::INFINITE);
            net.add_arc(a, t, Capacity::finite(4));
            assert_eq!(net.max_flow(s, t, algo), Capacity::finite(4), "{:?}", algo);
        }
    }
}
