//! The worked examples of the paper (Figures 3, 4, and 5), asserted at
//! the level of COCO's chosen placements and the resulting dynamic
//! behavior.

use gmt_core::{optimize, verify_mt, CocoConfig, MtVerifyError};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::{BinOp, BlockId, Function, FunctionBuilder, Op, Profile, Reg};
use gmt_mtcg::{CommKind, CommPoint};
use gmt_pdg::{Partition, Pdg, ThreadId};

fn exec() -> ExecConfig {
    ExecConfig { max_steps: 10_000_000 }
}

/// Figure 3: r1 defined in B1 (A) and B2 (E), used in B3 (F, thread 2).
/// MTCG communicates r1 twice on the path B1,B2,B3 and must duplicate
/// branch D; COCO should communicate once at the start of B3 and avoid
/// making B1's branch relevant to thread 2.
///
/// CFG:  B1 { A: r1 = x*2; B: br (x<10) -> B3 | B2 }
///       B2 { C: output x; E: r1 = x+1 } -> B3
///       B3 { F: y = r1+7 (T1); G: output y; ret }
struct Fig3 {
    f: Function,
    partition: Partition,
    r1: Reg,
    branch_b: gmt_ir::InstrId,
    b3: BlockId,
}

fn figure3() -> Fig3 {
    let mut b = FunctionBuilder::new("fig3");
    let x = b.param();
    let r1 = b.fresh_reg();
    let b2 = b.block("B2");
    let b3 = b.block("B3");
    b.bin_into(BinOp::Mul, r1, x, 2i64); // A
    let c1 = b.bin(BinOp::Lt, x, 10i64);
    b.branch(c1, b3, b2); // B
    b.switch_to(b2);
    b.output(x); // C
    b.bin_into(BinOp::Add, r1, x, 1i64); // E
    b.jump(b3);
    b.switch_to(b3);
    let y = b.bin(BinOp::Add, r1, 7i64); // F
    b.output(y); // G
    b.ret(Some(y.into()));
    let f = b.finish().unwrap();
    let branch_b = f.block(f.entry()).terminator.unwrap();
    let f_instr = f
        .all_instrs()
        .find(|&i| matches!(f.instr(i), Op::Bin(BinOp::Add, _, _, gmt_ir::Operand::Imm(7))))
        .unwrap();
    let mut partition = Partition::new(2);
    for i in f.all_instrs() {
        partition.assign(i, ThreadId(0));
    }
    partition.assign(f_instr, ThreadId(1));
    Fig3 { f, partition, r1, branch_b, b3 }
}

#[test]
fn fig3_coco_communicates_once_at_b3() {
    let Fig3 { f, partition, r1, branch_b, b3 } = figure3();
    let pdg = Pdg::build(&f);
    let profile = Profile::uniform(&f, 10);
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let pts = plan.points(CommKind::Register(r1), ThreadId(0), ThreadId(1));
    assert_eq!(
        pts.into_iter().collect::<Vec<_>>(),
        vec![CommPoint::BlockStart(b3)],
        "r1 should be communicated exactly once, at the start of B3"
    );
    // Branch B must NOT be relevant to thread 1 under COCO.
    assert!(
        !plan.relevant_branches(ThreadId(1)).contains(&branch_b),
        "COCO placement makes the branch duplication unnecessary"
    );
    // And no operand communication for branch B's condition either.
    let Op::Branch { cond, .. } = *f.instr(branch_b) else { unreachable!() };
    assert!(plan.points(CommKind::Register(cond), ThreadId(0), ThreadId(1)).is_empty());
}

#[test]
fn fig3_baseline_communicates_twice_with_branch() {
    let Fig3 { f, partition, r1, branch_b, .. } = figure3();
    let pdg = Pdg::build(&f);
    let baseline = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
    let pts = baseline.points(CommKind::Register(r1), ThreadId(0), ThreadId(1));
    assert_eq!(pts.len(), 2, "baseline sends r1 after each def");
    assert!(baseline.relevant_branches(ThreadId(1)).contains(&branch_b));
}

#[test]
fn fig3_coco_code_is_correct_and_cheaper() {
    let Fig3 { f, partition, .. } = figure3();
    let pdg = Pdg::build(&f);
    let profile = Profile::uniform(&f, 10);

    let base_out = gmt_mtcg::generate(&f, &pdg, &partition).unwrap();
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let coco_out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();

    for x in [3i64, 50] {
        let st = run(&f, &[x], &exec()).unwrap();
        for out in [&base_out, &coco_out] {
            let mt = run_mt(
                &out.threads,
                &[x],
                |_, _| {},
                &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
                &exec(),
            )
            .unwrap();
            assert_eq!(mt.return_value, st.return_value);
            assert_eq!(mt.output, st.output);
        }
    }
    // Dynamic communication: COCO strictly cheaper on the B2 path.
    let count = |out: &gmt_mtcg::MtcgOutput, x: i64| {
        run_mt(
            &out.threads,
            &[x],
            |_, _| {},
            &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
            &exec(),
        )
        .unwrap()
        .totals()
        .comm_total()
    };
    assert!(count(&coco_out, 50) < count(&base_out, 50));
    assert!(count(&coco_out, 3) <= count(&base_out, 3));
}

/// Figure 4: loop 1 (A,B,C in T_s) computes r1 each iteration; loop 2
/// (D,E,F in T_t) consumes only the final value. MTCG communicates r1
/// inside loop 1 (10 times) and drags loop 1's control flow into T_t;
/// COCO communicates once after the loop and removes loop 1 from T_t
/// entirely.
struct Fig4 {
    f: Function,
    partition: Partition,
    r1: Reg,
    loop1_branch: gmt_ir::InstrId,
}

fn figure4() -> Fig4 {
    let mut b = FunctionBuilder::new("fig4");
    let n = b.param();
    let i = b.fresh_reg();
    let r1 = b.fresh_reg();
    let j = b.fresh_reg();
    let acc = b.fresh_reg();
    let l1 = b.block("L1");
    let mid = b.block("mid");
    let l2 = b.block("L2");
    let exit = b.block("exit");
    // A: i = 0 (plus r1 init)
    b.const_into(i, 0);
    b.const_into(r1, 0);
    b.jump(l1);
    // L1: B: r1 = r1 + i ; i++ ; C: br i < n
    b.switch_to(l1);
    b.bin_into(BinOp::Add, r1, r1, i);
    b.bin_into(BinOp::Add, i, i, 1i64);
    let c1 = b.bin(BinOp::Lt, i, n);
    b.branch(c1, l1, mid);
    // mid: D: j = 0
    b.switch_to(mid);
    b.const_into(j, 0);
    b.const_into(acc, 0);
    b.jump(l2);
    // L2: E: acc += r1 * j ; j++ ; F: br j < n
    b.switch_to(l2);
    let prod = b.bin(BinOp::Mul, r1, j);
    b.bin_into(BinOp::Add, acc, acc, prod);
    b.bin_into(BinOp::Add, j, j, 1i64);
    let c2 = b.bin(BinOp::Lt, j, n);
    b.branch(c2, l2, exit);
    b.switch_to(exit);
    b.output(acc);
    b.ret(Some(acc.into()));
    let f = b.finish().unwrap();
    let loop1_branch = f.block(BlockId(1)).terminator.unwrap();

    // Threads: loop 1 (entry + L1) on T0; mid/L2/exit on T1.
    let mut partition = Partition::new(2);
    for blk in f.blocks() {
        let t = if blk.index() <= 1 { ThreadId(0) } else { ThreadId(1) };
        for ins in f.block(blk).all_instrs() {
            partition.assign(ins, t);
        }
    }
    Fig4 { f, partition, r1, loop1_branch }
}

#[test]
fn fig4_coco_sinks_communication_below_the_loop() {
    let Fig4 { f, partition, r1, loop1_branch } = figure4();
    let pdg = Pdg::build(&f);
    // Profile with a 10-iteration loop.
    let profile = run(&f, &[10], &exec()).unwrap().profile;
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let pts = plan.points(CommKind::Register(r1), ThreadId(0), ThreadId(1));
    assert_eq!(pts.len(), 1, "single communication point: {pts:?}");
    // The point must be outside loop 1 (not in block L1).
    let p = *pts.iter().next().unwrap();
    assert_ne!(p.block(&f), BlockId(1), "communication must be after the loop");
    // Loop 1's branch must not be relevant to T1.
    assert!(!plan.relevant_branches(ThreadId(1)).contains(&loop1_branch));
}

#[test]
fn fig4_baseline_communicates_every_iteration() {
    let Fig4 { f, partition, r1, loop1_branch } = figure4();
    let pdg = Pdg::build(&f);
    let baseline = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
    let pts = baseline.points(CommKind::Register(r1), ThreadId(0), ThreadId(1));
    assert!(pts
        .iter()
        .any(|p| p.block(&f) == BlockId(1)), "baseline communicates inside the loop");
    assert!(baseline.relevant_branches(ThreadId(1)).contains(&loop1_branch));
}

#[test]
fn fig4_dynamic_reduction_matches_paper_shape() {
    let Fig4 { f, partition, .. } = figure4();
    let pdg = Pdg::build(&f);
    let profile = run(&f, &[10], &exec()).unwrap().profile;

    let base_out = gmt_mtcg::generate(&f, &pdg, &partition).unwrap();
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let coco_out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();

    let st = run(&f, &[10], &exec()).unwrap();
    let run_and_count = |out: &gmt_mtcg::MtcgOutput| {
        let mt = run_mt(
            &out.threads,
            &[10],
            |_, _| {},
            &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
            &exec(),
        )
        .unwrap();
        assert_eq!(mt.return_value, st.return_value);
        assert_eq!(mt.output, st.output);
        mt.totals().comm_total()
    };
    let base_comm = run_and_count(&base_out);
    let coco_comm = run_and_count(&coco_out);
    // Paper: from one communication per iteration (plus branch operands)
    // down to one. Expect a large reduction, like ks' 73.7%.
    assert!(
        coco_comm * 3 <= base_comm,
        "expected >=3x reduction, got {base_comm} -> {coco_comm}"
    );
    // T1 must execute fewer total instructions (the loop disappeared).
    let coco_mt = run_mt(
        &coco_out.threads,
        &[10],
        |_, _| {},
        &QueueConfig { num_queues: coco_out.num_queues.max(1) as usize, capacity: 32 },
        &exec(),
    )
    .unwrap();
    let base_mt = run_mt(
        &base_out.threads,
        &[10],
        |_, _| {},
        &QueueConfig { num_queues: base_out.num_queues.max(1) as usize, capacity: 32 },
        &exec(),
    )
    .unwrap();
    assert!(
        coco_mt.per_thread[1].total() < base_mt.per_thread[1].total(),
        "thread 1 should shrink: {} vs {}",
        coco_mt.per_thread[1].total(),
        base_mt.per_thread[1].total()
    );
}

/// Figure 5 (memory part): two memory dependences from T_s to T_t that
/// can share one synchronization point.
#[test]
fn fig5_memory_syncs_are_shared() {
    // T0: store x; store y (in sequence, hot block)
    // T1: load y; load x (later block)
    let mut b = FunctionBuilder::new("fig5m");
    let objx = b.object("x", 2);
    let objy = b.object("y", 2);
    let later = b.block("later");
    let px = b.lea(objx, 0);
    let py = b.lea(objy, 0);
    b.store(px, 0, 11i64); // D: writes x... (paper: y)
    b.store(py, 0, 22i64); // G: writes y
    b.jump(later);
    b.switch_to(later);
    let px2 = b.lea(objx, 0);
    let py2 = b.lea(objy, 0);
    let vy = b.load(py2, 0); // J
    let vx = b.load(px2, 0); // K
    let sum = b.bin(BinOp::Add, vy, vx);
    b.output(sum);
    b.ret(None);
    let f = b.finish().unwrap();

    // Stores on T0; everything in `later` on T1; leas split accordingly.
    let mut partition = Partition::new(2);
    for blk in f.blocks() {
        let t = if blk == f.entry() { ThreadId(0) } else { ThreadId(1) };
        for ins in f.block(blk).all_instrs() {
            partition.assign(ins, t);
        }
    }
    let pdg = Pdg::build(&f);
    let profile = Profile::uniform(&f, 100);
    let (plan, stats) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let pts = plan.points(CommKind::Memory, ThreadId(0), ThreadId(1));
    assert_eq!(pts.len(), 1, "both memory deps share one sync point: {pts:?}");
    // Both deps optimized (counted once per Algorithm 2 iteration).
    assert!(stats.memory_deps_optimized >= 2);
    assert_eq!(stats.memory_fallbacks, 0);

    // Baseline uses one sync per source store.
    let baseline = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
    let base_pts = baseline.points(CommKind::Memory, ThreadId(0), ThreadId(1));
    assert_eq!(base_pts.len(), 2);

    // Correctness of the shared-sync code.
    let st = run(&f, &[], &exec()).unwrap();
    let out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();
    let mt = run_mt(
        &out.threads,
        &[],
        |_, _| {},
        &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 1 },
        &exec(),
    )
    .unwrap();
    assert_eq!(mt.output, st.output);
}

/// Figure 5 (register part, §3.1.2): r1 is defined in both arms of a
/// hammock in T_s and consumed-and-redefined by F in T_t. Two min-cost
/// cuts exist — at the two arms (B3+B4) or at the join (B6) — but the
/// arm cut drags the hammock branch into T_t. The control-flow
/// penalties must steer the cut to the join.
#[test]
fn fig5_penalties_prefer_the_join() {
    let mut b = FunctionBuilder::new("fig5r");
    let x = b.param();
    let r1 = b.fresh_reg();
    let b3 = b.block("B3");
    let b4 = b.block("B4");
    let b6 = b.block("B6");
    let b7 = b.block("B7");
    // B2: branch B.
    let cond = b.bin(BinOp::Lt, x, 4i64);
    let branch_b = b.branch(cond, b3, b4);
    // B3: C defines r1.
    b.switch_to(b3);
    b.bin_into(BinOp::Add, r1, x, 10i64);
    b.jump(b6);
    // B4: D defines r1.
    b.switch_to(b4);
    b.bin_into(BinOp::Mul, r1, x, 3i64);
    b.jump(b6);
    // B6: G (plain T_s work).
    b.switch_to(b6);
    let g = b.bin(BinOp::Add, x, 1i64);
    b.output(g);
    b.jump(b7);
    // B7: F consumes and redefines r1 (T_t).
    b.switch_to(b7);
    b.bin_into(BinOp::Add, r1, r1, 100i64);
    b.output(r1);
    b.ret(Some(r1.into()));
    let f = b.finish().unwrap();

    // Threads: everything T0 except B7's instructions (T1).
    let mut partition = Partition::new(2);
    for blk in f.blocks() {
        let t = if blk == gmt_ir::BlockId(4) { ThreadId(1) } else { ThreadId(0) };
        for i in f.block(blk).all_instrs() {
            partition.assign(i, t);
        }
    }
    let pdg = Pdg::build(&f);
    let profile = Profile::uniform(&f, 4);

    // With penalties: single point at the join; branch B stays
    // irrelevant to T1.
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let pts = plan.points(CommKind::Register(r1), ThreadId(0), ThreadId(1));
    assert_eq!(pts.len(), 1, "one communication point: {pts:?}");
    let p = *pts.iter().next().unwrap();
    assert!(
        p.block(&f) != gmt_ir::BlockId(1) && p.block(&f) != gmt_ir::BlockId(2),
        "must not sit in the hammock arms: {p:?}"
    );
    assert!(
        !plan.relevant_branches(ThreadId(1)).contains(&branch_b),
        "branch B must stay irrelevant to T_t"
    );

    // Code is correct on both paths either way.
    let out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();
    for x in [1i64, 9] {
        let st = run(&f, &[x], &exec()).unwrap();
        let mt = run_mt(
            &out.threads,
            &[x],
            |_, _| {},
            &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 1 },
            &exec(),
        )
        .unwrap();
        assert_eq!(mt.return_value, st.return_value);
        assert_eq!(mt.output, st.output);
    }
}

/// The static queue-protocol validator on the paper's worked examples:
/// the generated code of each figure — baseline MTCG and COCO alike —
/// must verify cleanly at the strictest queue depth, and a single
/// mutated communication placement per figure must be rejected with
/// the exact violation class it introduces.
#[test]
fn fig3_verifies_and_rejects_a_hoisted_placement() {
    let Fig3 { f, partition, r1, .. } = figure3();
    let pdg = Pdg::build(&f);
    let profile = Profile::uniform(&f, 10);
    let base_out = gmt_mtcg::generate(&f, &pdg, &partition).unwrap();
    assert!(verify_mt(&f, &partition, &pdg, &base_out, &[1]).is_empty());
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let mut out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();
    assert!(verify_mt(&f, &partition, &pdg, &out, &[1]).is_empty());

    // Mutation: hoist r1's single point from the start of B3 to the
    // start of B1 — before both defs. The consumer would read garbage.
    let mut pts = std::collections::BTreeSet::new();
    pts.insert(CommPoint::BlockStart(f.entry()));
    out.plan.set_points(CommKind::Register(r1), ThreadId(0), ThreadId(1), pts);
    let errs = verify_mt(&f, &partition, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(e, MtVerifyError::StaleValue { reg, .. } if *reg == r1)),
        "hoisted placement not rejected: {errs:?}"
    );
}

#[test]
fn fig4_verifies_and_rejects_a_point_inside_the_loop() {
    let Fig4 { f, partition, r1, .. } = figure4();
    let pdg = Pdg::build(&f);
    let profile = run(&f, &[10], &exec()).unwrap().profile;
    let base_out = gmt_mtcg::generate(&f, &pdg, &partition).unwrap();
    assert!(verify_mt(&f, &partition, &pdg, &base_out, &[1]).is_empty());
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let mut out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();
    assert!(verify_mt(&f, &partition, &pdg, &out, &[1]).is_empty());

    // Mutation: pull COCO's below-the-loop point back up to the start
    // of L1 — the loop body redefines r1 after the send every
    // iteration, so loop 2 would consume a stale partial sum.
    let mut pts = std::collections::BTreeSet::new();
    pts.insert(CommPoint::BlockStart(BlockId(1)));
    out.plan.set_points(CommKind::Register(r1), ThreadId(0), ThreadId(1), pts);
    let errs = verify_mt(&f, &partition, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(e, MtVerifyError::StaleValue { reg, .. } if *reg == r1)),
        "in-loop placement not rejected: {errs:?}"
    );
}

#[test]
fn fig5_verifies_and_rejects_an_uncovering_sync_move() {
    // Rebuild the Figure 5 memory example.
    let mut b = FunctionBuilder::new("fig5m");
    let objx = b.object("x", 2);
    let objy = b.object("y", 2);
    let later = b.block("later");
    let px = b.lea(objx, 0);
    let py = b.lea(objy, 0);
    b.store(px, 0, 11i64);
    b.store(py, 0, 22i64);
    b.jump(later);
    b.switch_to(later);
    let px2 = b.lea(objx, 0);
    let py2 = b.lea(objy, 0);
    let vy = b.load(py2, 0);
    let vx = b.load(px2, 0);
    let sum = b.bin(BinOp::Add, vy, vx);
    b.output(sum);
    b.ret(None);
    let f = b.finish().unwrap();
    let mut partition = Partition::new(2);
    for blk in f.blocks() {
        let t = if blk == f.entry() { ThreadId(0) } else { ThreadId(1) };
        for ins in f.block(blk).all_instrs() {
            partition.assign(ins, t);
        }
    }
    let pdg = Pdg::build(&f);
    let profile = Profile::uniform(&f, 100);
    let (plan, _) = optimize(&f, &pdg, &partition, &profile, &CocoConfig::default());
    let mut out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();
    assert!(verify_mt(&f, &partition, &pdg, &out, &[1]).is_empty());

    // Mutation: move the shared sync to the start of the entry block —
    // before both stores, so neither store-to-load dependence crosses
    // it anymore.
    let mut pts = std::collections::BTreeSet::new();
    pts.insert(CommPoint::BlockStart(f.entry()));
    out.plan.set_points(CommKind::Memory, ThreadId(0), ThreadId(1), pts);
    let errs = verify_mt(&f, &partition, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(e, MtVerifyError::UncoveredMemoryDep { .. })),
        "uncovering sync move not rejected: {errs:?}"
    );
}
