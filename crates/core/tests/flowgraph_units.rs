//! Unit-level tests of COCO's building blocks: thread-aware liveness
//! maps, `G_f` construction, safety-driven infinite arcs, and the
//! §3.1.2 penalties, on hand-built CFGs where the expected graphs are
//! known exactly.

use gmt_core::{GfBuilder, LiveMap, PosGraph, Safety};
use gmt_graph::MaxFlowAlgo;
use gmt_ir::{BinOp, ControlDeps, Function, FunctionBuilder, InstrId, PostDominators, Profile};
use gmt_mtcg::CommPoint;
use gmt_pdg::{Partition, ThreadId};
use std::collections::BTreeSet;

/// entry: r1 = x+1 (T0) ; use: output r1 (T1) ; ret (T0).
fn straight() -> (Function, Partition, gmt_ir::Reg, InstrId, InstrId) {
    let mut b = FunctionBuilder::new("s");
    let x = b.param();
    let r1 = b.bin(BinOp::Add, x, 1i64);
    b.output(r1);
    b.ret(None);
    let f = b.finish().unwrap();
    let instrs: Vec<_> = f.all_instrs().collect();
    let mut p = Partition::new(2);
    p.assign(instrs[0], ThreadId(0));
    p.assign(instrs[1], ThreadId(1));
    p.assign(instrs[2], ThreadId(0));
    (f, p, r1, instrs[0], instrs[1])
}

#[test]
fn livemap_tracks_def_to_use() {
    let (f, p, r1, def, usei) = straight();
    let live = LiveMap::compute(&f, r1, |i| p.thread_of(i) == ThreadId(1));
    assert!(!live.live_before(def), "not live before its def");
    assert!(live.live_after(def));
    assert!(live.live_before(usei));
    assert!(!live.live_after(usei), "dead after the last use");
}

#[test]
fn livemap_ignores_filtered_uses() {
    let (f, _p, r1, def, _usei) = straight();
    // No instruction counts as a use: r1 never live.
    let live = LiveMap::compute(&f, r1, |_| false);
    assert!(!live.live_after(def));
}

fn builder_parts(
    f: &Function,
    p: &Partition,
    penalties: bool,
) -> (PosGraph, ControlDeps, Vec<u64>, Vec<BTreeSet<InstrId>>) {
    let profile = Profile::uniform(f, 10);
    let pos_graph = PosGraph::build(f, &profile);
    let pdom = PostDominators::compute(f);
    let cdeps = ControlDeps::compute(f, &pdom);
    let block_weights = profile.block_weights(f);
    let relevant = gmt_mtcg::relevant_branches(f, &cdeps, p, &gmt_mtcg::CommPlan::new(2));
    let _ = penalties;
    (pos_graph, cdeps, block_weights, relevant)
}

#[test]
fn register_gf_min_cut_is_the_single_link() {
    let (f, p, r1, def, usei) = straight();
    let (pos_graph, cdeps, block_weights, relevant) = builder_parts(&f, &p, true);
    let builder = GfBuilder {
        f: &f,
        pos_graph: &pos_graph,
        cdeps: &cdeps,
        partition: &p,
        relevant: &relevant,
        block_weights: &block_weights,
        control_penalties: true,
        s: ThreadId(0),
        t: ThreadId(1),
    };
    let safety = Safety::compute(&f, &p, ThreadId(0));
    let live = LiveMap::compute(&f, r1, |i| p.thread_of(i) == ThreadId(1));
    let points = builder
        .optimize_register(r1, &safety, &live, &[def], &[usei], MaxFlowAlgo::EdmondsKarp)
        .expect("feasible");
    assert_eq!(points.len(), 1);
    assert_eq!(points.into_iter().next(), Some(CommPoint::After(def)));
}

#[test]
fn register_gf_respects_safety_kill() {
    // r1 def (T0), then T1 redefines r1, then a T1 use: communication
    // after T1's redefinition is unsafe, so the only cut is before it.
    let mut b = FunctionBuilder::new("k");
    let x = b.param();
    let r1 = b.fresh_reg();
    b.bin_into(BinOp::Add, r1, x, 1i64); // i0: T0 def
    b.bin_into(BinOp::Mul, r1, r1, 2i64); // i1: T1 redefines (consumes)
    b.output(r1); // i2: T1 use
    b.ret(None); // i3
    let f = b.finish().unwrap();
    let instrs: Vec<_> = f.all_instrs().collect();
    let mut p = Partition::new(2);
    p.assign(instrs[0], ThreadId(0));
    p.assign(instrs[1], ThreadId(1));
    p.assign(instrs[2], ThreadId(1));
    p.assign(instrs[3], ThreadId(0));
    let (pos_graph, cdeps, block_weights, relevant) = builder_parts(&f, &p, true);
    let builder = GfBuilder {
        f: &f,
        pos_graph: &pos_graph,
        cdeps: &cdeps,
        partition: &p,
        relevant: &relevant,
        block_weights: &block_weights,
        control_penalties: true,
        s: ThreadId(0),
        t: ThreadId(1),
    };
    let safety = Safety::compute(&f, &p, ThreadId(0));
    assert!(safety.safe_after(instrs[0], r1));
    assert!(!safety.safe_after(instrs[1], r1), "stale after T1's redef");
    let live = LiveMap::compute(&f, r1, |i| p.thread_of(i) == ThreadId(1));
    let points = builder
        .optimize_register(
            r1,
            &safety,
            &live,
            &[instrs[0]],
            &[instrs[1]],
            MaxFlowAlgo::EdmondsKarp,
        )
        .expect("feasible");
    assert_eq!(points.into_iter().next(), Some(CommPoint::After(instrs[0])));
}

#[test]
fn register_gf_none_when_no_defs_in_source() {
    let (f, p, r1, _def, usei) = straight();
    let (pos_graph, cdeps, block_weights, relevant) = builder_parts(&f, &p, true);
    let builder = GfBuilder {
        f: &f,
        pos_graph: &pos_graph,
        cdeps: &cdeps,
        partition: &p,
        relevant: &relevant,
        block_weights: &block_weights,
        control_penalties: true,
        s: ThreadId(1), // wrong direction: T1 has no defs of r1
        t: ThreadId(0),
    };
    let safety = Safety::compute(&f, &p, ThreadId(1));
    let live = LiveMap::compute(&f, r1, |i| p.thread_of(i) == ThreadId(0));
    assert!(builder
        .optimize_register(r1, &safety, &live, &[], &[usei], MaxFlowAlgo::EdmondsKarp)
        .is_none());
}

#[test]
fn memory_gf_covers_whole_function() {
    let (f, p, _r1, def, usei) = straight();
    let (pos_graph, cdeps, block_weights, relevant) = builder_parts(&f, &p, true);
    let builder = GfBuilder {
        f: &f,
        pos_graph: &pos_graph,
        cdeps: &cdeps,
        partition: &p,
        relevant: &relevant,
        block_weights: &block_weights,
        control_penalties: true,
        s: ThreadId(0),
        t: ThreadId(1),
    };
    let (gf, commodities) = builder.build_memory(&[(def, usei)]);
    assert_eq!(commodities.len(), 1);
    // Every position of the function is a node: entry + 3 instrs.
    assert_eq!(gf.node_of.len(), 4);
    let cut = gf.net.min_cut(commodities[0].source, commodities[0].sink);
    assert!(cut.is_feasible());
    assert_eq!(gf.cut_points(&cut).len(), 1);
}
