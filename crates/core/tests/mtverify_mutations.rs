//! Validator soundness, mutation-tested: seed known-bad MT programs /
//! plans (swapped produce/consume endpoints, off-by-one queue, dropped
//! control duplication, depth-sensitive deadlock, stale register
//! placement, uncovered memory dependence) and assert [`verify_mt`]
//! catches each class with a queue-level witness — and stays silent on
//! the unmutated output.

use gmt_core::{verify_mt, MtVerifyError};
use gmt_ir::{BinOp, Function, FunctionBuilder, InstrId, Op, QueueId};
use gmt_mtcg::{CommKind, CommPlan, CommPoint, MtcgOutput, QueueLabel};
use gmt_pdg::{Partition, Pdg, ThreadId};
use std::collections::BTreeMap;

/// A branchy two-thread kernel with a register dep (y: T0 -> T1), a
/// condition delivery, and a memory dep (output -> output).
fn kernel() -> (Function, Partition) {
    let mut b = FunctionBuilder::new("k");
    let x = b.param();
    let y = b.fresh_reg();
    let b1 = b.block("b1");
    let b2 = b.block("b2");
    b.bin_into(BinOp::Mul, y, x, 2i64); // i1: y = x*2        (T0)
    let c = b.bin(BinOp::Lt, x, 10i64); // i2                  (T0)
    b.branch(c, b1, b2); // i3                                 (T0)
    b.switch_to(b1);
    b.bin_into(BinOp::Add, y, y, 1i64); // i4: y += 1          (T0)
    b.jump(b2); // i5
    b.switch_to(b2);
    b.output(x); // i6                                          (T0)
    b.output(y); // i7                                          (T1)
    b.ret(None); // i8
    let f = b.finish().unwrap();
    let mut p = Partition::new(2);
    for i in f.all_instrs() {
        p.assign(i, ThreadId(0));
    }
    let consumer = f
        .all_instrs()
        .filter(|&i| matches!(f.instr(i), Op::Output(_)))
        .nth(1)
        .unwrap();
    p.assign(consumer, ThreadId(1));
    (f, p)
}

fn generate(f: &Function, p: &Partition) -> (Pdg, MtcgOutput) {
    let pdg = Pdg::build(f);
    let out = gmt_mtcg::generate(f, &pdg, p).unwrap();
    (pdg, out)
}

#[test]
fn clean_output_verifies() {
    let (f, p) = kernel();
    let (pdg, out) = generate(&f, &p);
    for depth in [1, 32] {
        let errs = verify_mt(&f, &p, &pdg, &out, &[depth]);
        assert!(errs.is_empty(), "clean output flagged at depth {depth}: {errs:?}");
    }
}

#[test]
fn swapped_produce_consume_caught() {
    let (f, p) = kernel();
    let (pdg, mut out) = generate(&f, &p);
    // Turn the consumer's first consume into a produce on the same
    // queue: the queue's label says this thread is the consuming end.
    let tf = &mut out.threads[1];
    let i = tf
        .all_instrs()
        .find(|&i| matches!(tf.instr(i), Op::Consume { .. }))
        .expect("consumer thread has a consume");
    let Op::Consume { dst, queue } = *tf.instr(i) else { unreachable!() };
    *tf.instr_mut(i) = Op::Produce { queue, value: dst.into() };
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            MtVerifyError::EndpointViolation { thread: ThreadId(1), label, .. }
                if label.queue == queue
        )),
        "swap not caught: {errs:?}"
    );
}

#[test]
fn off_by_one_queue_caught() {
    let (f, p) = kernel();
    let (pdg, mut out) = generate(&f, &p);
    assert!(out.num_queues >= 2, "kernel must allocate several queues");
    let tf = &mut out.threads[1];
    let i = tf
        .all_instrs()
        .find(|&i| matches!(tf.instr(i), Op::Consume { .. }))
        .unwrap();
    let Op::Consume { dst, queue } = *tf.instr(i) else { unreachable!() };
    let wrong = QueueId((queue.0 + 1) % out.num_queues);
    *tf.instr_mut(i) = Op::Consume { dst, queue: wrong };
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            MtVerifyError::SequenceMismatch { produced, consumed, .. }
                if produced != consumed
        ) || matches!(e, MtVerifyError::UnlabeledQueue { .. })),
        "queue shift not caught: {errs:?}"
    );
}

#[test]
fn dropped_control_duplication_caught() {
    let (f, p) = kernel();
    let (pdg, mut out) = generate(&f, &p);
    let branch = f.all_instrs().find(|&i| f.instr(i).is_branch()).unwrap();
    assert!(
        out.plan.relevant_branches(ThreadId(1)).contains(&branch),
        "kernel must make T1 duplicate the branch"
    );
    // Rebuild the plan, dropping T1's duplication of the branch.
    let mut stripped = CommPlan::new(2);
    for item in out.plan.items() {
        stripped.set_points(item.kind, item.from, item.to, item.points);
    }
    for (t_idx, brs) in out.plan.all_relevant_branches().iter().enumerate() {
        for &br in brs {
            if !(t_idx == 1 && br == branch) {
                stripped.add_relevant_branch(ThreadId(t_idx as u32), br);
            }
        }
    }
    out.plan = stripped;
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            MtVerifyError::MissingControlDuplication { thread: ThreadId(1), branch: b }
                if *b == branch
        )),
        "dropped duplication not caught: {errs:?}"
    );
}

#[test]
fn stale_register_placement_caught() {
    let (f, p) = kernel();
    let (pdg, mut out) = generate(&f, &p);
    // Move one of y's communication points from after its redefinition
    // to before it: the consumer can now read the pre-increment value.
    let y = gmt_ir::Reg(1);
    let redef = f
        .all_instrs()
        .find(|&i| f.instr(i).def() == Some(y) && matches!(f.instr(i), Op::Bin(BinOp::Add, ..)))
        .expect("y += 1 exists");
    let mut pts = out.plan.points(CommKind::Register(y), ThreadId(0), ThreadId(1));
    assert!(pts.remove(&CommPoint::After(redef)), "baseline communicates after the redef");
    pts.insert(CommPoint::Before(redef));
    out.plan.set_points(CommKind::Register(y), ThreadId(0), ThreadId(1), pts);
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            MtVerifyError::StaleValue { reg, .. } if *reg == y
        )),
        "stale placement not caught: {errs:?}"
    );
}

#[test]
fn uncovered_memory_dep_caught() {
    let (f, p) = kernel();
    let (pdg, mut out) = generate(&f, &p);
    // Push the memory sync past the consuming output: the dependence
    // source -> sink path no longer crosses it.
    let sink = f
        .all_instrs()
        .filter(|&i| matches!(f.instr(i), Op::Output(_)))
        .nth(1)
        .unwrap();
    let mut pts = std::collections::BTreeSet::new();
    pts.insert(CommPoint::After(sink));
    out.plan.set_points(CommKind::Memory, ThreadId(0), ThreadId(1), pts);
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            MtVerifyError::UncoveredMemoryDep { dst, .. } if *dst == sink
        )),
        "uncovered memory dep not caught: {errs:?}"
    );
}

/// Hand-built output whose producer fills queue 0 twice before the
/// consumer's first consume can run: deadlocks when q0 has depth 1,
/// sound at depth >= 2. Returns `(f, partition, pdg, out)`; the
/// producer's burst sits in the (cold) entry block, so the profile-
/// weighted allocator grants every queue depth 1.
fn burst_output() -> (Function, Partition, Pdg, MtcgOutput) {
    // Original function: two T0 constants feeding T1 (conceptually).
    let mut b = FunctionBuilder::new("orig");
    let r1 = b.const_(1); // i0
    let r2 = b.const_(2); // i1
    b.ret(None); // i2
    let f = b.finish().unwrap();
    let mut p = Partition::new(2);
    for i in f.all_instrs() {
        p.assign(i, ThreadId(0));
    }
    let pdg = Pdg::build(&f);

    let q0 = QueueId(0);
    let q1 = QueueId(1);
    let producer = {
        let mut t = FunctionBuilder::new("t0");
        let v = t.const_(7);
        t.emit(Op::Produce { queue: q0, value: v.into() });
        t.emit(Op::Produce { queue: q0, value: v.into() });
        t.emit(Op::Produce { queue: q1, value: v.into() });
        t.ret(None);
        t.finish().unwrap()
    };
    let consumer = {
        let mut t = FunctionBuilder::new("t1");
        let a = t.fresh_reg();
        let b2 = t.fresh_reg();
        let c = t.fresh_reg();
        t.emit(Op::Consume { dst: a, queue: q1 });
        t.emit(Op::Consume { dst: b2, queue: q0 });
        t.emit(Op::Consume { dst: c, queue: q0 });
        t.ret(None);
        t.finish().unwrap()
    };
    let entry = f.entry();
    let origins: Vec<BTreeMap<_, _>> = vec![
        [(producer.entry(), entry)].into_iter().collect(),
        [(consumer.entry(), entry)].into_iter().collect(),
    ];
    let mut plan = CommPlan::new(2);
    let i0 = InstrId(0);
    let i1 = InstrId(1);
    plan.add_point(CommKind::Register(r1), ThreadId(0), ThreadId(1), CommPoint::After(i0));
    plan.add_point(CommKind::Register(r2), ThreadId(0), ThreadId(1), CommPoint::After(i1));
    let label = |queue, point, reg| QueueLabel {
        queue,
        point,
        kind: CommKind::Register(reg),
        from: ThreadId(0),
        to: ThreadId(1),
    };
    let out = MtcgOutput {
        threads: vec![producer, consumer],
        num_queues: 2,
        plan,
        queue_labels: vec![
            label(q0, CommPoint::After(i0), r1),
            label(q0, CommPoint::After(i0), r1),
            label(q1, CommPoint::After(i1), r2),
        ],
        origins,
    };
    (f, p, pdg, out)
}

/// The wait graph must close the burst cycle exactly at depth 1.
#[test]
fn depth_sensitive_deadlock_caught_at_depth_one_only() {
    let (f, p, pdg, out) = burst_output();
    let q0 = QueueId(0);
    let q1 = QueueId(1);

    let deep = verify_mt(&f, &p, &pdg, &out, &[2]);
    assert!(
        !deep.iter().any(|e| matches!(e, MtVerifyError::PotentialDeadlock { .. })),
        "depth 2 buffers the burst; no deadlock expected: {deep:?}"
    );
    let shallow = verify_mt(&f, &p, &pdg, &out, &[1]);
    let dl = shallow
        .iter()
        .find_map(|e| match e {
            MtVerifyError::PotentialDeadlock { witness } => Some(witness),
            _ => None,
        })
        .unwrap_or_else(|| panic!("depth 1 must deadlock: {shallow:?}"));
    // Every hop records the depth its queue was verified at.
    assert!(dl.iter().all(|s| s.depth == 1), "{dl:?}");
    // The witness names both threads and both queues.
    assert!(dl.iter().any(|s| s.thread == ThreadId(0) && s.queue == q0));
    assert!(dl.iter().any(|s| s.thread == ThreadId(1) && s.queue == q1));
}

/// The burst deadlock is depth-*vector* sensitive: a uniform depth-32
/// array hides it, while the profile-weighted allocation (every point
/// sits in the cold entry block, so every queue gets depth 1) exposes
/// it. The verifier must check at the depths the queues actually get.
#[test]
fn depth_sensitive_deadlock_caught_at_allocated_depths() {
    let (f, p, pdg, out) = burst_output();
    let allocated = gmt_mtcg::allocate_depths(
        &f,
        &gmt_ir::Profile::new(),
        &out.queue_labels,
        out.num_queues,
        32,
    );
    assert_eq!(allocated, vec![1, 1], "entry-block-only traffic is cold");

    let uniform = verify_mt(&f, &p, &pdg, &out, &[32]);
    assert!(
        !uniform.iter().any(|e| matches!(e, MtVerifyError::PotentialDeadlock { .. })),
        "uniform depth 32 buffers the burst: {uniform:?}"
    );
    let errs = verify_mt(&f, &p, &pdg, &out, &allocated);
    assert!(
        errs.iter().any(|e| matches!(e, MtVerifyError::PotentialDeadlock { .. })),
        "allocated depths must expose the burst deadlock: {errs:?}"
    );
}

/// Hand-built two-block output pair: each thread owns one block's value
/// and consumes the other's. `swap` reverses the block order of T0's
/// generated CFG — every per-block check still passes (each image in
/// isolation matches the plan), but T0 then holds out for q1 before
/// serving q0 while T1 does the opposite: a circular wait only visible
/// once the wait graph chains communication across block boundaries
/// along each thread's *generated* control flow.
fn cross_block_output(swap: bool) -> (Function, Partition, Pdg, MtcgOutput) {
    // Original: block A defines r0 (T0), block B defines r1 (T1).
    let mut b = FunctionBuilder::new("orig");
    let r0 = b.fresh_reg();
    let r1 = b.fresh_reg();
    let bb = b.block("B");
    b.const_into(r0, 1); // i0 (T0)
    b.jump(bb); // i1
    b.switch_to(bb);
    b.const_into(r1, 2); // i2 (T1)
    b.ret(None); // i3
    let f = b.finish().unwrap();
    let block_a = f.entry();
    let i0 = InstrId(0);
    let i2 = InstrId(2);
    let mut p = Partition::new(2);
    for i in f.all_instrs() {
        p.assign(i, ThreadId(0));
    }
    p.assign(i2, ThreadId(1));
    p.assign(InstrId(3), ThreadId(1));
    let pdg = Pdg::build(&f);

    let q0 = QueueId(0); // r0: T0 -> T1 at After(i0), in A
    let q1 = QueueId(1); // r1: T1 -> T0 at After(i2), in B
    let t0 = {
        let mut t = FunctionBuilder::new("t0");
        let c0 = t.fresh_reg(); // clone of r0
        let c1 = t.fresh_reg(); // consumed r1
        if swap {
            // Visits B's image first: waits on q1 before feeding q0.
            let a_img = t.block("A");
            t.emit(Op::Consume { dst: c1, queue: q1 });
            t.jump(a_img);
            t.switch_to(a_img);
            t.const_into(c0, 1);
            t.emit(Op::Produce { queue: q0, value: c0.into() });
            t.ret(None);
        } else {
            let b_img = t.block("B");
            t.const_into(c0, 1);
            t.emit(Op::Produce { queue: q0, value: c0.into() });
            t.jump(b_img);
            t.switch_to(b_img);
            t.emit(Op::Consume { dst: c1, queue: q1 });
            t.ret(None);
        }
        t.finish().unwrap()
    };
    let t1 = {
        let mut t = FunctionBuilder::new("t1");
        let c0 = t.fresh_reg(); // consumed r0
        let c1 = t.fresh_reg(); // clone of r1
        let b_img = t.block("B");
        t.emit(Op::Consume { dst: c0, queue: q0 });
        t.jump(b_img);
        t.switch_to(b_img);
        t.const_into(c1, 2);
        t.emit(Op::Produce { queue: q1, value: c1.into() });
        t.ret(None);
        t.finish().unwrap()
    };
    // Map generated blocks back to their originals.
    let t0_blocks: Vec<_> = t0.blocks().collect();
    let t0_origin: BTreeMap<_, _> = if swap {
        [(t0_blocks[0], bb), (t0_blocks[1], block_a)].into_iter().collect()
    } else {
        [(t0_blocks[0], block_a), (t0_blocks[1], bb)].into_iter().collect()
    };
    let t1_blocks: Vec<_> = t1.blocks().collect();
    let t1_origin: BTreeMap<_, _> =
        [(t1_blocks[0], block_a), (t1_blocks[1], bb)].into_iter().collect();

    let mut plan = CommPlan::new(2);
    plan.add_point(CommKind::Register(r0), ThreadId(0), ThreadId(1), CommPoint::After(i0));
    plan.add_point(CommKind::Register(r1), ThreadId(1), ThreadId(0), CommPoint::After(i2));
    let out = MtcgOutput {
        threads: vec![t0, t1],
        num_queues: 2,
        plan,
        queue_labels: vec![
            QueueLabel {
                queue: q0,
                point: CommPoint::After(i0),
                kind: CommKind::Register(r0),
                from: ThreadId(0),
                to: ThreadId(1),
            },
            QueueLabel {
                queue: q1,
                point: CommPoint::After(i2),
                kind: CommKind::Register(r1),
                from: ThreadId(1),
                to: ThreadId(0),
            },
        ],
        origins: vec![t0_origin, t1_origin],
    };
    (f, p, pdg, out)
}

/// The straight-order pair is genuinely clean: no check fires.
#[test]
fn cross_block_clean_pair_verifies() {
    let (f, p, pdg, out) = cross_block_output(false);
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(errs.is_empty(), "clean cross-block pair flagged: {errs:?}");
}

/// Reversing one thread's block order deadlocks — and only the
/// successor arcs of the wait graph can see it (every per-block
/// sequence still matches).
#[test]
fn cross_block_deadlock_caught_via_successor_arcs() {
    let (f, p, pdg, out) = cross_block_output(true);
    let errs = verify_mt(&f, &p, &pdg, &out, &[32]);
    let witness = errs
        .iter()
        .find_map(|e| match e {
            MtVerifyError::PotentialDeadlock { witness } => Some(witness),
            _ => None,
        })
        .unwrap_or_else(|| panic!("cross-block circular wait not caught: {errs:?}"));
    // The cycle crosses both threads and both queues, independent of
    // depth (no queue ever receives its first value).
    assert!(witness.iter().any(|s| s.thread == ThreadId(0) && s.queue == QueueId(1)));
    assert!(witness.iter().any(|s| s.thread == ThreadId(1) && s.queue == QueueId(0)));
}

/// Swapping a produce with the computation that feeds it leaves every
/// per-block queue *sequence* intact — only the positional plan↔code
/// replay notices the produce now precedes the instruction the plan
/// schedules it after.
#[test]
fn plan_code_position_mismatch_caught() {
    let (f, p) = kernel();
    let (pdg, mut out) = generate(&f, &p);
    // Find a produce in T0 whose in-block predecessor is a computation
    // and swap the two instructions.
    let tf = &mut out.threads[0];
    let mut target = None;
    'outer: for b in tf.blocks() {
        let instrs = &tf.block(b).instrs;
        for w in instrs.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            if matches!(tf.instr(cur), Op::Produce { .. })
                && !tf.instr(prev).is_communication()
            {
                target = Some((prev, cur));
                break 'outer;
            }
        }
    }
    let (prev, cur) = target.expect("T0 has a produce fed by a computation");
    let a = tf.instr(prev).clone();
    let b2 = tf.instr(cur).clone();
    *tf.instr_mut(prev) = b2;
    *tf.instr_mut(cur) = a;
    let errs = verify_mt(&f, &p, &pdg, &out, &[1]);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            MtVerifyError::PlanCodeMismatch { thread: ThreadId(0), .. }
        )),
        "position swap not caught: {errs:?}"
    );
}

/// Regression (found by the differential fuzzer): when a duplicated
/// branch's condition is defined on one thread but the branch is
/// *owned* by another, MTCG delivers def-owner -> branch-owner once and
/// lets the branch owner redistribute the condition to every
/// duplicating thread at `Before(branch)`. The staleness analysis used
/// to look only at direct pair deliveries, so the (def-owner ->
/// duplicating-thread) item — whose points predate a redefinition —
/// was flagged `StaleValue` even though the duplicated branch reads the
/// freshly forwarded copy.
#[test]
fn mediated_branch_condition_delivery_is_not_stale() {
    // entry: c = 3 (T2); a = c * 2 (T0, forces an early T2->T0 delivery
    // of c); loop: a += 1 (T0); c -= 1 (T2, redefinition); branch c
    // (T1, duplicated on T0 and T2); exit: output a (T0).
    let mut b = FunctionBuilder::new("mediated");
    let c = b.fresh_reg();
    let loop_b = b.block("loop");
    let exit_b = b.block("exit");
    b.const_into(c, 3);
    let a = b.bin(BinOp::Mul, c, 2i64);
    b.jump(loop_b);
    b.switch_to(loop_b);
    b.bin_into(BinOp::Add, a, a, 1i64);
    b.bin_into(BinOp::Add, c, c, -1i64);
    b.branch(c, loop_b, exit_b);
    b.switch_to(exit_b);
    b.output(a);
    b.ret(None);
    let f = b.finish().unwrap();

    let mut p = Partition::new(3);
    let ids: Vec<InstrId> = f.all_instrs().collect();
    let branch = *ids.iter().find(|&&i| f.instr(i).is_branch()).unwrap();
    for &i in &ids {
        let t = match f.instr(i) {
            _ if i == branch => ThreadId(1),
            Op::Const(r, _) | Op::Bin(_, r, _, _) if *r == c => ThreadId(2),
            _ => ThreadId(0),
        };
        p.assign(i, t);
    }
    let (pdg, out) = generate(&f, &p);

    // The plan must actually have the mediated shape this regression is
    // about: the branch owner (T1) forwards `c` to a duplicating thread
    // at Before(branch), while the def owner's (T2) own item to that
    // thread does not cover the branch. If MTCG's delivery strategy
    // changes, revisit this pin.
    let forwarded = out.plan.items().any(|it| {
        it.kind == CommKind::Register(c)
            && it.from == ThreadId(1)
            && it.points.contains(&CommPoint::Before(branch))
    });
    assert!(forwarded, "expected the branch owner to redistribute the condition");

    for depth in [1, 32] {
        let errs = verify_mt(&f, &p, &pdg, &out, &[depth]);
        assert!(errs.is_empty(), "mediated delivery flagged at depth {depth}: {errs:?}");
    }
}
