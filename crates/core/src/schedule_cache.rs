//! Candidate-schedule evaluation caching for partition arbitration.
//!
//! GREMIO arbitration compiles every candidate partition and times the
//! generated threads on the train input; the driver then re-probes the
//! winner (and the single-thread fallback) for the final guard
//! comparison, so identical candidates get evaluated repeatedly. A
//! [`ScheduleCache`] memoizes those timed evaluations at two levels:
//!
//! 1. **by partition** — the instruction→thread assignment vector,
//!    which is free to compute and catches exact re-probes of a
//!    candidate without recompiling it;
//! 2. **by decoded program** — the structural hash of the generated,
//!    decoded thread streams (mixed with the machine knobs that affect
//!    timing), which also catches distinct partitions that compile to
//!    identical code.
//!
//! Cached values are the deterministic simulator's cycle counts, so
//! arbitration decisions are identical with or without the cache.

use gmt_ir::Function;
use gmt_pdg::Partition;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A memo of timed candidate-schedule evaluations (see module docs).
#[derive(Clone, Debug, Default)]
pub struct ScheduleCache {
    partitions: HashMap<Vec<u32>, u64>,
    programs: HashMap<u64, u64>,
    probes: u64,
    hits: u64,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// Looks up a candidate by its partition key, counting one
    /// arbitration probe (and a hit when present).
    pub fn probe_partition(&mut self, key: &[u32]) -> Option<u64> {
        self.probes += 1;
        let found = self.partitions.get(key).copied();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Looks up a candidate by its decoded-program key. Counts a hit
    /// when present (the probe was already counted by
    /// [`ScheduleCache::probe_partition`]).
    pub fn probe_program(&mut self, key: u64) -> Option<u64> {
        let found = self.programs.get(&key).copied();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Records the simulated cycle count of a candidate under both
    /// keys.
    pub fn record(&mut self, partition_key: Vec<u32>, program_key: u64, cycles: u64) {
        self.partitions.insert(partition_key, cycles);
        self.programs.insert(program_key, cycles);
    }

    /// Records a cycle count under the partition key only (used when
    /// the candidate failed to compile and the probe result is a
    /// sentinel).
    pub fn record_partition(&mut self, partition_key: Vec<u32>, cycles: u64) {
        self.partitions.insert(partition_key, cycles);
    }

    /// Candidate evaluations requested through the cache.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Evaluations answered from the cache (no recompile, no resim).
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// The partition cache key: the thread assignment of every placed
/// instruction of `f`, in layout order.
pub fn partition_key(f: &Function, partition: &Partition) -> Vec<u32> {
    f.all_instrs().map(|i| partition.thread_of(i).0).collect()
}

/// Mixes a decoded program's structural hash with the machine knobs
/// that change its timing, producing the program-level cache key.
pub fn program_key(structural_hash: u64, knobs: &[u64]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    structural_hash.hash(&mut h);
    knobs.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_probe_counts_hits_and_misses() {
        let mut c = ScheduleCache::new();
        assert_eq!(c.probe_partition(&[0, 1]), None);
        c.record(vec![0, 1], 42, 1000);
        assert_eq!(c.probe_partition(&[0, 1]), Some(1000));
        assert_eq!(c.probe_partition(&[1, 0]), None);
        assert_eq!(c.probes(), 3);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn program_probe_hits_across_partitions() {
        let mut c = ScheduleCache::new();
        c.record(vec![0, 1], 7, 500);
        // A different partition compiling to the same program hits the
        // second-level key without a partition hit.
        assert_eq!(c.probe_partition(&[1, 0]), None);
        assert_eq!(c.probe_program(7), Some(500));
        assert_eq!(c.probes(), 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn failed_compiles_cache_under_partition_only() {
        let mut c = ScheduleCache::new();
        c.record_partition(vec![2, 2], u64::MAX);
        assert_eq!(c.probe_partition(&[2, 2]), Some(u64::MAX));
        assert_eq!(c.probe_program(9), None);
    }

    #[test]
    fn program_key_sensitive_to_knobs() {
        assert_eq!(program_key(1, &[256, 32]), program_key(1, &[256, 32]));
        assert_ne!(program_key(1, &[256, 32]), program_key(1, &[256, 1]));
        assert_ne!(program_key(1, &[256, 32]), program_key(2, &[256, 32]));
    }
}
