//! COCO — COmpiler Communication Optimizations for global
//! multi-threaded instruction scheduling (Ottoni & August).
//!
//! This crate is the primary contribution of the reproduced paper: a
//! framework that minimizes the produce/consume communication the MTCG
//! algorithm inserts between threads, built from
//!
//! - **thread-aware data-flow analyses** — the safety analysis
//!   ([`Safety`], Property 3 / equations (1)–(2)) and thread-aware
//!   liveness ([`LiveMap`]);
//! - **graph min-cuts** — each register's communication is one min-cut
//!   on a flow graph over its live range (§3.1.1), with cost penalties
//!   steering cuts away from points that would add control flow to the
//!   target thread (§3.1.2); all memory dependences of a thread pair
//!   are optimized together with a multi-commodity cut heuristic
//!   (§3.1.3);
//! - **Algorithm 2** — the iterative pairwise driver over all threads
//!   ([`optimize`]).
//!
//! The convenient entry point is [`Parallelizer`], which chains
//! PDG construction, a partitioner (DSWP or GREMIO), COCO, and MTCG:
//!
//! ```
//! use gmt_core::{Parallelizer, Scheduler, CocoConfig};
//! use gmt_ir::{FunctionBuilder, BinOp, Profile, interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small kernel.
//! let mut b = FunctionBuilder::new("axpy");
//! let n = b.param();
//! let i = b.fresh_reg();
//! let s = b.fresh_reg();
//! let h = b.block("h");
//! let body = b.block("body");
//! let exit = b.block("exit");
//! b.const_into(i, 0);
//! b.const_into(s, 0);
//! b.jump(h);
//! b.switch_to(h);
//! let c = b.bin(BinOp::Lt, i, n);
//! b.branch(c, body, exit);
//! b.switch_to(body);
//! let t = b.bin(BinOp::Mul, i, 3i64);
//! b.bin_into(BinOp::Add, s, s, t);
//! b.bin_into(BinOp::Add, i, i, 1i64);
//! b.jump(h);
//! b.switch_to(exit);
//! b.ret(Some(s.into()));
//! let f = b.finish()?;
//!
//! // Profile on a "train" input, then parallelize with DSWP + COCO.
//! let profile = interp::run(&f, &[10], &interp::ExecConfig::default())?.profile;
//! let result = Parallelizer::new(Scheduler::dswp(2))
//!     .with_coco(CocoConfig::default())
//!     .parallelize(&f, &profile)?;
//! assert_eq!(result.threads().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coco;
mod estimate;
mod flowgraph;
pub mod mtverify;
mod pipeline;
mod pos;
mod safety;
mod schedule_cache;

pub use coco::{optimize, CocoConfig, CocoStats};
pub use estimate::SchedEstimate;
pub use flowgraph::{Gf, GfBuilder, LiveMap};
pub use mtverify::{verify_mt, verify_mt_uniform, MtVerifyError, WaitStep};
pub use pipeline::{CompileTimings, Parallelized, Parallelizer, PipelineError, Scheduler};
pub use pos::{Pos, PosArc, PosGraph};
pub use safety::Safety;
pub use schedule_cache::{partition_key, program_key, ScheduleCache};
