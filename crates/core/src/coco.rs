//! COCO's Algorithm 2: iterative, pairwise communication optimization
//! over all threads.

use crate::flowgraph::{GfBuilder, LiveMap};
use crate::pos::PosGraph;
use crate::safety::Safety;
use gmt_graph::{multicut, DiGraph, MaxFlowAlgo, NodeId};
use gmt_ir::{ControlDeps, DefUse, Function, InstrId, PostDominators, Profile, Reg};
use gmt_mtcg::{CommKind, CommPlan, CommPoint};
use gmt_pdg::{DepKind, Partition, Pdg, ThreadId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Configuration of the COCO optimizer.
#[derive(Clone, Debug)]
pub struct CocoConfig {
    /// Max-flow algorithm (the paper uses Edmonds–Karp; Dinic is the
    /// "faster algorithm" suggested for production compilers).
    pub algo: MaxFlowAlgo,
    /// Apply the §3.1.2 control-flow penalties that steer cuts away
    /// from points requiring extra branches in the target thread.
    pub control_penalties: bool,
    /// Optimize all memory dependences of a pair simultaneously with
    /// the shared multicut heuristic (§3.1.3). When `false`, each
    /// memory dependence is cut independently (ablation).
    pub shared_memory_multicut: bool,
    /// Bound on the `repeat-until` iterations of Algorithm 2.
    pub max_iterations: usize,
}

impl Default for CocoConfig {
    fn default() -> CocoConfig {
        CocoConfig {
            algo: MaxFlowAlgo::EdmondsKarp,
            control_penalties: true,
            shared_memory_multicut: true,
            max_iterations: 10,
        }
    }
}

/// Statistics from one COCO run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CocoStats {
    /// Iterations of the outer repeat-until loop.
    pub iterations: usize,
    /// Register items optimized with a finite min-cut.
    pub registers_optimized: usize,
    /// Register items that fell back to the MTCG placement (no finite
    /// cut).
    pub register_fallbacks: usize,
    /// Memory dependences optimized.
    pub memory_deps_optimized: usize,
    /// Memory dependences that fell back to the MTCG placement.
    pub memory_fallbacks: usize,
}

/// Runs COCO (Algorithm 2) and returns the optimized plan.
///
/// The plan is a drop-in replacement for the baseline: feed it to
/// [`gmt_mtcg::generate_with_plan`].
///
/// ```
/// use gmt_core::{optimize, CocoConfig};
/// use gmt_ir::{FunctionBuilder, BinOp, Profile};
/// use gmt_pdg::{Pdg, Partition, ThreadId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.bin(BinOp::Add, x, 1i64);
/// b.output(y);
/// b.ret(None);
/// let f = b.finish()?;
/// let instrs: Vec<_> = f.all_instrs().collect();
/// let mut partition = Partition::new(2);
/// partition.assign(instrs[0], ThreadId(0));
/// partition.assign(instrs[1], ThreadId(1));
/// partition.assign(instrs[2], ThreadId(0));
/// let pdg = Pdg::build(&f);
/// let (plan, stats) = optimize(&f, &pdg, &partition, &Profile::uniform(&f, 5), &CocoConfig::default());
/// let threads = gmt_mtcg::generate_with_plan(&f, &partition, plan)?;
/// assert_eq!(threads.threads.len(), 2);
/// assert!(stats.iterations >= 1);
/// # Ok(())
/// # }
/// ```
pub fn optimize(
    f: &Function,
    pdg: &Pdg,
    partition: &Partition,
    profile: &Profile,
    config: &CocoConfig,
) -> (CommPlan, CocoStats) {
    let n = partition.num_threads();
    let pdom = PostDominators::compute(f);
    let cdeps = ControlDeps::compute(f, &pdom);
    let defuse = DefUse::compute(f);
    let pos_graph = PosGraph::build(f, profile);
    let block_weights = profile.block_weights(f);
    let mut stats = CocoStats::default();

    // Safety per source thread (depends only on the partition).
    let safety: Vec<Safety> = partition
        .threads()
        .map(|s| Safety::compute(f, partition, s))
        .collect();

    // All defs of each register, per thread.
    let mut defs_of: HashMap<(Reg, ThreadId), Vec<InstrId>> = HashMap::new();
    for i in f.all_instrs() {
        if let Some(d) = f.instr(i).def() {
            defs_of.entry((d, partition.thread_of(i))).or_default().push(i);
        }
    }

    // Memory dependences per thread pair.
    let mut mem_deps: BTreeMap<(ThreadId, ThreadId), Vec<(InstrId, InstrId)>> = BTreeMap::new();
    for d in pdg.deps() {
        if d.kind == DepKind::Memory {
            let (s, t) = (partition.thread_of(d.src), partition.thread_of(d.dst));
            if s != t {
                let v = mem_deps.entry((s, t)).or_default();
                if !v.contains(&(d.src, d.dst)) {
                    v.push((d.src, d.dst));
                }
            }
        }
    }

    let mut plan = CommPlan::new(n);
    // Relevant branches only grow across iterations (the convergence
    // argument of Algorithm 2).
    let mut relevant: Vec<BTreeSet<InstrId>> =
        gmt_mtcg::relevant_branches(f, &cdeps, partition, &plan);

    for iter in 0..config.max_iterations {
        stats.iterations = iter + 1;
        let mut changed = false;

        // ---- current communication requirements.
        // sinks[(s, t, r)] = uses of r that thread t executes (its own
        // instructions plus its relevant branches) reached by a def in s.
        let mut sinks: BTreeMap<(ThreadId, ThreadId, Reg), BTreeSet<InstrId>> = BTreeMap::new();
        // fallback[(s, t, r)] = MTCG points (after each reaching def).
        let mut fallback: BTreeMap<(ThreadId, ThreadId, Reg), BTreeSet<CommPoint>> =
            BTreeMap::new();
        for (d, u, r) in defuse.def_use_pairs() {
            let s = partition.thread_of(d);
            for t in partition.threads() {
                if s == t {
                    continue;
                }
                let counts = partition.thread_of(u) == t || relevant[t.index()].contains(&u);
                if counts {
                    sinks.entry((s, t, r)).or_default().insert(u);
                    fallback.entry((s, t, r)).or_default().insert(CommPoint::After(d));
                }
            }
        }

        // ---- pair processing order: quasi-topological over the thread
        // graph (reduces iterations when the graph is acyclic, §3.2).
        let mut tg = DiGraph::with_nodes(n as usize);
        for &(s, t, _) in sinks.keys() {
            tg.add_arc_dedup(NodeId(s.0), NodeId(t.0));
        }
        for &(s, t) in mem_deps.keys() {
            tg.add_arc_dedup(NodeId(s.0), NodeId(t.0));
        }
        let order = tg.quasi_topological_order();
        let pos_of: HashMap<u32, usize> =
            order.iter().enumerate().map(|(k, &v)| (v.0, k)).collect();

        let mut pairs: Vec<(ThreadId, ThreadId)> = sinks
            .keys()
            .map(|&(s, t, _)| (s, t))
            .chain(mem_deps.keys().copied())
            .collect();
        pairs.sort_by_key(|&(s, t)| (pos_of[&s.0], pos_of[&t.0], s.0, t.0));
        pairs.dedup();

        for (s, t) in pairs {
            let builder = GfBuilder {
                f,
                pos_graph: &pos_graph,
                cdeps: &cdeps,
                partition,
                relevant: &relevant,
                block_weights: &block_weights,
                control_penalties: config.control_penalties,
                s,
                t,
            };

            // ---- registers, each optimized independently (§3.1.1).
            let regs: Vec<Reg> = sinks
                .range((s, t, Reg(0))..=(s, t, Reg(u32::MAX)))
                .map(|(&(_, _, r), _)| r)
                .collect();
            for r in regs {
                let use_set = &sinks[&(s, t, r)];
                let uses: Vec<InstrId> = use_set.iter().copied().collect();
                let empty = Vec::new();
                let defs = defs_of.get(&(r, s)).unwrap_or(&empty);
                let counts_as_use =
                    |i: InstrId| partition.thread_of(i) == t || relevant[t.index()].contains(&i);
                let live = LiveMap::compute(f, r, counts_as_use);
                let points = builder
                    .optimize_register(r, &safety[s.index()], &live, defs, &uses, config.algo);
                let new_points = match points {
                    Some(p) if !p.is_empty() => {
                        stats.registers_optimized += 1;
                        p
                    }
                    Some(_) | None => {
                        stats.register_fallbacks += 1;
                        fallback[&(s, t, r)].clone()
                    }
                };
                if plan.points(CommKind::Register(r), s, t) != new_points {
                    plan.set_points(CommKind::Register(r), s, t, new_points);
                    changed = true;
                }
            }

            // ---- memory, all dependences of the pair together (§3.1.3).
            if let Some(deps) = mem_deps.get(&(s, t)) {
                let (gf, commodities) = builder.build_memory(deps);
                let mut points: BTreeSet<CommPoint> = BTreeSet::new();
                if config.shared_memory_multicut {
                    let result = multicut(&gf.net, &commodities);
                    for &arc in &result.arcs {
                        points.insert(
                            gf.arc_point[arc.index()].expect("finite cut arcs have points"),
                        );
                    }
                    for (k, feasible) in result.feasible.iter().enumerate() {
                        if *feasible {
                            stats.memory_deps_optimized += 1;
                        } else {
                            stats.memory_fallbacks += 1;
                            points.insert(CommPoint::After(deps[k].0));
                        }
                    }
                } else {
                    // Ablation: cut each dependence independently.
                    for (k, c) in commodities.iter().enumerate() {
                        let cut = gf.net.min_cut_with(c.source, c.sink, config.algo);
                        if cut.is_feasible() {
                            stats.memory_deps_optimized += 1;
                            points.extend(gf.cut_points(&cut));
                        } else {
                            stats.memory_fallbacks += 1;
                            points.insert(CommPoint::After(deps[k].0));
                        }
                    }
                }
                if plan.points(CommKind::Memory, s, t) != points {
                    plan.set_points(CommKind::Memory, s, t, points);
                    changed = true;
                }
            }
        }

        // ---- update relevant branches (they only grow).
        let recomputed = gmt_mtcg::relevant_branches(f, &cdeps, partition, &plan);
        for (t_idx, brs) in recomputed.into_iter().enumerate() {
            for br in brs {
                if relevant[t_idx].insert(br) {
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Record the final relevant-branch sets in the plan for MTCG.
    for (t_idx, brs) in relevant.iter().enumerate() {
        for &br in brs {
            plan.add_relevant_branch(ThreadId(t_idx as u32), br);
        }
    }
    (plan, stats)
}
