//! The end-to-end parallelization pipeline: PDG → partitioner → (COCO)
//! → MTCG. This is the API a library user drives (Figure 2 of the
//! paper).

use crate::coco::{optimize, CocoConfig, CocoStats};
use gmt_ir::{Function, Profile};
use gmt_mtcg::{CommPlan, MtcgError, MtcgOutput, QueueBudget};
use gmt_pdg::{Partition, Pdg};
use gmt_sched::{dswp, gremio};

/// Which partitioner to run.
#[derive(Clone, Debug)]
pub enum Scheduler {
    /// Decoupled Software Pipelining \[16\].
    Dswp(dswp::DswpConfig),
    /// GREMIO (MICRO 2007).
    Gremio(gremio::GremioConfig),
}

impl Scheduler {
    /// DSWP with `n` pipeline stages.
    pub fn dswp(n: u32) -> Scheduler {
        Scheduler::Dswp(dswp::DswpConfig { num_threads: n, comm_latency: 1 })
    }

    /// GREMIO with `n` threads.
    pub fn gremio(n: u32) -> Scheduler {
        Scheduler::Gremio(gremio::GremioConfig { num_threads: n, comm_latency: 1 })
    }
}

/// The full GMT parallelization pipeline.
#[derive(Clone, Debug)]
pub struct Parallelizer {
    /// The partitioner.
    pub scheduler: Scheduler,
    /// Run COCO after partitioning (`None` = baseline MTCG).
    pub coco: Option<CocoConfig>,
    /// Hardware queue budget (default: the paper's 256-queue
    /// synchronization array, with queue allocation folding plans that
    /// need more).
    pub queue_budget: QueueBudget,
}

impl Parallelizer {
    /// A pipeline with the given scheduler and no COCO.
    pub fn new(scheduler: Scheduler) -> Parallelizer {
        Parallelizer { scheduler, coco: None, queue_budget: QueueBudget::SYNC_ARRAY }
    }

    /// Enables COCO with the given configuration.
    #[must_use]
    pub fn with_coco(mut self, config: CocoConfig) -> Parallelizer {
        self.coco = Some(config);
        self
    }

    /// Overrides the queue budget.
    #[must_use]
    pub fn with_queue_budget(mut self, budget: QueueBudget) -> Parallelizer {
        self.queue_budget = budget;
        self
    }

    /// Parallelizes `f` under `profile`.
    ///
    /// # Errors
    ///
    /// Propagates [`MtcgError`] from code generation.
    pub fn parallelize(&self, f: &Function, profile: &Profile) -> Result<Parallelized, MtcgError> {
        let pdg = Pdg::build(f);
        let partition = match &self.scheduler {
            Scheduler::Dswp(cfg) => dswp::partition(f, &pdg, profile, cfg),
            Scheduler::Gremio(cfg) => gremio::partition(f, &pdg, profile, cfg),
        };
        self.parallelize_with_partition(f, profile, &pdg, partition)
    }

    /// Parallelizes `f` with a caller-supplied partition (for custom
    /// partitioners — the "plugging different partitioners" framework
    /// property of Figure 2).
    ///
    /// # Errors
    ///
    /// Propagates [`MtcgError`] from code generation.
    pub fn parallelize_with_partition(
        &self,
        f: &Function,
        profile: &Profile,
        pdg: &Pdg,
        partition: Partition,
    ) -> Result<Parallelized, MtcgError> {
        if let Err(i) = partition.validate(f) {
            return Err(MtcgError::Unassigned(i));
        }
        let (output, coco_stats, baseline_plan) = match &self.coco {
            None => {
                let plan = gmt_mtcg::baseline_plan(f, pdg, &partition);
                let out =
                    gmt_mtcg::generate_with_plan_budgeted(f, &partition, plan, self.queue_budget)?;
                (out, None, None)
            }
            Some(cfg) => {
                let baseline = gmt_mtcg::baseline_plan(f, pdg, &partition);
                let (plan, stats) = optimize(f, pdg, &partition, profile, cfg);
                let out =
                    gmt_mtcg::generate_with_plan_budgeted(f, &partition, plan, self.queue_budget)?;
                (out, Some(stats), Some(baseline))
            }
        };
        Ok(Parallelized { output, partition, coco_stats, baseline_plan })
    }
}

/// The result of a parallelization run.
#[derive(Clone, Debug)]
pub struct Parallelized {
    /// The generated threads, queue count, and realized plan.
    pub output: MtcgOutput,
    /// The partition that was used.
    pub partition: Partition,
    /// COCO statistics, if COCO ran.
    pub coco_stats: Option<CocoStats>,
    /// The baseline plan (for comparison), if COCO ran.
    pub baseline_plan: Option<CommPlan>,
}

impl Parallelized {
    /// The generated per-thread functions.
    pub fn threads(&self) -> &[Function] {
        &self.output.threads
    }

    /// Number of queues required.
    pub fn num_queues(&self) -> u32 {
        self.output.num_queues
    }
}
