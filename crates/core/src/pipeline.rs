//! The end-to-end parallelization pipeline: PDG → partitioner → (COCO)
//! → MTCG. This is the API a library user drives (Figure 2 of the
//! paper).

use crate::coco::{optimize, CocoConfig, CocoStats};
use crate::estimate::SchedEstimate;
use gmt_ir::{Function, Profile};
use gmt_mtcg::{CommPlan, MtcgError, MtcgOutput, QueueBudget};
use gmt_pdg::{Partition, Pdg};
use gmt_sched::{dswp, gremio, SchedError};
use std::time::Instant;

/// A failure of the end-to-end pipeline: either the partitioner or the
/// code generator rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The partitioner failed (e.g. a zero-thread configuration).
    Sched(SchedError),
    /// Code generation failed.
    Mtcg(MtcgError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sched(e) => write!(f, "partitioner: {e}"),
            PipelineError::Mtcg(e) => write!(f, "code generation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Sched(e) => Some(e),
            PipelineError::Mtcg(e) => Some(e),
        }
    }
}

impl From<SchedError> for PipelineError {
    fn from(e: SchedError) -> PipelineError {
        PipelineError::Sched(e)
    }
}

impl From<MtcgError> for PipelineError {
    fn from(e: MtcgError) -> PipelineError {
        PipelineError::Mtcg(e)
    }
}

/// Wall-clock nanoseconds spent in each compile phase of one
/// parallelization run (the §4 compile-time breakdown).
///
/// [`Parallelizer::parallelize`] fills every field;
/// [`Parallelizer::parallelize_with_partition`] only fills `coco_ns`
/// and `mtcg_ns` (the PDG and partition are caller-supplied there —
/// callers that time those phases themselves can patch the fields in).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileTimings {
    /// PDG construction (dependence analysis).
    pub pdg_build_ns: u64,
    /// Partitioning (DSWP or GREMIO, including candidate arbitration).
    pub partition_ns: u64,
    /// COCO communication optimization (0 for baseline MTCG).
    pub coco_ns: u64,
    /// MTCG code generation.
    pub mtcg_ns: u64,
}

impl CompileTimings {
    /// Total compile time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.pdg_build_ns + self.partition_ns + self.coco_ns + self.mtcg_ns
    }
}

/// Which partitioner to run.
#[derive(Clone, Debug)]
pub enum Scheduler {
    /// Decoupled Software Pipelining \[16\].
    Dswp(dswp::DswpConfig),
    /// GREMIO (MICRO 2007).
    Gremio(gremio::GremioConfig),
}

impl Scheduler {
    /// DSWP with `n` pipeline stages.
    pub fn dswp(n: u32) -> Scheduler {
        Scheduler::Dswp(dswp::DswpConfig { num_threads: n, comm_latency: 1 })
    }

    /// GREMIO with `n` threads.
    pub fn gremio(n: u32) -> Scheduler {
        Scheduler::Gremio(gremio::GremioConfig { num_threads: n, comm_latency: 1 })
    }
}

/// The full GMT parallelization pipeline.
#[derive(Clone, Debug)]
pub struct Parallelizer {
    /// The partitioner.
    pub scheduler: Scheduler,
    /// Run COCO after partitioning (`None` = baseline MTCG).
    pub coco: Option<CocoConfig>,
    /// Hardware queue budget (default: the paper's 256-queue
    /// synchronization array, with queue allocation folding plans that
    /// need more).
    pub queue_budget: QueueBudget,
    /// Depth granted to *hot* queues (those with a communication point
    /// inside a loop) by the per-queue depth allocator; cold queues get
    /// 1 entry. Defaults to the scheduler's paper depth: 1 for GREMIO's
    /// base synchronization array, 32 for DSWP.
    pub hot_queue_depth: usize,
}

impl Parallelizer {
    /// A pipeline with the given scheduler and no COCO.
    pub fn new(scheduler: Scheduler) -> Parallelizer {
        let hot_queue_depth = match &scheduler {
            Scheduler::Gremio(_) => 1,
            Scheduler::Dswp(_) => 32,
        };
        Parallelizer { scheduler, coco: None, queue_budget: QueueBudget::SYNC_ARRAY, hot_queue_depth }
    }

    /// Overrides the depth granted to hot queues.
    #[must_use]
    pub fn with_hot_queue_depth(mut self, depth: usize) -> Parallelizer {
        self.hot_queue_depth = depth;
        self
    }

    /// Enables COCO with the given configuration.
    #[must_use]
    pub fn with_coco(mut self, config: CocoConfig) -> Parallelizer {
        self.coco = Some(config);
        self
    }

    /// Overrides the queue budget.
    #[must_use]
    pub fn with_queue_budget(mut self, budget: QueueBudget) -> Parallelizer {
        self.queue_budget = budget;
        self
    }

    /// Parallelizes `f` under `profile`.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedError`] from the partitioner and [`MtcgError`]
    /// from code generation.
    pub fn parallelize(
        &self,
        f: &Function,
        profile: &Profile,
    ) -> Result<Parallelized, PipelineError> {
        let t = Instant::now();
        let pdg = Pdg::build(f);
        let pdg_build_ns = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let partition = match &self.scheduler {
            Scheduler::Dswp(cfg) => dswp::partition(f, &pdg, profile, cfg)?,
            Scheduler::Gremio(cfg) => gremio::partition(f, &pdg, profile, cfg)?,
        };
        let partition_ns = t.elapsed().as_nanos() as u64;
        let mut out = self.parallelize_with_partition(f, profile, &pdg, partition)?;
        out.timings.pdg_build_ns = pdg_build_ns;
        out.timings.partition_ns = partition_ns;
        Ok(out)
    }

    /// Parallelizes `f` with a caller-supplied partition (for custom
    /// partitioners — the "plugging different partitioners" framework
    /// property of Figure 2).
    ///
    /// # Errors
    ///
    /// Propagates [`MtcgError`] from code generation.
    pub fn parallelize_with_partition(
        &self,
        f: &Function,
        profile: &Profile,
        pdg: &Pdg,
        partition: Partition,
    ) -> Result<Parallelized, MtcgError> {
        if let Err(i) = partition.validate(f) {
            return Err(MtcgError::Unassigned(i));
        }
        let mut timings = CompileTimings::default();
        let (output, coco_stats, baseline_plan) = match &self.coco {
            None => {
                let plan = gmt_mtcg::baseline_plan(f, pdg, &partition)?;
                let t = Instant::now();
                let out =
                    gmt_mtcg::generate_with_plan_budgeted(f, &partition, plan, self.queue_budget)?;
                timings.mtcg_ns = t.elapsed().as_nanos() as u64;
                (out, None, None)
            }
            Some(cfg) => {
                let baseline = gmt_mtcg::baseline_plan(f, pdg, &partition)?;
                let t = Instant::now();
                let (plan, stats) = optimize(f, pdg, &partition, profile, cfg);
                timings.coco_ns = t.elapsed().as_nanos() as u64;
                let t = Instant::now();
                let out =
                    gmt_mtcg::generate_with_plan_budgeted(f, &partition, plan, self.queue_budget)?;
                timings.mtcg_ns = t.elapsed().as_nanos() as u64;
                (out, Some(stats), Some(baseline))
            }
        };
        // Allocate per-queue depths from the profile: queues whose
        // points sit in loops get the hot depth, the rest get 1. The
        // timed simulators keep their uniform machine depths; these are
        // the depths the verifier (and a depth-aware SA) would use.
        let queue_depths = gmt_mtcg::allocate_depths(
            f,
            profile,
            &output.queue_labels,
            output.num_queues,
            self.hot_queue_depth,
        );
        // Debug builds statically validate the queue protocol of every
        // generated program at the most conservative uniform depth (1),
        // which subsumes any allocated depths >= 1 — MTCG output must
        // be correct for any queue depth >= 1.
        #[cfg(debug_assertions)]
        {
            let violations = crate::mtverify::verify_mt_uniform(f, &partition, pdg, &output, 1);
            debug_assert!(
                violations.is_empty(),
                "generated code violates the queue protocol: {violations:?}"
            );
        }
        // Snapshot the static estimate against the realized labeling:
        // what the scheduler believed each thread and queue would cost,
        // for the harness's estimate-vs-measurement join.
        let estimate = SchedEstimate::compute(
            f,
            profile,
            pdg,
            &partition,
            &output.queue_labels,
            output.num_queues,
        );
        Ok(Parallelized { output, partition, coco_stats, baseline_plan, timings, queue_depths, estimate })
    }
}

/// The result of a parallelization run.
#[derive(Clone, Debug)]
pub struct Parallelized {
    /// The generated threads, queue count, and realized plan.
    pub output: MtcgOutput,
    /// The partition that was used.
    pub partition: Partition,
    /// COCO statistics, if COCO ran.
    pub coco_stats: Option<CocoStats>,
    /// The baseline plan (for comparison), if COCO ran.
    pub baseline_plan: Option<CommPlan>,
    /// Wall-clock compile-phase timings for this run.
    pub timings: CompileTimings,
    /// Profile-weighted per-queue depth allocation (one entry per
    /// queue; hot loop-carried queues get [`Parallelizer::hot_queue_depth`],
    /// cold control queues get 1). What `verify_mt` checks at.
    pub queue_depths: Vec<usize>,
    /// Static estimates captured at partition time (per-thread loads,
    /// cut edges, per-queue traffic) — the "what the scheduler
    /// thought" side of an estimate-vs-measurement report.
    pub estimate: SchedEstimate,
}

impl Parallelized {
    /// The generated per-thread functions.
    pub fn threads(&self) -> &[Function] {
        &self.output.threads
    }

    /// Number of queues required.
    pub fn num_queues(&self) -> u32 {
        self.output.num_queues
    }

    /// Static labels for the allocated SA queues (one per scheduled
    /// communication occurrence; see [`gmt_mtcg::QueueLabel`]).
    pub fn queue_labels(&self) -> &[gmt_mtcg::QueueLabel] {
        &self.output.queue_labels
    }
}
