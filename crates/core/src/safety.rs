//! The thread-aware *safety* data-flow analysis (Property 3, equations
//! (1)–(2) of the paper).
//!
//! A register `r` is *safe to communicate* from thread `T_s` at a
//! program point when `T_s` is guaranteed to hold the latest value of
//! `r` there:
//!
//! ```text
//! SAFE_out(n) = DEF_Ts(n) ∪ USE_Ts(n) ∪ (SAFE_in(n) − DEF(n))
//! SAFE_in(n)  = ⋂ over predecessors p of SAFE_out(p)
//! ```
//!
//! `T_s` gains the value by defining or using `r`; it loses it when any
//! other thread redefines `r`. This is a *must* analysis (intersection
//! confluence): the entry starts empty and all other points start full.

use gmt_ir::{BitSet, BlockId, Function, InstrId, Reg};
use gmt_pdg::{Partition, ThreadId};

/// The safety sets of one source thread over a whole function.
#[derive(Clone, Debug)]
pub struct Safety {
    /// SAFE set just after each instruction (indexed by instruction id).
    safe_out: Vec<BitSet>,
    /// SAFE set at each block entry.
    safe_entry: Vec<BitSet>,
}

impl Safety {
    /// Computes safety for source thread `s`.
    pub fn compute(f: &Function, partition: &Partition, s: ThreadId) -> Safety {
        let nr = f.num_regs() as usize;
        let nb = f.num_blocks();
        let full = {
            let mut b = BitSet::new(nr);
            for i in 0..nr {
                b.insert(i);
            }
            b
        };
        // Parameters are broadcast to every thread, so every thread
        // holds their latest value on entry (until someone redefines).
        let mut entry_in = BitSet::new(nr);
        for p in &f.params {
            entry_in.insert(p.index());
        }

        let mut safe_entry = vec![full.clone(); nb];
        safe_entry[f.entry().index()] = entry_in;
        let mut safe_exit = vec![full.clone(); nb]; // SAFE_out of terminator
        let preds = f.predecessors();
        let order = f.reverse_post_order();

        // Block transfer: run the instruction-level equations.
        let transfer = |f: &Function, partition: &Partition, b: BlockId, inn: &BitSet| -> BitSet {
            let mut cur = inn.clone();
            for i in f.block(b).all_instrs() {
                step(f, partition, s, i, &mut cur);
            }
            cur
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut inn = if b == f.entry() {
                    safe_entry[f.entry().index()].clone()
                } else if preds[b.index()].is_empty() {
                    // Unreachable block: keep full (vacuous).
                    full.clone()
                } else {
                    let mut acc = full.clone();
                    for &p in &preds[b.index()] {
                        acc.intersect_with(&safe_exit[p.index()]);
                    }
                    acc
                };
                if b == f.entry() {
                    // Entry also meets with back edges into the entry
                    // block, if any.
                    for &p in &preds[b.index()] {
                        inn.intersect_with(&safe_exit[p.index()]);
                    }
                }
                let out = transfer(f, partition, b, &inn);
                if inn != safe_entry[b.index()] || out != safe_exit[b.index()] {
                    safe_entry[b.index()] = inn;
                    safe_exit[b.index()] = out;
                    changed = true;
                }
            }
        }

        // Final pass: per-instruction SAFE_out.
        let mut safe_out = vec![BitSet::new(nr); f.num_instrs()];
        for b in f.blocks() {
            let mut cur = safe_entry[b.index()].clone();
            for i in f.block(b).all_instrs() {
                step(f, partition, s, i, &mut cur);
                safe_out[i.index()] = cur.clone();
            }
        }
        Safety { safe_out, safe_entry }
    }

    /// Whether `r` is safe just after instruction `i`.
    pub fn safe_after(&self, i: InstrId, r: Reg) -> bool {
        self.safe_out[i.index()].contains(r.index())
    }

    /// Whether `r` is safe at the entry of block `b`.
    pub fn safe_at_entry(&self, b: BlockId, r: Reg) -> bool {
        self.safe_entry[b.index()].contains(r.index())
    }
}

/// One application of equation (1).
fn step(f: &Function, partition: &Partition, s: ThreadId, i: InstrId, cur: &mut BitSet) {
    let op = f.instr(i);
    let mine = partition.get(i) == Some(s);
    if let Some(d) = op.def() {
        if mine {
            cur.insert(d.index());
        } else {
            cur.remove(d.index());
        }
    }
    if mine {
        for u in op.uses() {
            cur.insert(u.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, FunctionBuilder};

    /// r defined by T0, then redefined by T1: safe for T0 only between
    /// its def and T1's redef.
    #[test]
    fn redefinition_by_other_thread_kills_safety() {
        let mut b = FunctionBuilder::new("s");
        let r = b.fresh_reg();
        b.const_into(r, 1); // i0: T0 defines
        b.const_into(r, 2); // i1: T1 redefines
        b.output(r); // i2
        b.ret(None); // i3
        let f = b.finish().unwrap();
        let instrs: Vec<_> = f.all_instrs().collect();
        let mut p = Partition::new(2);
        p.assign(instrs[0], ThreadId(0));
        p.assign(instrs[1], ThreadId(1));
        p.assign(instrs[2], ThreadId(0));
        p.assign(instrs[3], ThreadId(0));
        let safety = Safety::compute(&f, &p, ThreadId(0));
        assert!(safety.safe_after(instrs[0], r));
        assert!(!safety.safe_after(instrs[1], r), "T1 redefined r");
        // A use by T0 re-establishes safety... but only if T0 actually
        // uses it; output(r) is T0's use:
        assert!(safety.safe_after(instrs[2], r));
    }

    /// Join of two paths: safe only if safe on both.
    #[test]
    fn intersection_at_joins() {
        let mut b = FunctionBuilder::new("j");
        let x = b.param();
        let r = b.fresh_reg();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 3i64); // i0 (T0)
        b.branch(c, t, e); // i1 (T0)
        b.switch_to(t);
        b.const_into(r, 1); // i2: T0 defines r on then-path
        b.jump(j); // i3
        b.switch_to(e);
        b.const_into(r, 2); // i4: T1 defines r on else-path
        b.jump(j); // i5
        b.switch_to(j);
        b.output(r); // i6 (T1)
        b.ret(None); // i7
        let f = b.finish().unwrap();
        let instrs: Vec<_> = f.all_instrs().collect();
        let mut p = Partition::new(2);
        for &i in &instrs {
            p.assign(i, ThreadId(0));
        }
        p.assign(instrs[4], ThreadId(1));
        p.assign(instrs[6], ThreadId(1));
        let safety = Safety::compute(&f, &p, ThreadId(0));
        // After T0's def in then-block: safe.
        assert!(safety.safe_after(instrs[2], r));
        // After T1's def in else-block: unsafe for T0.
        assert!(!safety.safe_after(instrs[4], r));
        // At join entry: intersection => unsafe.
        assert!(!safety.safe_at_entry(BlockId(3), r));
    }

    #[test]
    fn params_safe_everywhere_until_redefined() {
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        let y = b.bin(BinOp::Add, x, 1i64); // i0 (T1)
        b.output(y); // i1 (T0)
        b.ret(None); // i2
        let f = b.finish().unwrap();
        let instrs: Vec<_> = f.all_instrs().collect();
        let mut p = Partition::new(2);
        p.assign(instrs[0], ThreadId(1));
        p.assign(instrs[1], ThreadId(0));
        p.assign(instrs[2], ThreadId(0));
        let safety = Safety::compute(&f, &p, ThreadId(0));
        assert!(safety.safe_at_entry(f.entry(), x));
        assert!(safety.safe_after(instrs[0], x), "param x still safe (not redefined)");
        // y is defined by T1: never safe for T0.
        assert!(!safety.safe_after(instrs[0], y));
    }

    /// Use by the source thread re-establishes safety (the thread
    /// observed the value).
    #[test]
    fn use_establishes_safety() {
        let mut b = FunctionBuilder::new("u");
        let r = b.fresh_reg();
        b.const_into(r, 1); // i0: T1 defines
        let s = b.bin(BinOp::Add, r, 0i64); // i1: T0 uses r
        b.output(s); // i2
        b.ret(None); // i3
        let f = b.finish().unwrap();
        let instrs: Vec<_> = f.all_instrs().collect();
        let mut p = Partition::new(2);
        p.assign(instrs[0], ThreadId(1));
        p.assign(instrs[1], ThreadId(0));
        p.assign(instrs[2], ThreadId(0));
        p.assign(instrs[3], ThreadId(0));
        let safety = Safety::compute(&f, &p, ThreadId(0));
        assert!(!safety.safe_after(instrs[0], r), "just defined by T1");
        assert!(safety.safe_after(instrs[1], r), "T0 used r, so it holds the value");
    }
}
