//! Static queue-protocol validation for MT codegen.
//!
//! MTCG's correctness rests on a handful of structural invariants the
//! paper states but a code generator can silently break: every queue's
//! produce sequence must equal its consume sequence (one global
//! per-point emission order, §3.1), communication endpoints must match
//! the plan, every thread must duplicate the branches that control its
//! communication (Definitions 1–2), the inter-thread wait graph must be
//! acyclic under the machine's finite queue depth, and every
//! COCO-moved communication point must still deliver the value its
//! consumers read. [`verify_mt`] checks all of these statically —
//! abstract interpretation over the product of the threads'
//! relevant CFGs, aligned through [`MtcgOutput::origins`] — and
//! reports violations as structured [`MtVerifyError`]s naming the
//! queue, the blocks involved, and the plan label.

use gmt_ir::{BlockId, ControlDeps, Function, InstrId, Op, PostDominators, QueueId, Reg};
use gmt_mtcg::{CommKind, CommPoint, MtcgOutput, QueueLabel};
use gmt_pdg::{DepKind, Partition, Pdg, ThreadId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One hop of a potential-deadlock witness: a static communication
/// operation some thread would be blocked at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitStep {
    /// The blocked thread.
    pub thread: ThreadId,
    /// The *original-CFG* block whose image contains the operation.
    pub block: BlockId,
    /// The queue the operation targets.
    pub queue: QueueId,
    /// `true` for produce/produce.sync (blocked on a full queue),
    /// `false` for consume/consume.sync (blocked on an empty one).
    pub produce: bool,
    /// The depth the queue was verified at (its allocated capacity).
    pub depth: usize,
}

/// A violation of the MT queue protocol found by [`verify_mt`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MtVerifyError {
    /// A communication instruction targets a queue no label covers.
    UnlabeledQueue {
        /// Offending thread.
        thread: ThreadId,
        /// Offending instruction (in the generated thread).
        instr: InstrId,
        /// The unknown queue.
        queue: QueueId,
    },
    /// A queue is shared by two different (from, to) thread pairs —
    /// the allocator's cardinal sin (cross-pair order is undefined).
    QueueSharedAcrossPairs {
        /// The shared queue.
        queue: QueueId,
        /// First pair's label.
        first: QueueLabel,
        /// Conflicting label.
        second: QueueLabel,
    },
    /// A produce appears outside the labeled producing thread, or a
    /// consume outside the consuming thread.
    EndpointViolation {
        /// Thread the operation actually appears in.
        thread: ThreadId,
        /// The offending instruction (in the generated thread).
        instr: InstrId,
        /// The queue's label (expected endpoints).
        label: QueueLabel,
    },
    /// A communication instruction sits in a generated block that
    /// realizes no original block (entry stub or `mt_exit`), where no
    /// communication may be placed.
    CommOutsideImage {
        /// Offending thread.
        thread: ThreadId,
        /// Offending instruction.
        instr: InstrId,
        /// Queue targeted.
        queue: QueueId,
    },
    /// Within one original block, the producer's per-pair sequence of
    /// queue operations differs from the consumer's — the FIFOs would
    /// misalign value-for-value (token conservation breaks).
    SequenceMismatch {
        /// The communicating pair (from, to).
        pair: (ThreadId, ThreadId),
        /// The original block whose images disagree.
        block: BlockId,
        /// The producer's generated block image, if any.
        from_block: Option<BlockId>,
        /// The consumer's generated block image, if any.
        to_block: Option<BlockId>,
        /// Queue sequence produced by `pair.0` in this block.
        produced: Vec<QueueId>,
        /// Queue sequence consumed by `pair.1` in this block.
        consumed: Vec<QueueId>,
    },
    /// After a communicating block, the producer and consumer can
    /// reach different next communicating blocks — their relevant
    /// control flow diverges, so the queue sequences are not aligned
    /// on every path.
    ControlDivergence {
        /// The communicating pair (from, to).
        pair: (ThreadId, ThreadId),
        /// The original block (or entry) where the walk started.
        block: BlockId,
        /// Next communicating original blocks per the producer.
        from_next: Vec<BlockId>,
        /// Next communicating original blocks per the consumer.
        to_next: Vec<BlockId>,
    },
    /// Definition 1's closure is incomplete: the branch is relevant to
    /// the thread but the plan never marked it for duplication.
    MissingControlDuplication {
        /// The thread that must duplicate the branch.
        thread: ThreadId,
        /// The relevant branch (original CFG).
        branch: InstrId,
    },
    /// A duplicated branch owned by another thread has no way to
    /// obtain its condition: the duplicating thread neither computes
    /// the register nor receives it through any plan item — the
    /// duplicate could not branch the same way.
    MissingBranchOperand {
        /// The duplicating thread.
        thread: ThreadId,
        /// The duplicated branch (original CFG).
        branch: InstrId,
        /// The branch's owning thread.
        owner: ThreadId,
    },
    /// The inter-thread wait graph (queue dependences plus per-queue
    /// back-pressure at each queue's allocated depth, chained across
    /// blocks along each thread's generated CFG) has a cycle: every
    /// thread on the witness path can block waiting for the next.
    PotentialDeadlock {
        /// The cycle, one blocked operation per hop (each
        /// [`WaitStep::depth`] names the depth its queue was checked
        /// at).
        witness: Vec<WaitStep>,
    },
    /// A queue label (a scheduled communication occurrence the
    /// generated code is supposed to realize) does not correspond
    /// one-to-one with the plan's (item, point) set: either the label
    /// names a (point, kind, from, to) the plan never placed, or a plan
    /// placement has no label. A consistent-but-different pair would
    /// otherwise pass both the plan checks and the code checks.
    PlanLabelMismatch {
        /// The communication point.
        point: CommPoint,
        /// What is communicated.
        kind: CommKind,
        /// Producing thread.
        from: ThreadId,
        /// Consuming thread.
        to: ThreadId,
        /// How many labels carry this placement.
        labels: usize,
        /// How many times the plan places it.
        planned: usize,
    },
    /// A thread's image of an original block does not realize the exact
    /// instruction layout the plan dictates: walking the block's points
    /// in emission order (block start, before/after each instruction,
    /// before the terminator), the expected interleaving of
    /// communication ops and the thread's own instructions differs from
    /// the generated code — a comm instruction has no plan point at its
    /// position, or a plan point has no instruction.
    PlanCodeMismatch {
        /// The thread whose image disagrees.
        thread: ThreadId,
        /// The original block (the thread realizes no image of it when
        /// `actual` is empty and `expected` is not).
        block: BlockId,
        /// (queue, produce?) sequence the plan + labels dictate.
        expected: Vec<(QueueId, bool)>,
        /// (queue, produce?) sequence the generated image contains.
        actual: Vec<(QueueId, bool)>,
    },
    /// A thread's image of a block ends with the wrong terminator kind:
    /// it duplicates a branch the plan never marked (and the thread
    /// does not own), fails to duplicate a branch it must, or branches
    /// on a different condition register than the original.
    BranchDuplicationMismatch {
        /// The offending thread.
        thread: ThreadId,
        /// The original block.
        block: BlockId,
        /// The original terminator instruction.
        branch: InstrId,
        /// Whether the thread was supposed to end the image with a
        /// duplicate of the branch.
        expected_duplicate: bool,
    },
    /// A register communication point no longer dominates a use it
    /// feeds: on some path the producing thread redefines the register
    /// after the last crossing, so the consumer reads a stale value
    /// (violates Definitions 1–2 after a COCO move).
    StaleValue {
        /// The communicated register.
        reg: Reg,
        /// The consuming use (original CFG instruction).
        use_instr: InstrId,
        /// The item's label data: producing and consuming threads.
        pair: (ThreadId, ThreadId),
    },
    /// A memory dependence between the pair's threads is not covered
    /// by any synchronization point on some path from source to sink.
    UncoveredMemoryDep {
        /// The dependence source (original CFG).
        src: InstrId,
        /// The dependence sink (original CFG).
        dst: InstrId,
        /// The communicating pair (from, to).
        pair: (ThreadId, ThreadId),
    },
}

impl std::fmt::Display for MtVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtVerifyError::UnlabeledQueue { thread, instr, queue } => {
                write!(f, "thread {thread:?} {instr:?}: queue {} has no label", queue.0)
            }
            MtVerifyError::QueueSharedAcrossPairs { queue, first, second } => write!(
                f,
                "queue {} shared across pairs {:?}->{:?} and {:?}->{:?}",
                queue.0, first.from, first.to, second.from, second.to
            ),
            MtVerifyError::EndpointViolation { thread, instr, label } => write!(
                f,
                "thread {thread:?} {instr:?}: queue {} belongs to {:?}->{:?}",
                label.queue.0, label.from, label.to
            ),
            MtVerifyError::CommOutsideImage { thread, instr, queue } => write!(
                f,
                "thread {thread:?} {instr:?}: queue {} op outside any block image",
                queue.0
            ),
            MtVerifyError::SequenceMismatch { pair, block, produced, consumed, .. } => write!(
                f,
                "pair {:?}->{:?} block {block:?}: produce sequence {:?} != consume sequence {:?}",
                pair.0,
                pair.1,
                produced.iter().map(|q| q.0).collect::<Vec<_>>(),
                consumed.iter().map(|q| q.0).collect::<Vec<_>>()
            ),
            MtVerifyError::ControlDivergence { pair, block, from_next, to_next } => write!(
                f,
                "pair {:?}->{:?} after block {block:?}: producer reaches {from_next:?}, \
                 consumer reaches {to_next:?}",
                pair.0, pair.1
            ),
            MtVerifyError::MissingControlDuplication { thread, branch } => {
                write!(f, "thread {thread:?} must duplicate relevant branch {branch:?}")
            }
            MtVerifyError::MissingBranchOperand { thread, branch, owner } => write!(
                f,
                "thread {thread:?} duplicates {branch:?} but {owner:?} never sends its condition"
            ),
            MtVerifyError::PotentialDeadlock { witness } => {
                write!(f, "potential deadlock at the allocated queue depths:")?;
                for s in witness {
                    write!(
                        f,
                        " [{:?} blocked {} queue {} (depth {}) in {:?}]",
                        s.thread,
                        if s.produce { "producing to" } else { "consuming from" },
                        s.queue.0,
                        s.depth,
                        s.block
                    )?;
                }
                Ok(())
            }
            MtVerifyError::PlanLabelMismatch { point, kind, from, to, labels, planned } => write!(
                f,
                "{kind:?} {from:?}->{to:?} at {point:?}: {labels} label(s) vs {planned} plan \
                 placement(s)"
            ),
            MtVerifyError::PlanCodeMismatch { thread, block, expected, actual } => write!(
                f,
                "thread {thread:?} image of {block:?}: plan dictates comm layout {:?} but the \
                 code realizes {:?} (positions aligned against the thread's own instructions)",
                expected.iter().map(|&(q, p)| (q.0, p)).collect::<Vec<_>>(),
                actual.iter().map(|&(q, p)| (q.0, p)).collect::<Vec<_>>()
            ),
            MtVerifyError::BranchDuplicationMismatch { thread, block, branch, expected_duplicate } => {
                write!(
                    f,
                    "thread {thread:?} image of {block:?}: {}",
                    if *expected_duplicate {
                        format!("must end with a duplicate of branch {branch:?} (same condition)")
                    } else {
                        format!("duplicates branch {branch:?} the plan never marked")
                    }
                )
            }
            MtVerifyError::StaleValue { reg, use_instr, pair } => write!(
                f,
                "pair {:?}->{:?}: {use_instr:?} can read a stale {reg:?} (point fails to \
                 dominate the use after its last def)",
                pair.0, pair.1
            ),
            MtVerifyError::UncoveredMemoryDep { src, dst, pair } => write!(
                f,
                "pair {:?}->{:?}: memory dependence {src:?} -> {dst:?} crosses no sync point",
                pair.0, pair.1
            ),
        }
    }
}

impl std::error::Error for MtVerifyError {}

/// Is `op` a communication instruction? Returns `(queue, is_produce)`.
fn comm_op(op: &Op) -> Option<(QueueId, bool)> {
    match *op {
        Op::Produce { queue, .. } | Op::ProduceSync { queue } => Some((queue, true)),
        Op::Consume { queue, .. } | Op::ConsumeSync { queue } => Some((queue, false)),
        _ => None,
    }
}

/// [`verify_mt`] at one uniform queue depth (every queue gets
/// `queue_depth` entries) — the pre-allocation behavior, still what the
/// pipeline's depth-1 debug gate wants.
pub fn verify_mt_uniform(
    f: &Function,
    partition: &Partition,
    pdg: &Pdg,
    out: &MtcgOutput,
    queue_depth: usize,
) -> Vec<MtVerifyError> {
    verify_mt(f, partition, pdg, out, &[queue_depth])
}

/// Statically validates the queue protocol of `out` against the
/// original function, partition, and PDG, under the *per-queue* hardware
/// depths in `queue_depths` (a single element broadcasts to every queue,
/// matching `SaConfig::depths`; queue `q` otherwise gets
/// `queue_depths[q]`, missing entries defaulting to 1). Returns every
/// violation found (empty = verified).
pub fn verify_mt(
    f: &Function,
    partition: &Partition,
    pdg: &Pdg,
    out: &MtcgOutput,
    queue_depths: &[usize],
) -> Vec<MtVerifyError> {
    let mut errs = Vec::new();
    let nt = out.threads.len();

    // ---- queue labels: group by queue, demand pair consistency.
    let mut labels: HashMap<QueueId, Vec<&QueueLabel>> = HashMap::new();
    for l in &out.queue_labels {
        labels.entry(l.queue).or_default().push(l);
    }
    for ls in labels.values() {
        let first = ls[0];
        if let Some(bad) = ls.iter().find(|l| (l.from, l.to) != (first.from, first.to)) {
            errs.push(MtVerifyError::QueueSharedAcrossPairs {
                queue: first.queue,
                first: first.clone(),
                second: (*bad).clone(),
            });
        }
    }

    // ---- endpoint check + per-thread, per-original-block comm
    // sequences (projected through `origins`).
    // comm_seq[t][b] = ordered (queue, produce?) ops of thread t's
    // image of original block b.
    let mut comm_seq: Vec<BTreeMap<BlockId, Vec<(QueueId, bool)>>> = vec![BTreeMap::new(); nt];
    for (t_idx, tf) in out.threads.iter().enumerate() {
        let t = ThreadId(t_idx as u32);
        let origins = &out.origins[t_idx];
        for g in tf.blocks() {
            let origin = origins.get(&g).copied();
            for i in tf.block(g).all_instrs() {
                let Some((queue, produce)) = comm_op(tf.instr(i)) else { continue };
                let Some(ls) = labels.get(&queue) else {
                    errs.push(MtVerifyError::UnlabeledQueue { thread: t, instr: i, queue });
                    continue;
                };
                let label = ls[0];
                let expected = if produce { label.from } else { label.to };
                if expected != t {
                    errs.push(MtVerifyError::EndpointViolation {
                        thread: t,
                        instr: i,
                        label: label.clone(),
                    });
                    continue;
                }
                match origin {
                    Some(b) => comm_seq[t_idx].entry(b).or_default().push((queue, produce)),
                    None => {
                        errs.push(MtVerifyError::CommOutsideImage { thread: t, instr: i, queue })
                    }
                }
            }
        }
    }

    // ---- per-pair sequence matching over the aligned block images.
    let pair_of = |q: QueueId| labels.get(&q).map(|ls| (ls[0].from, ls[0].to));
    let mut pairs: BTreeSet<(ThreadId, ThreadId)> = BTreeSet::new();
    for ls in labels.values() {
        pairs.insert((ls[0].from, ls[0].to));
    }
    let inv = |t: ThreadId| -> HashMap<BlockId, BlockId> {
        out.origins[t.index()].iter().map(|(&g, &b)| (b, g)).collect()
    };
    for &(from, to) in &pairs {
        if from.index() >= nt || to.index() >= nt {
            continue; // endpoint checks already flagged every op
        }
        let from_img = inv(from);
        let to_img = inv(to);
        let seq_of = |t: ThreadId, b: BlockId, want_produce: bool| -> Vec<QueueId> {
            comm_seq[t.index()]
                .get(&b)
                .map(|ops| {
                    ops.iter()
                        .filter(|(q, p)| *p == want_produce && pair_of(*q) == Some((from, to)))
                        .map(|(q, _)| *q)
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
        for t in [from, to] {
            blocks.extend(comm_seq[t.index()].keys().copied());
        }
        let mut comm_blocks: BTreeSet<BlockId> = BTreeSet::new();
        for &b in &blocks {
            let produced = seq_of(from, b, true);
            let consumed = seq_of(to, b, false);
            if produced.is_empty() && consumed.is_empty() {
                continue;
            }
            comm_blocks.insert(b);
            if produced != consumed {
                errs.push(MtVerifyError::SequenceMismatch {
                    pair: (from, to),
                    block: b,
                    from_block: from_img.get(&b).copied(),
                    to_block: to_img.get(&b).copied(),
                    produced,
                    consumed,
                });
            }
        }

        // ---- product-CFG walk: from each communicating block (and
        // each thread's entry), the set of *next* communicating
        // original blocks must agree between producer and consumer.
        let next_set = |t: ThreadId, start: Option<BlockId>| -> BTreeSet<BlockId> {
            let tf = &out.threads[t.index()];
            let img = if t == from { &from_img } else { &to_img };
            let origins = &out.origins[t.index()];
            let starts: Vec<BlockId> = match start {
                Some(b) => match img.get(&b) {
                    Some(&g) => tf.successors(g),
                    None => return BTreeSet::new(),
                },
                None => vec![tf.entry()],
            };
            let mut seen: BTreeSet<BlockId> = BTreeSet::new();
            let mut found = BTreeSet::new();
            let mut stack = starts;
            while let Some(g) = stack.pop() {
                if !seen.insert(g) {
                    continue;
                }
                if let Some(&ob) = origins.get(&g) {
                    if comm_blocks.contains(&ob) {
                        found.insert(ob);
                        continue;
                    }
                }
                stack.extend(tf.successors(g));
            }
            found
        };
        let mut walk_from: Vec<Option<BlockId>> = vec![None];
        walk_from.extend(comm_blocks.iter().copied().map(Some));
        for start in walk_from {
            let fx = next_set(from, start);
            let tx = next_set(to, start);
            if fx != tx {
                errs.push(MtVerifyError::ControlDivergence {
                    pair: (from, to),
                    block: start.unwrap_or_else(|| f.entry()),
                    from_next: fx.into_iter().collect(),
                    to_next: tx.into_iter().collect(),
                });
            }
        }
    }

    // ---- Definition 1 closure: recompute relevance from the realized
    // plan; everything relevant must be marked for duplication, and
    // foreign duplicated branches must have their condition delivered.
    let pdom = PostDominators::compute(f);
    let cdeps = ControlDeps::compute(f, &pdom);
    let required = gmt_mtcg::relevant_branches(f, &cdeps, partition, &out.plan);
    for (t_idx, branches) in required.iter().enumerate() {
        let t = ThreadId(t_idx as u32);
        for &br in branches {
            if !out.plan.relevant_branches(t).contains(&br) {
                errs.push(MtVerifyError::MissingControlDuplication { thread: t, branch: br });
                continue;
            }
            let owner = partition.thread_of(br);
            if owner == t {
                continue;
            }
            let Op::Branch { cond, .. } = *f.instr(br) else { continue };
            // The duplicate needs the condition: either thread t
            // computes it itself, or some item delivers it (COCO may
            // have moved the point anywhere that still dominates —
            // freshness is the staleness analysis' job below).
            let computes_locally = f
                .all_instrs()
                .any(|i| f.instr(i).def() == Some(cond) && partition.get(i) == Some(t));
            let receives = out
                .plan
                .items()
                .any(|it| it.kind == CommKind::Register(cond) && it.to == t && !it.points.is_empty());
            if !computes_locally && !receives {
                errs.push(MtVerifyError::MissingBranchOperand { thread: t, branch: br, owner });
            }
        }
    }

    // ---- plan <-> code cross-check: labels bijective with the plan's
    // (item, point) placements, comm instructions at the exact plan
    // positions, branch duplication exactly where marked.
    errs.extend(plan_code_check(f, partition, out));

    // ---- wait graph: potential deadlocks under the allocated
    // per-queue depths, with arcs chained across blocks.
    let depth_of = |q: QueueId| -> usize {
        let d = if queue_depths.len() == 1 {
            queue_depths[0]
        } else {
            queue_depths.get(q.index()).copied().unwrap_or(1)
        };
        d.max(1)
    };
    errs.extend(deadlock_check(out, &comm_seq, &labels, &depth_of));

    // ---- Definitions 1–2 for moved points: register staleness and
    // memory-dependence coverage on the original CFG.
    errs.extend(defs12_check(f, partition, pdg, out));

    errs
}

/// One expected slot of a generated block image: either a scheduled
/// communication op or one of the thread's own (cloned) instructions.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Comm { queue: QueueId, produce: bool, kind: CommKind },
    Own(InstrId),
}

/// The plan↔code position cross-check.
///
/// The plan and the generated code were previously validated
/// *separately*, so a consistent-but-different pair — a comm
/// instruction at the wrong position, a produce of the wrong register
/// over the right queue, an extra or missing branch duplicate — passed
/// both. This maps every generated produce/consume/branch-duplication
/// instruction back to a `CommPlan` point *by position* and rejects any
/// instruction without a plan point or plan point without an
/// instruction:
///
/// 1. labels ↔ plan: every `QueueLabel` names a (point, kind, from, to)
///    the plan placed, exactly once each way;
/// 2. per thread, per original block: replaying codegen's emission
///    order (block start, before/after each instruction, before the
///    terminator — comm in label order at each point, the thread's own
///    instructions in between) must reproduce the image exactly,
///    instruction for instruction;
/// 3. per thread, per original block ending in a branch: the image's
///    terminator is a branch on the same condition iff the thread owns
///    the branch or the plan marks it relevant.
fn plan_code_check(f: &Function, partition: &Partition, out: &MtcgOutput) -> Vec<MtVerifyError> {
    let mut errs = Vec::new();
    let nt = out.threads.len();

    // ---- (1) labels <-> plan placements, as multisets.
    let mut label_count: BTreeMap<(CommPoint, CommKind, ThreadId, ThreadId), usize> =
        BTreeMap::new();
    for l in &out.queue_labels {
        *label_count.entry((l.point, l.kind, l.from, l.to)).or_insert(0) += 1;
    }
    let mut plan_count: BTreeMap<(CommPoint, CommKind, ThreadId, ThreadId), usize> =
        BTreeMap::new();
    for item in out.plan.items() {
        for &p in &item.points {
            *plan_count.entry((p, item.kind, item.from, item.to)).or_insert(0) += 1;
        }
    }
    let keys: BTreeSet<_> = label_count.keys().chain(plan_count.keys()).copied().collect();
    for k in keys {
        let labels = label_count.get(&k).copied().unwrap_or(0);
        let planned = plan_count.get(&k).copied().unwrap_or(0);
        if labels != planned {
            let (point, kind, from, to) = k;
            errs.push(MtVerifyError::PlanLabelMismatch { point, kind, from, to, labels, planned });
        }
    }

    // ---- (2) + (3): replay the emission order per thread, per block.
    let mut at_point: HashMap<CommPoint, Vec<&QueueLabel>> = HashMap::new();
    for l in &out.queue_labels {
        at_point.entry(l.point).or_default().push(l);
    }
    for t_idx in 0..nt {
        let t = ThreadId(t_idx as u32);
        let tf = &out.threads[t_idx];
        let Some(origins) = out.origins.get(t_idx) else { continue };
        let img: HashMap<BlockId, BlockId> = origins.iter().map(|(&g, &b)| (b, g)).collect();
        for b in f.blocks() {
            // Expected slots in codegen's emission order.
            let mut expected: Vec<Slot> = Vec::new();
            let push_point = |p: CommPoint, expected: &mut Vec<Slot>| {
                let Some(ls) = at_point.get(&p) else { return };
                for l in ls {
                    if l.to == t {
                        expected.push(Slot::Comm { queue: l.queue, produce: false, kind: l.kind });
                    } else if l.from == t {
                        expected.push(Slot::Comm { queue: l.queue, produce: true, kind: l.kind });
                    }
                }
            };
            push_point(CommPoint::BlockStart(b), &mut expected);
            for &i in &f.block(b).instrs {
                push_point(CommPoint::Before(i), &mut expected);
                if partition.get(i) == Some(t) {
                    expected.push(Slot::Own(i));
                }
                push_point(CommPoint::After(i), &mut expected);
            }
            let term = f.block(b).terminator;
            if let Some(term) = term {
                push_point(CommPoint::Before(term), &mut expected);
            }
            let gb = img.get(&b).copied();
            if gb.is_none() && expected.is_empty() {
                continue; // nothing scheduled here, no image needed
            }

            // Actual slots: the image's non-terminator instructions.
            // `None` marks a missing image (expected comm with nowhere
            // to live).
            let actual: Vec<(InstrId, &Op)> = match gb {
                Some(g) => tf.block(g).instrs.iter().map(|&i| (i, tf.instr(i))).collect(),
                None => Vec::new(),
            };
            let comm_of = |op: &Op| -> Option<(QueueId, bool, Option<CommKind>)> {
                match *op {
                    Op::Produce { queue, value } => Some((
                        queue,
                        true,
                        match value {
                            gmt_ir::Operand::Reg(r) => Some(CommKind::Register(r)),
                            _ => None,
                        },
                    )),
                    Op::Consume { dst, queue } => {
                        Some((queue, false, Some(CommKind::Register(dst))))
                    }
                    Op::ProduceSync { queue } => Some((queue, true, Some(CommKind::Memory))),
                    Op::ConsumeSync { queue } => Some((queue, false, Some(CommKind::Memory))),
                    _ => None,
                }
            };
            let mut ok = gb.is_some() && expected.len() == actual.len();
            if ok {
                for (slot, &(_, op)) in expected.iter().zip(&actual) {
                    match (*slot, comm_of(op)) {
                        (Slot::Comm { queue, produce, kind }, Some((q, p, k))) => {
                            if q != queue || p != produce || k != Some(kind) {
                                ok = false;
                            }
                        }
                        (Slot::Own(i), None) => {
                            if *op != *f.instr(i) {
                                ok = false;
                            }
                        }
                        _ => ok = false,
                    }
                    if !ok {
                        break;
                    }
                }
            }
            if !ok {
                let proj_exp: Vec<(QueueId, bool)> = expected
                    .iter()
                    .filter_map(|s| match *s {
                        Slot::Comm { queue, produce, .. } => Some((queue, produce)),
                        Slot::Own(_) => None,
                    })
                    .collect();
                let proj_act: Vec<(QueueId, bool)> = actual
                    .iter()
                    .filter_map(|&(_, op)| comm_of(op).map(|(q, p, _)| (q, p)))
                    .collect();
                errs.push(MtVerifyError::PlanCodeMismatch {
                    thread: t,
                    block: b,
                    expected: proj_exp,
                    actual: proj_act,
                });
            }

            // ---- (3) terminator: branch duplication by position.
            let (Some(term), Some(g)) = (term, gb) else { continue };
            let orig_branch = matches!(f.instr(term), Op::Branch { .. });
            let gen_term = tf.block(g).terminator;
            let gen_cond = gen_term.and_then(|gt| match *tf.instr(gt) {
                Op::Branch { cond, .. } => Some(cond),
                _ => None,
            });
            if !orig_branch {
                if gen_cond.is_some() {
                    errs.push(MtVerifyError::BranchDuplicationMismatch {
                        thread: t,
                        block: b,
                        branch: term,
                        expected_duplicate: false,
                    });
                }
                continue;
            }
            let should = partition.get(term) == Some(t)
                || out.plan.relevant_branches(t).contains(&term);
            let Op::Branch { cond, .. } = *f.instr(term) else { unreachable!() };
            let ok = match (should, gen_cond) {
                (true, Some(c)) => c == cond,
                (false, None) => true,
                _ => false,
            };
            if !ok {
                errs.push(MtVerifyError::BranchDuplicationMismatch {
                    thread: t,
                    block: b,
                    branch: term,
                    expected_duplicate: should,
                });
            }
        }
    }
    errs
}

/// DFS back edges of a function's CFG (edges into a block still on the
/// DFS stack). Removing them from the successor relation leaves an
/// acyclic graph over the blocks reachable from entry.
fn back_edges(tf: &Function) -> BTreeSet<(BlockId, BlockId)> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; tf.num_blocks()];
    let mut back = BTreeSet::new();
    let entry = tf.entry();
    color[entry.index()] = Color::Gray;
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = vec![(entry, tf.successors(entry), 0)];
    loop {
        let Some(frame) = stack.last_mut() else { break };
        if frame.2 >= frame.1.len() {
            color[frame.0.index()] = Color::Black;
            stack.pop();
            continue;
        }
        let from = frame.0;
        let s = frame.1[frame.2];
        frame.2 += 1;
        match color[s.index()] {
            Color::White => {
                color[s.index()] = Color::Gray;
                let succs = tf.successors(s);
                stack.push((s, succs, 0));
            }
            Color::Gray => {
                back.insert((from, s));
            }
            Color::Black => {}
        }
    }
    back
}

/// Builds the inter-thread wait graph over static communication
/// operations and reports each cycle as a potential deadlock.
///
/// Nodes are the per-block communication occurrences (aligned by the
/// sequence check). Arcs mean "must complete first": program order
/// inside a block image, cross-block program order — the last comm op
/// of a block's image chains to the first comm op of each successor
/// comm block along the thread's *generated* CFG (two threads visiting
/// comm blocks in different orders is exactly the cross-block deadlock
/// class) — produce→consume per matched occurrence, and
/// consume(k)→produce(k+depth_of(q)) back-pressure on each queue at its
/// allocated depth. DFS back edges are excluded from the cross-block
/// chaining (one-iteration semantics; without this every loop whose
/// body communicates would close a spurious program-order cycle).
fn deadlock_check(
    out: &MtcgOutput,
    comm_seq: &[BTreeMap<BlockId, Vec<(QueueId, bool)>>],
    labels: &HashMap<QueueId, Vec<&QueueLabel>>,
    depth_of: &dyn Fn(QueueId) -> usize,
) -> Vec<MtVerifyError> {
    use gmt_graph::{strongly_connected_components, DiGraph, NodeId};
    let mut g = DiGraph::new();
    let mut meta: Vec<WaitStep> = Vec::new();
    // (thread, block) -> (first node, last node) of the image's ops.
    let mut bounds: HashMap<(usize, BlockId), (NodeId, NodeId)> = HashMap::new();
    // (block, queue, occurrence-within-block) -> node, per direction.
    let mut produce_occ: HashMap<(BlockId, QueueId), Vec<NodeId>> = HashMap::new();
    let mut consume_occ: HashMap<(BlockId, QueueId), Vec<NodeId>> = HashMap::new();
    for (t_idx, per_block) in comm_seq.iter().enumerate() {
        let t = ThreadId(t_idx as u32);
        for (&b, ops) in per_block {
            let mut prev: Option<NodeId> = None;
            for &(queue, produce) in ops {
                let n = g.add_node();
                meta.push(WaitStep { thread: t, block: b, queue, produce, depth: depth_of(queue) });
                if let Some(p) = prev {
                    g.add_arc(p, n); // program order within the image
                }
                prev = Some(n);
                bounds
                    .entry((t_idx, b))
                    .and_modify(|(_, last)| *last = n)
                    .or_insert((n, n));
                let occ = if produce { &mut produce_occ } else { &mut consume_occ };
                occ.entry((b, queue)).or_default().push(n);
            }
        }
    }
    // Cross-block program order, following each thread's generated CFG
    // projected through `origins`: from each comm block's image, walk
    // forward (skipping DFS back edges) through comm-free blocks to the
    // next comm-bearing images and chain last -> first.
    for (t_idx, per_block) in comm_seq.iter().enumerate() {
        let (Some(tf), Some(origins)) = (out.threads.get(t_idx), out.origins.get(t_idx)) else {
            continue;
        };
        let img: HashMap<BlockId, BlockId> = origins.iter().map(|(&g, &b)| (b, g)).collect();
        let back = back_edges(tf);
        for &b in per_block.keys() {
            let (Some(&gb), Some(&(_, last))) = (img.get(&b), bounds.get(&(t_idx, b))) else {
                continue;
            };
            let mut stack: Vec<BlockId> =
                tf.successors(gb).into_iter().filter(|&s| !back.contains(&(gb, s))).collect();
            let mut seen: BTreeSet<BlockId> = BTreeSet::new();
            while let Some(g2) = stack.pop() {
                if !seen.insert(g2) {
                    continue;
                }
                if let Some(&b2) = origins.get(&g2) {
                    if let Some(&(first, _)) = bounds.get(&(t_idx, b2)) {
                        g.add_arc(last, first);
                        continue;
                    }
                }
                stack.extend(
                    tf.successors(g2).into_iter().filter(|&s| !back.contains(&(g2, s))),
                );
            }
        }
    }
    // Queue arcs, matched per (block, queue) occurrence index. Only
    // queues with consistent labels participate (others already
    // reported).
    for (&(b, q), prods) in &produce_occ {
        if labels.get(&q).is_none() {
            continue;
        }
        let depth = depth_of(q);
        let cons = consume_occ.get(&(b, q)).map(Vec::as_slice).unwrap_or(&[]);
        for (k, &p) in prods.iter().enumerate() {
            if let Some(&c) = cons.get(k) {
                g.add_arc(p, c); // consume k waits on produce k
            }
            // produce k+depth waits on consume k freeing a slot.
            if let Some(&later) = prods.get(k + depth) {
                if let Some(&c) = cons.get(k) {
                    g.add_arc(c, later);
                }
            }
        }
    }
    let mut errs = Vec::new();
    for scc in strongly_connected_components(&g) {
        if !scc.is_nontrivial() {
            continue;
        }
        // Recover one concrete cycle inside the SCC by walking arcs
        // that stay within it.
        let inside: BTreeSet<u32> = scc.nodes.iter().map(|n| n.0).collect();
        let mut path: Vec<NodeId> = vec![scc.nodes[0]];
        let mut at = scc.nodes[0];
        let witness = loop {
            let next = g
                .succs(at)
                .iter()
                .copied()
                .find(|n| inside.contains(&n.0))
                .expect("SCC node keeps an in-SCC successor");
            if let Some(pos) = path.iter().position(|&n| n == next) {
                break path[pos..].to_vec();
            }
            path.push(next);
            at = next;
        };
        errs.push(MtVerifyError::PotentialDeadlock {
            witness: witness.into_iter().map(|n| meta[n.index()].clone()).collect(),
        });
    }
    errs
}

/// Definitions 1–2 on the original CFG: register points must dominate
/// the uses they feed (no def of the register by the producing thread
/// between the last crossing and the use), and every inter-thread
/// memory dependence must cross a sync point of its pair on all paths.
fn defs12_check(
    f: &Function,
    partition: &Partition,
    pdg: &Pdg,
    out: &MtcgOutput,
) -> Vec<MtVerifyError> {
    let mut errs = Vec::new();
    let preds = f.predecessors();
    for item in out.plan.items() {
        match item.kind {
            CommKind::Register(r) => {
                // Forward may-analysis: `dirty[b]` = entering b, some
                // path saw a def of r (by the producing thread) after
                // the last crossing of one of the item's points.
                // Reading a dirty r at a consuming-thread use is a
                // stale value on that path.
                let uses_r = |i: InstrId| f.instr(i).uses().contains(&r);
                // dirty_in[b] = state at b's entry, before a
                // BlockStart(b) point (the transfer handles it).
                let mut dirty_in = vec![false; f.num_blocks()];
                loop {
                    let mut changed = false;
                    for b in f.reverse_post_order() {
                        let new_in = preds[b.index()].iter().any(|p| {
                            block_out(f, partition, &item.points, *p, dirty_in[p.index()], r, item.from)
                        });
                        if new_in && !dirty_in[b.index()] {
                            dirty_in[b.index()] = true;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                // A duplicated branch's condition may be delivered by
                // the branch's *owner* rather than the def's owner:
                // the owner holds the operand (received via its own
                // checked item, or computed locally) and redistributes
                // it to every duplicating thread right before the
                // branch copy. Such a mediated crossing refreshes
                // `to`'s copy at exactly that use, so it must not
                // count as a stale read of this item's channel. The
                // mediator's own freshness at `i` is delegated: if its
                // copy were stale, the (from -> owner) item's analysis
                // reports it at `i` itself (the owned branch is a
                // consumer use there).
                let mediated_fresh_at = |i: InstrId| {
                    out.plan.items().any(|it2| {
                        it2.kind == CommKind::Register(r)
                            && it2.to == item.to
                            && it2.points.contains(&CommPoint::Before(i))
                            && (it2.from == item.from
                                || partition.get(i) == Some(it2.from))
                    })
                };
                // Collection pass: walk each block from its fixpoint
                // in-state, recording stale uses.
                let mut stale: BTreeSet<InstrId> = BTreeSet::new();
                for b in f.blocks() {
                    let mut d = dirty_in[b.index()]
                        && !item.points.contains(&CommPoint::BlockStart(b));
                    for i in f.block(b).all_instrs() {
                        if item.points.contains(&CommPoint::Before(i)) {
                            d = false;
                        }
                        // A "use by the consumer" is an instruction
                        // assigned to it — or a relevant branch it
                        // duplicates (the copy reads the same value).
                        let duplicated_branch = f.instr(i).is_branch()
                            && out.plan.relevant_branches(item.to).contains(&i);
                        let consumer_use =
                            partition.get(i) == Some(item.to) || duplicated_branch;
                        if d
                            && consumer_use
                            && uses_r(i)
                            && !(duplicated_branch && mediated_fresh_at(i))
                        {
                            stale.insert(i);
                        }
                        if f.instr(i).def() == Some(r) {
                            // A producer def makes the value pending; a
                            // def by anyone else supersedes it.
                            d = partition.get(i) == Some(item.from);
                        }
                        if item.points.contains(&CommPoint::After(i)) {
                            d = false;
                        }
                    }
                }
                for use_instr in stale {
                    errs.push(MtVerifyError::StaleValue {
                        reg: r,
                        use_instr,
                        pair: (item.from, item.to),
                    });
                }
            }
            CommKind::Memory => {
                // Every PDG memory dependence between the pair must
                // cross a sync point on all paths src -> dst: search
                // for a path that avoids every point.
                for dep in pdg.deps() {
                    if dep.kind != DepKind::Memory {
                        continue;
                    }
                    if partition.get(dep.src) != Some(item.from)
                        || partition.get(dep.dst) != Some(item.to)
                    {
                        continue;
                    }
                    if uncovered_path_exists(f, &item.points, dep.src, dep.dst) {
                        errs.push(MtVerifyError::UncoveredMemoryDep {
                            src: dep.src,
                            dst: dep.dst,
                            pair: (item.from, item.to),
                        });
                    }
                }
            }
        }
    }
    errs
}

/// Transfer function of the staleness analysis across one whole block.
fn block_out(
    f: &Function,
    partition: &Partition,
    points: &BTreeSet<CommPoint>,
    b: BlockId,
    dirty_in: bool,
    r: Reg,
    from: ThreadId,
) -> bool {
    let mut d = dirty_in && !points.contains(&CommPoint::BlockStart(b));
    for i in f.block(b).all_instrs() {
        if points.contains(&CommPoint::Before(i)) {
            d = false;
        }
        if f.instr(i).def() == Some(r) {
            d = partition.get(i) == Some(from);
        }
        if points.contains(&CommPoint::After(i)) {
            d = false;
        }
    }
    d
}

/// Does a CFG path from (just after) `src` to `dst` exist that crosses
/// none of `points`? Instruction-level DFS; crossing a point severs
/// the corresponding edge.
fn uncovered_path_exists(
    f: &Function,
    points: &BTreeSet<CommPoint>,
    src: InstrId,
    dst: InstrId,
) -> bool {
    // Successor instructions of instruction i.
    let instr_succs = |i: InstrId| -> Vec<InstrId> {
        let b = f.block_of(i);
        let in_block: Vec<InstrId> = f.block(b).all_instrs().collect();
        let pos = in_block.iter().position(|&x| x == i).expect("instr in its block");
        if pos + 1 < in_block.len() {
            return vec![in_block[pos + 1]];
        }
        f.successors(b)
            .into_iter()
            .filter(|s| !points.contains(&CommPoint::BlockStart(*s)))
            .filter_map(|s| f.block(s).all_instrs().next())
            .collect()
    };
    // Entering instruction i crosses Before(i); leaving it crosses
    // After(i).
    let mut stack: Vec<InstrId> = if points.contains(&CommPoint::After(src)) {
        Vec::new()
    } else {
        instr_succs(src)
    };
    let mut seen: BTreeSet<InstrId> = BTreeSet::new();
    while let Some(i) = stack.pop() {
        if points.contains(&CommPoint::Before(i)) {
            continue; // path would cross the point entering i
        }
        if i == dst {
            return true;
        }
        if !seen.insert(i) {
            continue;
        }
        if points.contains(&CommPoint::After(i)) {
            continue; // crossing on the way out
        }
        stack.extend(instr_succs(i));
    }
    false
}
