//! An instruction-granularity view of the CFG: the positions and arcs
//! from which COCO's flow graphs (`G_f`) are built.

use gmt_ir::{BlockId, Function, InstrId, Profile};
use gmt_mtcg::CommPoint;
use std::collections::HashMap;

/// A program position at instruction granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pos {
    /// The entry of a block (before its first instruction).
    Entry(BlockId),
    /// The slot of an instruction.
    At(InstrId),
}

/// One control-flow arc between positions, annotated with its profile
/// weight and the [`CommPoint`] communication would occupy if placed on
/// it (`None` when the arc is not placeable — an unsplit critical
/// edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PosArc {
    /// Tail position.
    pub from: Pos,
    /// Head position.
    pub to: Pos,
    /// Execution count under the profile.
    pub weight: u64,
    /// Concrete insertion point, if placeable.
    pub point: Option<CommPoint>,
}

/// The instruction-granularity control-flow relation of a function.
#[derive(Clone, Debug)]
pub struct PosGraph {
    arcs: Vec<PosArc>,
    /// Block of each position.
    block_of: HashMap<Pos, BlockId>,
}

impl PosGraph {
    /// Builds the position graph of `f` under `profile`.
    pub fn build(f: &Function, profile: &Profile) -> PosGraph {
        let block_weights = profile.block_weights(f);
        let mut arcs = Vec::new();
        let mut block_of = HashMap::new();
        let mut preds_count = vec![0usize; f.num_blocks()];
        for b in f.blocks() {
            for s in f.successors(b) {
                preds_count[s.index()] += 1;
            }
        }
        for b in f.blocks() {
            let w = block_weights[b.index()];
            let block = f.block(b);
            block_of.insert(Pos::Entry(b), b);
            let mut prev = Pos::Entry(b);
            let mut prev_point: Option<CommPoint> = block
                .instrs
                .first()
                .map(|_| CommPoint::BlockStart(b))
                .or(Some(CommPoint::BlockStart(b)));
            for &i in &block.instrs {
                block_of.insert(Pos::At(i), b);
                arcs.push(PosArc { from: prev, to: Pos::At(i), weight: w, point: prev_point });
                prev = Pos::At(i);
                prev_point = Some(CommPoint::After(i));
            }
            let term = block.terminator.expect("verified function");
            block_of.insert(Pos::At(term), b);
            arcs.push(PosArc { from: prev, to: Pos::At(term), weight: w, point: prev_point });
            // Block-to-block arcs.
            let succs = f.successors(b);
            let single_succ = succs.len() == 1;
            for s in succs {
                let ew = profile.edge(b, s);
                let point = if single_succ {
                    // The edge fires exactly when the block ends.
                    Some(CommPoint::Before(term))
                } else if preds_count[s.index()] == 1 {
                    Some(CommPoint::BlockStart(s))
                } else {
                    None // critical edge: not placeable
                };
                arcs.push(PosArc { from: Pos::At(term), to: Pos::Entry(s), weight: ew, point });
            }
        }
        PosGraph { arcs, block_of }
    }

    /// All arcs.
    pub fn arcs(&self) -> &[PosArc] {
        &self.arcs
    }

    /// The block containing a position.
    pub fn block_of(&self, p: Pos) -> BlockId {
        self.block_of[&p]
    }

    /// All positions (entries and instruction slots).
    pub fn positions(&self) -> impl Iterator<Item = Pos> + '_ {
        self.block_of.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, FunctionBuilder};

    #[test]
    fn straight_block_arcs_chain() {
        let mut b = FunctionBuilder::new("s");
        let x = b.const_(1);
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        let f = b.finish().unwrap();
        let profile = Profile::uniform(&f, 5);
        let g = PosGraph::build(&f, &profile);
        // Entry -> const -> add -> ret: 3 arcs, all weight 5.
        assert_eq!(g.arcs().len(), 3);
        assert!(g.arcs().iter().all(|a| a.weight == 5));
        assert!(g.arcs().iter().all(|a| a.point.is_some()));
    }

    #[test]
    fn branch_edges_carry_edge_weights_and_points() {
        let mut b = FunctionBuilder::new("br");
        let x = b.param();
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let c = b.bin(BinOp::Lt, x, 3i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish().unwrap();
        let profile = Profile::uniform(&f, 2);
        let g = PosGraph::build(&f, &profile);
        // Branch -> Entry(t): single-pred head, so point = BlockStart(t).
        let arc = g
            .arcs()
            .iter()
            .find(|a| a.to == Pos::Entry(BlockId(1)))
            .unwrap();
        assert_eq!(arc.point, Some(CommPoint::BlockStart(BlockId(1))));
        assert_eq!(arc.weight, 2);
        // Jump(t) -> Entry(j): tail has single successor => Before(jump).
        let jt = f.block(BlockId(1)).terminator.unwrap();
        let arc2 = g
            .arcs()
            .iter()
            .find(|a| a.from == Pos::At(jt))
            .unwrap();
        assert_eq!(arc2.point, Some(CommPoint::Before(jt)));
    }

    #[test]
    fn critical_edges_unplaceable() {
        // Hand-build a critical edge: branch to a block with 2 preds.
        let mut b = FunctionBuilder::new("crit");
        let x = b.param();
        let mid = b.block("mid");
        let join = b.block("join");
        let c = b.bin(BinOp::Lt, x, 3i64);
        b.branch(c, join, mid); // branch edge to multi-pred join = critical
        b.switch_to(mid);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish().unwrap();
        assert!(gmt_ir::has_critical_edges(&f));
        let profile = Profile::uniform(&f, 1);
        let g = PosGraph::build(&f, &profile);
        assert!(g.arcs().iter().any(|a| a.point.is_none()));
    }
}
