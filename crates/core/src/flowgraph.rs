//! Construction of the min-cut flow graphs `G_f` (§3.1.1–3.1.3).

use crate::pos::{Pos, PosGraph};
use crate::safety::Safety;
use gmt_graph::{Capacity, Commodity, FlowNetwork, FlowNode, MaxFlowAlgo, MinCut};
use gmt_ir::{ControlDeps, Function, InstrId, Reg};
use gmt_mtcg::CommPoint;
use gmt_pdg::{Partition, ThreadId};
use std::collections::{BTreeSet, HashMap};

/// A built flow graph with the bookkeeping to map a cut back to
/// communication points.
pub struct Gf {
    /// The underlying network.
    pub net: FlowNetwork,
    /// Node of each included position.
    pub node_of: HashMap<Pos, FlowNode>,
    /// For each network arc (by index): the insertion point it
    /// represents (`None` for special S/T arcs and unplaceable arcs).
    pub arc_point: Vec<Option<CommPoint>>,
    /// The super source (register mode only).
    pub source: Option<FlowNode>,
    /// The super sink (register mode only).
    pub sink: Option<FlowNode>,
}

impl Gf {
    /// Translates a min-cut into insertion points.
    ///
    /// # Panics
    ///
    /// Panics if a cut arc has no point (infinite-cost arcs can never be
    /// in a finite cut, so this indicates a solver bug).
    pub fn cut_points(&self, cut: &MinCut) -> BTreeSet<CommPoint> {
        cut.arcs
            .iter()
            .map(|&a| {
                self.arc_point[a.index()]
                    .expect("finite cut arcs always correspond to program points")
            })
            .collect()
    }
}

/// Shared context for building flow graphs for one (source, target)
/// thread pair.
pub struct GfBuilder<'a> {
    /// The function being parallelized.
    pub f: &'a Function,
    /// Instruction-granularity CFG with weights and points.
    pub pos_graph: &'a PosGraph,
    /// Control dependences (for Properties 1–2 and §3.1.2 penalties).
    pub cdeps: &'a ControlDeps,
    /// The partition.
    pub partition: &'a Partition,
    /// Current relevant branches per thread.
    pub relevant: &'a [BTreeSet<InstrId>],
    /// Per-block profile weights.
    pub block_weights: &'a [u64],
    /// Apply the §3.1.2 control-flow penalties.
    pub control_penalties: bool,
    /// Source thread.
    pub s: ThreadId,
    /// Target thread.
    pub t: ThreadId,
}

impl GfBuilder<'_> {
    /// Whether every branch controlling `block` is relevant to `thread`
    /// (i.e. the block's execution condition is expressible in that
    /// thread without new branches).
    fn block_relevant_to(&self, block: gmt_ir::BlockId, thread: ThreadId) -> bool {
        self.cdeps
            .of_block(block)
            .iter()
            .all(|cd| self.relevant[thread.index()].contains(&cd.branch))
    }

    /// The §3.1.2 penalty for placing communication in `block`: the
    /// total profile weight of branches that would newly become
    /// relevant to the target thread.
    fn control_penalty(&self, block: gmt_ir::BlockId) -> u64 {
        if !self.control_penalties {
            return 0;
        }
        let mut seen = BTreeSet::new();
        let mut penalty = 0u64;
        let mut stack = vec![block];
        while let Some(b) = stack.pop() {
            for cd in self.cdeps.of_block(b) {
                if self.relevant[self.t.index()].contains(&cd.branch) {
                    continue;
                }
                if seen.insert(cd.branch) {
                    penalty += self.block_weights[cd.block.index()];
                    stack.push(cd.block);
                }
            }
        }
        penalty
    }

    /// The cost of a normal arc for the register problem: infinite when
    /// the point is unplaceable, unsafe (Property 3), or irrelevant to
    /// the source thread (Property 2); otherwise profile weight plus
    /// the control penalty.
    fn register_arc_cost(
        &self,
        arc: &crate::pos::PosArc,
        safety: &Safety,
        r: Reg,
    ) -> Capacity {
        let Some(point) = arc.point else {
            return Capacity::INFINITE;
        };
        // Property 3 (safety): the SAFE state at the boundary the arc
        // crosses is the state just after the tail position.
        let safe = match arc.from {
            Pos::At(prev) => safety.safe_after(prev, r),
            Pos::Entry(b) => safety.safe_at_entry(b, r),
        };
        if !safe {
            return Capacity::INFINITE;
        }
        // Property 2 (relevance to the source thread).
        let block = point.block(self.f);
        if !self.block_relevant_to(block, self.s) {
            return Capacity::INFINITE;
        }
        Capacity::finite(scaled_cost(arc.weight, self.control_penalty(block)))
    }

    /// The cost of a normal arc for the memory problem: no safety
    /// notion; Property 2 for the source thread is a hard constraint,
    /// irrelevance to the target thread is a penalty.
    fn memory_arc_cost(&self, arc: &crate::pos::PosArc) -> Capacity {
        let Some(point) = arc.point else {
            return Capacity::INFINITE;
        };
        let block = point.block(self.f);
        if !self.block_relevant_to(block, self.s) {
            return Capacity::INFINITE;
        }
        Capacity::finite(scaled_cost(arc.weight, self.control_penalty(block)))
    }

    /// Builds `G_f` for register `r` (§3.1.1): nodes are positions where
    /// `r` is live with respect to the target thread; special arcs run
    /// from S to every definition of `r` in the source thread and from
    /// every target-side use to T.
    ///
    /// Returns `None` when there are no source definitions or no target
    /// uses (nothing to communicate).
    pub fn build_register(
        &self,
        r: Reg,
        safety: &Safety,
        live: &LiveMap,
        defs_in_s: &[InstrId],
        uses_in_t: &[InstrId],
    ) -> Option<Gf> {
        if defs_in_s.is_empty() || uses_in_t.is_empty() {
            return None;
        }
        let mut net = FlowNetwork::new();
        let mut node_of: HashMap<Pos, FlowNode> = HashMap::new();
        let mut arc_point = Vec::new();
        let node = |net: &mut FlowNetwork, node_of: &mut HashMap<Pos, FlowNode>, p: Pos| {
            *node_of.entry(p).or_insert_with(|| net.add_node())
        };
        // Include a position if r is live there (w.r.t. t) or it
        // defines r in s (live starts right after).
        let included = |p: Pos| -> bool {
            match p {
                Pos::Entry(b) => live.live_at_entry(b),
                Pos::At(i) => live.live_before(i) || live.live_after(i),
            }
        };
        for arc in self.pos_graph.arcs() {
            if !included(arc.from) || !included(arc.to) {
                continue;
            }
            let cost = self.register_arc_cost(arc, safety, r);
            let from = node(&mut net, &mut node_of, arc.from);
            let to = node(&mut net, &mut node_of, arc.to);
            net.add_arc(from, to, cost);
            arc_point.push(arc.point);
        }
        let source = net.add_node();
        let sink = net.add_node();
        let mut connected_source = false;
        for &d in defs_in_s {
            if let Some(&n) = node_of.get(&Pos::At(d)) {
                net.add_arc(source, n, Capacity::INFINITE);
                arc_point.push(None);
                connected_source = true;
            }
        }
        let mut connected_sink = false;
        for &u in uses_in_t {
            if let Some(&n) = node_of.get(&Pos::At(u)) {
                net.add_arc(n, sink, Capacity::INFINITE);
                arc_point.push(None);
                connected_sink = true;
            }
        }
        if !connected_source || !connected_sink {
            return None;
        }
        Some(Gf { net, node_of, arc_point, source: Some(source), sink: Some(sink) })
    }

    /// Builds `G_f` for the memory dependences of the pair (§3.1.3):
    /// nodes are *all* positions; each dependence arc becomes a
    /// source–sink commodity.
    pub fn build_memory(&self, deps: &[(InstrId, InstrId)]) -> (Gf, Vec<Commodity>) {
        let mut net = FlowNetwork::new();
        let mut node_of: HashMap<Pos, FlowNode> = HashMap::new();
        let mut arc_point = Vec::new();
        let node = |net: &mut FlowNetwork, node_of: &mut HashMap<Pos, FlowNode>, p: Pos| {
            *node_of.entry(p).or_insert_with(|| net.add_node())
        };
        for arc in self.pos_graph.arcs() {
            let cost = self.memory_arc_cost(arc);
            let from = node(&mut net, &mut node_of, arc.from);
            let to = node(&mut net, &mut node_of, arc.to);
            net.add_arc(from, to, cost);
            arc_point.push(arc.point);
        }
        let commodities = deps
            .iter()
            .map(|&(src, dst)| Commodity {
                source: node_of[&Pos::At(src)],
                sink: node_of[&Pos::At(dst)],
            })
            .collect();
        (Gf { net, node_of, arc_point, source: None, sink: None }, commodities)
    }

    /// Runs the register optimization: min-cut on the register `G_f`.
    /// Returns the chosen points, or `None` when no finite cut exists
    /// (the caller falls back to the MTCG placement).
    pub fn optimize_register(
        &self,
        r: Reg,
        safety: &Safety,
        live: &LiveMap,
        defs_in_s: &[InstrId],
        uses_in_t: &[InstrId],
        algo: MaxFlowAlgo,
    ) -> Option<BTreeSet<CommPoint>> {
        let gf = self.build_register(r, safety, live, defs_in_s, uses_in_t)?;
        let cut = gf.net.min_cut_with(gf.source.unwrap(), gf.sink.unwrap(), algo);
        if !cut.is_feasible() {
            return None;
        }
        Some(gf.cut_points(&cut))
    }
}

/// Arc cost scaling: profile weight dominates, but every placeable arc
/// costs at least 1. A zero-cost arc would be "cut" by the max-flow
/// solver without appearing in the reported cut set, silently dropping
/// communication on paths the training profile never saw — correct
/// placement must hold on *all* paths, not just profiled ones.
fn scaled_cost(weight: u64, penalty: u64) -> u64 {
    weight
        .saturating_add(penalty)
        .saturating_mul(1024)
        .saturating_add(1)
        .min(u64::MAX - 1)
}

/// Per-position liveness of one register with respect to the target
/// thread: "the live range of r considering only the uses of r in the
/// instructions assigned to T_t" (plus T_t's relevant branches).
pub struct LiveMap {
    live_before: Vec<bool>,
    live_after: Vec<bool>,
    live_entry: Vec<bool>,
}

impl LiveMap {
    /// Computes the thread-aware live map of `r`.
    ///
    /// `counts_as_use` decides which instructions' uses matter (target
    /// thread instructions and relevant branches).
    pub fn compute(f: &Function, r: Reg, counts_as_use: impl Fn(InstrId) -> bool) -> LiveMap {
        let live = gmt_ir::Liveness::compute_filtered(f, &counts_as_use);
        let mut live_before = vec![false; f.num_instrs()];
        let mut live_after = vec![false; f.num_instrs()];
        let mut live_entry = vec![false; f.num_blocks()];
        for b in f.blocks() {
            live_entry[b.index()] = live.live_at_entry(b, r);
            // Walk the block backwards from its live-out.
            let ids: Vec<_> = f.block(b).all_instrs().collect();
            let mut cur = live.live_at_exit(b, r);
            for &i in ids.iter().rev() {
                live_after[i.index()] = cur;
                let op = f.instr(i);
                if op.def() == Some(r) {
                    cur = false;
                }
                if counts_as_use(i) && op.uses().contains(&r) {
                    cur = true;
                }
                live_before[i.index()] = cur;
            }
        }
        LiveMap { live_before, live_after, live_entry }
    }

    /// Whether `r` is live just before instruction `i`.
    pub fn live_before(&self, i: InstrId) -> bool {
        self.live_before[i.index()]
    }

    /// Whether `r` is live just after instruction `i`.
    pub fn live_after(&self, i: InstrId) -> bool {
        self.live_after[i.index()]
    }

    /// Whether `r` is live at the entry of block `b`.
    pub fn live_at_entry(&self, b: gmt_ir::BlockId) -> bool {
        self.live_entry[b.index()]
    }
}
