//! Static schedule estimates, captured at partition time.
//!
//! The partitioners make their decisions from profile-weighted static
//! quantities — per-thread load balance, cut-edge counts, plan
//! occurrences — but until now those numbers were discarded once
//! codegen ran. [`SchedEstimate`] snapshots them on the
//! [`Parallelized`](crate::Parallelized) result so a report can join
//! "what the scheduler *thought* it was building" against what the
//! timed simulator then measured (the harness's `repro --explain`
//! does exactly that join). A large estimate-vs-actual gap is the
//! signal that the static model — not the partition heuristic — is
//! what limits the schedule.

use gmt_ir::{Function, Profile};
use gmt_mtcg::{CommKind, QueueLabel};
use gmt_pdg::{Partition, Pdg};
use gmt_sched::{balance, cut_summary, CutSummary};

/// Profile-weighted static estimates of one parallelization, captured
/// when the partition and communication plan are fixed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedEstimate {
    /// Estimated compute cycles per thread: block profile weight ×
    /// instruction latency, summed over each thread's instructions
    /// (the partitioners' load-balance objective).
    pub compute_cycles: Vec<u64>,
    /// Estimated communication-instruction cycles added to each
    /// thread: one cycle per produce (on the sending thread) and one
    /// per consume (on the receiving thread), × the occurrence's block
    /// weight.
    pub comm_cycles: Vec<u64>,
    /// `compute_cycles + comm_cycles`, the per-thread totals an ideal
    /// stall-free machine would take.
    pub thread_cycles: Vec<u64>,
    /// Heaviest thread's share of the total estimated load, percent.
    pub max_share_pct: u32,
    /// Inter-thread dependence arcs the partition cut, by kind.
    pub cut: CutSummary,
    /// Estimated dynamic values per queue (occurrence block weight,
    /// summed per assigned queue) — the static twin of the traced
    /// engine's per-queue produce counts.
    pub queue_traffic: Vec<u64>,
    /// How many of the plan's communicated items are memory
    /// synchronization tokens (blocking `consume.sync` on the
    /// receiving side) rather than register values.
    pub sync_points: usize,
}

impl SchedEstimate {
    /// Total estimated cycles across threads (the serial estimate).
    pub fn total(&self) -> u64 {
        self.thread_cycles.iter().sum()
    }

    /// The bottleneck thread's estimated cycles — the static
    /// prediction of the parallel run time.
    pub fn bottleneck(&self) -> u64 {
        self.thread_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Computes the estimate for a fixed partition and realized queue
    /// labeling. `num_queues` sizes the traffic vector; `num_threads`
    /// sizes the per-thread vectors.
    pub fn compute(
        f: &Function,
        profile: &Profile,
        pdg: &Pdg,
        partition: &Partition,
        labels: &[QueueLabel],
        num_queues: u32,
    ) -> SchedEstimate {
        let bal = balance(f, profile, partition);
        let nthreads = bal.per_thread.len();
        let weights = profile.block_weights(f);
        let mut comm_cycles = vec![0u64; nthreads];
        let mut sync_points = 0usize;
        for l in labels {
            let b = l.point.block(f);
            let w = weights.get(b.index()).copied().unwrap_or(0);
            if let Some(c) = comm_cycles.get_mut(l.from.index()) {
                *c = c.saturating_add(w);
            }
            if let Some(c) = comm_cycles.get_mut(l.to.index()) {
                *c = c.saturating_add(w);
            }
            if l.kind == CommKind::Memory {
                sync_points += 1;
            }
        }
        let thread_cycles: Vec<u64> = bal
            .per_thread
            .iter()
            .zip(&comm_cycles)
            .map(|(&c, &m)| c.saturating_add(m))
            .collect();
        let total: u64 = thread_cycles.iter().sum();
        let max = thread_cycles.iter().copied().max().unwrap_or(0);
        let max_share_pct = (max.saturating_mul(100))
            .checked_div(total)
            .map_or(100, |v| u32::try_from(v).unwrap_or(100));
        SchedEstimate {
            compute_cycles: bal.per_thread,
            comm_cycles,
            thread_cycles,
            max_share_pct,
            cut: cut_summary(pdg, partition),
            queue_traffic: gmt_mtcg::estimated_traffic(f, profile, labels, num_queues),
            sync_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Parallelizer, Scheduler};
    use gmt_ir::{BinOp, FunctionBuilder};

    #[test]
    fn estimate_rides_on_parallelized() {
        let mut b = FunctionBuilder::new("f");
        let n = b.param();
        let i = b.fresh_reg();
        let s = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.const_into(s, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let t = b.bin(BinOp::Mul, i, i);
        b.bin_into(BinOp::Add, s, s, t);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(s.into()));
        let f = b.finish().unwrap();
        let profile = Profile::uniform(&f, 10);

        let p = Parallelizer::new(Scheduler::dswp(2)).parallelize(&f, &profile).unwrap();
        let est = &p.estimate;
        assert_eq!(est.compute_cycles.len(), 2);
        assert_eq!(est.thread_cycles.len(), 2);
        assert_eq!(est.queue_traffic.len(), p.num_queues() as usize);
        assert!(est.total() > 0);
        assert!(est.bottleneck() <= est.total());
        assert!(est.max_share_pct >= 50, "{}", est.max_share_pct);
        // Every labeled queue's estimated traffic is accounted.
        let traffic: u64 = est.queue_traffic.iter().sum();
        let comm: u64 = est.comm_cycles.iter().sum();
        assert_eq!(comm, traffic * 2, "one produce + one consume per value");
    }
}
