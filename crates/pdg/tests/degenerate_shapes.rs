//! Regressions for degenerate address shapes surfaced by the
//! differential fuzzer's IR generator (`gmt-fuzz`): the PDG analyses
//! must degrade to conservative answers — never panic — on shapes the
//! rules cannot see through, and on analysis inputs that do not match
//! the queried function.

use gmt_ir::{BinOp, Dominators, FunctionBuilder, LoopForest, Op, Reg};
use gmt_pdg::affine::{affine_access, kills_carried_dep};
use gmt_pdg::{AliasInfo, PointsTo};

/// Generator shape `SelectPtr`: a pointer chosen by a branchy diamond
/// (`ptr = c ? &a : &b`), then stored through. The points-to set of the
/// selected pointer must be the union of both arms, so a store through
/// it may-aliases accesses to either array — and only those.
#[test]
fn diamond_selected_pointer_aliases_both_arms_only() {
    let mut b = FunctionBuilder::new("select_ptr");
    let arr0 = b.object("arr0", 16);
    let arr1 = b.object("arr1", 16);
    let arr2 = b.object("arr2", 16);
    let base0 = b.lea(arr0, 0);
    let base1 = b.lea(arr1, 0);
    let base2 = b.lea(arr2, 0);
    let ptr = b.fresh_reg();
    let then_b = b.block("then");
    let else_b = b.block("else");
    let join = b.block("join");
    let c = b.bin(BinOp::Lt, base0, 3i64);
    b.branch(c, then_b, else_b);
    b.switch_to(then_b);
    b.mov_into(ptr, base0);
    b.jump(join);
    b.switch_to(else_b);
    b.mov_into(ptr, base1);
    b.jump(join);
    b.switch_to(join);
    b.store(ptr, 0, 7i64);
    let v0 = b.load(base0, 0);
    let v2 = b.load(base2, 0);
    let sum = b.bin(BinOp::Add, v0, v2);
    b.ret(Some(sum.into()));
    let f = b.finish().unwrap();

    let alias = AliasInfo::compute(&f);
    let store = f.all_instrs().find(|&i| matches!(f.instr(i), Op::Store(..))).unwrap();
    let mut loads = f.all_instrs().filter(|&i| f.instr(i).is_mem_read());
    let load0 = loads.next().unwrap();
    let load2 = loads.next().unwrap();
    assert!(alias.may_alias(&f, store, load0), "store through selected ptr may hit arr0");
    assert!(!alias.may_alias(&f, store, load2), "arr2 is in neither arm of the select");
}

/// `i = 0; while (i < n) {{ a[i] = i; i += 1 }}; load a[0]` — the
/// affine-store-in-a-loop shape the generator emits (including its
/// zero-trip instantiations).
fn affine_loop_fn() -> gmt_ir::Function {
    let mut b = FunctionBuilder::new("affine_loop");
    let a = b.object("a", 16);
    let base = b.lea(a, 0);
    let i = b.fresh_reg();
    b.const_into(i, 0);
    let header = b.block("h");
    let body = b.block("b");
    let exit = b.block("x");
    b.jump(header);
    b.switch_to(header);
    let c = b.bin(BinOp::Lt, i, 4i64);
    b.branch(c, body, exit);
    b.switch_to(body);
    let addr = b.bin(BinOp::Add, base, i);
    b.store(addr, 0, i);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(header);
    b.switch_to(exit);
    let v = b.load(base, 0);
    b.ret(Some(v.into()));
    b.finish().unwrap()
}

/// A loop forest computed for a *different* (smaller) function must
/// make every affine query degrade to "unknown shape" — `None` /
/// "cannot drop the arc" — instead of faulting on the block-indexed
/// tables. The arc stays, which is always sound.
#[test]
fn mismatched_loop_forest_degrades_conservatively() {
    let f = affine_loop_fn();
    let defuse = gmt_ir::DefUse::compute(&f);

    // A single-block function: its forest has one innermost entry and
    // no loops, far too small for `f`'s block ids.
    let mut tiny = FunctionBuilder::new("tiny");
    tiny.ret(None);
    let tiny = tiny.finish().unwrap();
    let tiny_dom = Dominators::compute(&tiny);
    let foreign = LoopForest::compute(&tiny, &tiny_dom);

    let store = f.all_instrs().find(|&i| matches!(f.instr(i), Op::Store(..))).unwrap();
    let load = f.all_instrs().find(|&i| f.instr(i).is_mem_read()).unwrap();
    // The store's address resolves through an induction variable whose
    // update block is outside the foreign forest's tables: not affine.
    assert_eq!(affine_access(&f, &defuse, &foreign, store), None);
    assert!(!kills_carried_dep(&f, &defuse, &foreign, store, load));

    // Sanity: with the matching forest the same store *is* affine.
    let dom = Dominators::compute(&f);
    let loops = LoopForest::compute(&f, &dom);
    assert!(affine_access(&f, &defuse, &loops, store).is_some());
}

/// A register outside the analyzed function's register file is ⊤ — the
/// analysis knows nothing about it, so it may address anything.
#[test]
fn out_of_range_register_query_is_top() {
    let f = affine_loop_fn();
    let alias = AliasInfo::compute(&f);
    let foreign = Reg(f.num_regs() + 100);
    assert_eq!(alias.points_to(foreign), PointsTo::Top);
}
