//! The Program Dependence Graph (Ferrante–Ottenstein–Warren) over the
//! IR, with register, memory, and control dependence arcs.

use crate::alias::AliasInfo;
use gmt_graph::{DiGraph, NodeId};
use gmt_ir::{ControlDeps, Dominators, Function, InstrId, LoopForest, PostDominators, Reg};
use std::collections::HashMap;
use std::fmt;

/// The kind of a dependence arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Data dependence through virtual register `r` (def → use).
    Register(Reg),
    /// Memory dependence (ordering between aliasing accesses where at
    /// least one writes).
    Memory,
    /// Control dependence (branch → controlled instruction).
    Control,
}

/// Options controlling PDG construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PdgOptions {
    /// Drop cross-iteration memory arcs that affine array-dependence
    /// analysis proves vacuous (the loop-aware memory disambiguation
    /// the paper's §4 points at). Sound; on by default.
    pub loop_aware_disambiguation: bool,
}

impl Default for PdgOptions {
    fn default() -> PdgOptions {
        PdgOptions { loop_aware_disambiguation: true }
    }
}

/// One PDG arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dep {
    /// Source instruction.
    pub src: InstrId,
    /// Target instruction.
    pub dst: InstrId,
    /// Dependence kind.
    pub kind: DepKind,
    /// Whether the dependence may be carried around a loop back edge.
    pub loop_carried: bool,
}

/// The program dependence graph of one function.
///
/// Nodes are the function's placed instructions; arcs are the
/// dependences a GMT scheduler must respect. "The PDG for an arbitrary
/// global (intraprocedural) region must include both data and control
/// dependences" (§2): register data dependences come from reaching
/// definitions, memory dependences from the points-to analysis (made
/// bi-directional between instructions sharing a loop, since any memory
/// dependence inside a loop is essentially bi-directional — §4), and
/// control dependences from the post-dominance frontier.
#[derive(Clone)]
pub struct Pdg {
    deps: Vec<Dep>,
    outgoing: HashMap<InstrId, Vec<usize>>,
    incoming: HashMap<InstrId, Vec<usize>>,
    nodes: Vec<InstrId>,
}

impl Pdg {
    /// Builds the PDG of `f`, computing the required analyses
    /// (dominators, control dependence, def-use chains, points-to)
    /// internally, with loop-aware memory disambiguation enabled.
    pub fn build(f: &Function) -> Pdg {
        let alias = AliasInfo::compute(f);
        Pdg::build_with_options(f, &alias, &PdgOptions::default())
    }

    /// Builds the PDG of `f` with a precomputed alias analysis and
    /// default options.
    pub fn build_with_alias(f: &Function, alias: &AliasInfo) -> Pdg {
        Pdg::build_with_options(f, alias, &PdgOptions::default())
    }

    /// Builds the PDG of `f` with explicit options.
    pub fn build_with_options(f: &Function, alias: &AliasInfo, options: &PdgOptions) -> Pdg {
        let pdom = PostDominators::compute(f);
        let dom = Dominators::compute(f);
        let cdeps = ControlDeps::compute(f, &pdom);
        let defuse = gmt_ir::DefUse::compute(f);
        let loops = LoopForest::compute(f, &dom);

        let mut deps: Vec<Dep> = Vec::new();

        // -- Register dependences (def -> use). Loop-carried iff the
        // def does not dominate the use (it reaches around a back edge)
        // or def and use share a loop and the def follows the use.
        for (src, dst, r) in defuse.def_use_pairs() {
            let carried = is_loop_carried(f, &dom, &loops, src, dst);
            deps.push(Dep { src, dst, kind: DepKind::Register(r), loop_carried: carried });
        }

        // -- Memory dependences. An ordering arc `a -> b` exists exactly
        // when `b` can execute after `a` on some path: same block in
        // instruction order, or the CFG reaches b's block from a's.
        // Both arcs exist for accesses inside a common CFG cycle
        // ("inside a loop, any memory dependence is essentially
        // bi-directional" — §4).
        let mem_ops: Vec<InstrId> = f
            .all_instrs()
            .filter(|&i| f.instr(i).is_mem_op())
            .collect();
        let reach = block_reachability(f);
        let pos_in_block: HashMap<InstrId, usize> = f
            .blocks()
            .flat_map(|b| f.block(b).all_instrs().enumerate().map(|(k, i)| (i, k)))
            .collect();
        // Loop-aware disambiguation (affine array dependences) can
        // prove some cross-iteration orderings vacuous.
        let push_mem = |deps: &mut Vec<Dep>, src: InstrId, dst: InstrId| {
            let carried = is_loop_carried(f, &dom, &loops, src, dst);
            if carried
                && options.loop_aware_disambiguation
                && crate::affine::kills_carried_dep(f, &defuse, &loops, src, dst)
            {
                return;
            }
            deps.push(Dep { src, dst, kind: DepKind::Memory, loop_carried: carried });
        };
        for (ai_idx, &a) in mem_ops.iter().enumerate() {
            for &b in mem_ops.iter().skip(ai_idx + 1) {
                let a_writes = f.instr(a).is_mem_write();
                let b_writes = f.instr(b).is_mem_write();
                if !a_writes && !b_writes {
                    continue;
                }
                if !alias.may_alias(f, a, b) {
                    continue;
                }
                let (ba, bb) = (f.block_of(a), f.block_of(b));
                if ba == bb {
                    let (first, second) =
                        if pos_in_block[&a] <= pos_in_block[&b] { (a, b) } else { (b, a) };
                    push_mem(&mut deps, first, second);
                    if reach[ba.index()].contains(ba.index()) {
                        // The block re-executes: the reverse order is
                        // also possible across iterations.
                        push_mem(&mut deps, second, first);
                    }
                } else {
                    if reach[ba.index()].contains(bb.index()) {
                        push_mem(&mut deps, a, b);
                    }
                    if reach[bb.index()].contains(ba.index()) {
                        push_mem(&mut deps, b, a);
                    }
                    // Mutually unreachable blocks (exclusive arms) need
                    // no ordering.
                }
            }
        }

        // -- Control dependences: branch -> every instruction of each
        // controlled block.
        for b in f.blocks() {
            for cd in cdeps.of_block(b) {
                for i in f.block(b).all_instrs() {
                    if i == cd.branch {
                        continue; // self-control (loop headers): keep? see below
                    }
                    let carried = is_loop_carried(f, &dom, &loops, cd.branch, i);
                    deps.push(Dep { src: cd.branch, dst: i, kind: DepKind::Control, loop_carried: carried });
                }
            }
            // A loop-header branch controlling its own block: add the
            // self-loop arcs for *other* instructions of the block (done
            // above); the branch's self-arc is meaningless.
        }

        deps.sort();
        deps.dedup();

        let nodes: Vec<InstrId> = f.all_instrs().collect();
        let mut outgoing: HashMap<InstrId, Vec<usize>> = HashMap::new();
        let mut incoming: HashMap<InstrId, Vec<usize>> = HashMap::new();
        for (idx, d) in deps.iter().enumerate() {
            outgoing.entry(d.src).or_default().push(idx);
            incoming.entry(d.dst).or_default().push(idx);
        }
        Pdg { deps, outgoing, incoming, nodes }
    }

    /// All dependence arcs, sorted.
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// Arcs leaving instruction `i`.
    pub fn deps_from(&self, i: InstrId) -> impl Iterator<Item = &Dep> + '_ {
        self.outgoing
            .get(&i)
            .into_iter()
            .flatten()
            .map(move |&idx| &self.deps[idx])
    }

    /// Arcs entering instruction `i`.
    pub fn deps_into(&self, i: InstrId) -> impl Iterator<Item = &Dep> + '_ {
        self.incoming
            .get(&i)
            .into_iter()
            .flatten()
            .map(move |&idx| &self.deps[idx])
    }

    /// The PDG nodes (all placed instructions, in layout order).
    pub fn nodes(&self) -> &[InstrId] {
        &self.nodes
    }

    /// Lowers the PDG to a [`DiGraph`] for SCC/condensation, returning
    /// the graph and the node-id ↔ instruction mapping (graph node `k`
    /// is `nodes()[k]`).
    pub fn as_digraph(&self) -> (DiGraph, HashMap<InstrId, NodeId>) {
        self.as_digraph_filtered(|_| true)
    }

    /// Like [`Pdg::as_digraph`], keeping only arcs accepted by `keep`.
    ///
    /// GREMIO schedules over the *intra-iteration* dependence graph
    /// (`keep = |d| !d.loop_carried`): loop-carried arcs do not
    /// constrain the within-iteration schedule, and cyclic inter-thread
    /// dependences are allowed.
    pub fn as_digraph_filtered(
        &self,
        keep: impl Fn(&Dep) -> bool,
    ) -> (DiGraph, HashMap<InstrId, NodeId>) {
        let mut g = DiGraph::with_nodes(self.nodes.len());
        let index: HashMap<InstrId, NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, NodeId(k as u32)))
            .collect();
        for d in &self.deps {
            if keep(d) {
                g.add_arc_dedup(index[&d.src], index[&d.dst]);
            }
        }
        (g, index)
    }

    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the PDG has no arcs.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }
}

impl fmt::Debug for Pdg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Pdg({} nodes, {} deps)", self.nodes.len(), self.deps.len())?;
        for d in &self.deps {
            writeln!(
                f,
                "  {:?} -> {:?} [{:?}{}]",
                d.src,
                d.dst,
                d.kind,
                if d.loop_carried { ", carried" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Whether the `src -> dst` dependence may be carried by a loop back
/// edge: they share a loop and `src` does not strictly precede `dst` on
/// every iteration path (approximated: src's block does not dominate
/// dst's block, or same block with src at/after dst).
fn is_loop_carried(
    f: &Function,
    dom: &Dominators,
    loops: &LoopForest,
    src: InstrId,
    dst: InstrId,
) -> bool {
    if !shares_loop(f, loops, src, dst) {
        return false;
    }
    let (sb, db) = (f.block_of(src), f.block_of(dst));
    if sb == db {
        let block = f.block(sb);
        let pos = |x: InstrId| {
            block
                .all_instrs()
                .position(|i| i == x)
                .expect("instr in its block")
        };
        pos(src) >= pos(dst)
    } else {
        !dom.dominates(sb, db)
    }
}

/// Proper (≥1 edge) CFG reachability between blocks: `result[x]`
/// contains `y` iff some nonempty path leads from `x` to `y`.
fn block_reachability(f: &Function) -> Vec<gmt_ir::BitSet> {
    let n = f.num_blocks();
    let mut reach: Vec<gmt_ir::BitSet> = Vec::with_capacity(n);
    for b in f.blocks() {
        let mut seen = gmt_ir::BitSet::new(n);
        let mut stack: Vec<_> = f.successors(b);
        while let Some(x) = stack.pop() {
            if seen.insert(x.index()) {
                stack.extend(f.successors(x));
            }
        }
        reach.push(seen);
    }
    reach
}

/// Whether both instructions are inside some common loop.
fn shares_loop(f: &Function, loops: &LoopForest, a: InstrId, b: InstrId) -> bool {
    let (ba, bb) = (f.block_of(a), f.block_of(b));
    // Walk a's loop ancestry looking for a loop containing b.
    let mut cur = loops.innermost[ba.index()];
    while let Some(li) = cur {
        if loops.loops[li].contains(bb) {
            return true;
        }
        cur = loops.loops[li].parent;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, FunctionBuilder};

    /// Build: loop { a[i] = i; s += b[i]; i++ } with disjoint a/b.
    fn loop_kernel() -> Function {
        let mut bld = FunctionBuilder::new("k");
        let a = bld.object("a", 16);
        let c = bld.object("c", 16);
        let i = bld.fresh_reg();
        let s = bld.fresh_reg();
        let header = bld.block("h");
        let body = bld.block("b");
        let exit = bld.block("x");
        bld.const_into(i, 0);
        bld.const_into(s, 0);
        bld.jump(header);
        bld.switch_to(header);
        let cnd = bld.bin(BinOp::Lt, i, 8i64);
        bld.branch(cnd, body, exit);
        bld.switch_to(body);
        let pa = bld.lea(a, 0);
        let ea = bld.bin(BinOp::Add, pa, i);
        bld.store(ea, 0, i);
        let pc = bld.lea(c, 0);
        let ec = bld.bin(BinOp::Add, pc, i);
        let v = bld.load(ec, 0);
        bld.bin_into(BinOp::Add, s, s, v);
        bld.bin_into(BinOp::Add, i, i, 1i64);
        bld.jump(header);
        bld.switch_to(exit);
        bld.ret(Some(s.into()));
        bld.finish().unwrap()
    }

    #[test]
    fn register_deps_present() {
        let f = loop_kernel();
        let pdg = Pdg::build(&f);
        // The i increment feeds the loop condition (loop-carried).
        let has_carried_reg = pdg
            .deps()
            .iter()
            .any(|d| matches!(d.kind, DepKind::Register(_)) && d.loop_carried);
        assert!(has_carried_reg);
    }

    #[test]
    fn disjoint_arrays_no_memory_dep() {
        let f = loop_kernel();
        let pdg = Pdg::build(&f);
        // store a[] vs load c[]: disjoint objects — no memory arc.
        assert!(
            !pdg.deps().iter().any(|d| d.kind == DepKind::Memory),
            "{pdg:?}"
        );
    }

    #[test]
    fn aliasing_accesses_get_bidirectional_arcs_in_loop() {
        // loop { a[0] = load a[0] + 1 }
        let mut bld = FunctionBuilder::new("k");
        let a = bld.object("a", 2);
        let i = bld.fresh_reg();
        let header = bld.block("h");
        let body = bld.block("b");
        let exit = bld.block("x");
        bld.const_into(i, 0);
        bld.jump(header);
        bld.switch_to(header);
        let cnd = bld.bin(BinOp::Lt, i, 4i64);
        bld.branch(cnd, body, exit);
        bld.switch_to(body);
        let p = bld.lea(a, 0);
        let v = bld.load(p, 0);
        let v2 = bld.bin(BinOp::Add, v, 1i64);
        bld.store(p, 0, v2);
        bld.bin_into(BinOp::Add, i, i, 1i64);
        bld.jump(header);
        bld.switch_to(exit);
        bld.ret(None);
        let f = bld.finish().unwrap();
        let pdg = Pdg::build(&f);
        let mem: Vec<_> = pdg.deps().iter().filter(|d| d.kind == DepKind::Memory).collect();
        assert_eq!(mem.len(), 2, "load→store and carried store→load: {pdg:?}");
        assert!(mem.iter().any(|d| d.loop_carried));
        assert!(mem.iter().any(|d| !d.loop_carried));
    }

    #[test]
    fn control_deps_from_branch_to_body() {
        let f = loop_kernel();
        let pdg = Pdg::build(&f);
        let header_branch = f.block(gmt_ir::BlockId(1)).terminator.unwrap();
        let controlled: Vec<_> = pdg
            .deps_from(header_branch)
            .filter(|d| d.kind == DepKind::Control)
            .collect();
        // Every instruction of the body block + header's own
        // instructions (self-loop control) are controlled.
        assert!(controlled.len() >= 8, "{controlled:?}");
        // The branch controls itself? Excluded by construction.
        assert!(controlled.iter().all(|d| d.dst != header_branch));
    }

    #[test]
    fn outputs_are_ordered_by_memory_arcs() {
        let mut bld = FunctionBuilder::new("o");
        bld.output(1i64);
        bld.output(2i64);
        bld.ret(None);
        let f = bld.finish().unwrap();
        let pdg = Pdg::build(&f);
        let mem: Vec<_> = pdg.deps().iter().filter(|d| d.kind == DepKind::Memory).collect();
        assert_eq!(mem.len(), 1);
        assert!(!mem[0].loop_carried);
    }

    #[test]
    fn digraph_lowering_matches_nodes() {
        let f = loop_kernel();
        let pdg = Pdg::build(&f);
        let (g, index) = pdg.as_digraph();
        assert_eq!(g.len(), pdg.nodes().len());
        assert_eq!(index.len(), pdg.nodes().len());
        assert!(g.arc_count() <= pdg.len());
    }

    #[test]
    fn deps_into_and_from_are_consistent() {
        let f = loop_kernel();
        let pdg = Pdg::build(&f);
        let total_out: usize = pdg.nodes().iter().map(|&n| pdg.deps_from(n).count()).sum();
        let total_in: usize = pdg.nodes().iter().map(|&n| pdg.deps_into(n).count()).sum();
        assert_eq!(total_out, pdg.len());
        assert_eq!(total_in, pdg.len());
    }
}
