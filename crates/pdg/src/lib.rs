//! Program Dependence Graph construction for GMT instruction scheduling.
//!
//! "The first step is to build a Program Dependence Graph (PDG),
//! including all the dependences that need to be respected" (§2 of the
//! COCO paper). This crate provides:
//!
//! - [`AliasInfo`] — a flow-insensitive, Andersen-style points-to
//!   analysis at memory-object granularity, standing in for the
//!   summary-based pointer analysis the paper's toolchain uses;
//! - [`Pdg`] — register, memory, and control dependence arcs over a
//!   function's instructions, with loop-carried arcs flagged;
//! - [`Partition`] / [`ThreadId`] — the assignment of instructions to
//!   threads produced by a partitioner (DSWP, GREMIO) and consumed by
//!   MTCG and COCO.
//!
//! # Example
//!
//! ```
//! use gmt_ir::{FunctionBuilder, BinOp};
//! use gmt_pdg::{Pdg, DepKind};
//!
//! # fn main() -> Result<(), gmt_ir::VerifyError> {
//! let mut b = FunctionBuilder::new("f");
//! let x = b.param();
//! let y = b.bin(BinOp::Add, x, 1i64);
//! b.ret(Some(y.into()));
//! let f = b.finish()?;
//! let pdg = Pdg::build(&f);
//! // add -> ret register dependence
//! assert!(pdg.deps().iter().any(|d| matches!(d.kind, DepKind::Register(_))));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
mod alias;
mod graph;
mod partition;

pub use alias::{AliasInfo, PointsTo};
pub use graph::{Dep, DepKind, Pdg, PdgOptions};
pub use partition::{Partition, ThreadId};
