//! Thread partitions: the output of a GMT partitioner, the input of
//! MTCG and COCO.

use gmt_ir::{Function, InstrId};
use std::collections::HashMap;
use std::fmt;

/// A thread index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The thread index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An assignment of every instruction of a function to a thread.
///
/// `ret` terminators are assigned like any other instruction; MTCG gives
/// every generated thread its own return path regardless.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    thread_of: HashMap<InstrId, ThreadId>,
    num_threads: u32,
}

impl Partition {
    /// Creates an empty partition over `num_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: u32) -> Partition {
        assert!(num_threads > 0, "at least one thread required");
        Partition { thread_of: HashMap::new(), num_threads }
    }

    /// A partition placing every instruction of `f` on thread 0 —
    /// the degenerate single-threaded "partition".
    pub fn single_threaded(f: &Function) -> Partition {
        let mut p = Partition::new(1);
        for i in f.all_instrs() {
            p.assign(i, ThreadId(0));
        }
        p
    }

    /// Number of threads.
    pub fn num_threads(&self) -> u32 {
        self.num_threads
    }

    /// Thread ids, in order.
    pub fn threads(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.num_threads).map(ThreadId)
    }

    /// Assigns instruction `i` to thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn assign(&mut self, i: InstrId, t: ThreadId) {
        assert!(t.0 < self.num_threads, "thread {t:?} out of range");
        self.thread_of.insert(i, t);
    }

    /// The thread of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is unassigned (use [`Partition::get`] for a
    /// non-panicking query).
    pub fn thread_of(&self, i: InstrId) -> ThreadId {
        self.get(i).unwrap_or_else(|| panic!("{i:?} unassigned"))
    }

    /// The thread of instruction `i`, if assigned.
    pub fn get(&self, i: InstrId) -> Option<ThreadId> {
        self.thread_of.get(&i).copied()
    }

    /// Instructions assigned to thread `t`, in arbitrary order.
    pub fn instrs_of(&self, t: ThreadId) -> impl Iterator<Item = InstrId> + '_ {
        self.thread_of
            .iter()
            .filter(move |&(_, &tt)| tt == t)
            .map(|(&i, _)| i)
    }

    /// Checks that every placed instruction of `f` is assigned to a
    /// valid thread.
    ///
    /// # Errors
    ///
    /// Returns the first unassigned instruction.
    pub fn validate(&self, f: &Function) -> Result<(), InstrId> {
        for i in f.all_instrs() {
            if self.get(i).is_none() {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Per-thread instruction counts (static balance metric).
    pub fn static_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_threads as usize];
        for &t in self.thread_of.values() {
            sizes[t.index()] += 1;
        }
        sizes
    }

    /// Per-thread dynamic weight, given per-instruction weights.
    pub fn dynamic_sizes(&self, weight: impl Fn(InstrId) -> u64) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_threads as usize];
        for (&i, &t) in &self.thread_of {
            sizes[t.index()] += weight(i);
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::FunctionBuilder;

    fn tiny() -> Function {
        let mut b = FunctionBuilder::new("t");
        let c = b.const_(1);
        b.output(c);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn single_threaded_covers_everything() {
        let f = tiny();
        let p = Partition::single_threaded(&f);
        assert!(p.validate(&f).is_ok());
        assert_eq!(p.num_threads(), 1);
        assert_eq!(p.static_sizes(), vec![3]);
    }

    #[test]
    fn missing_assignment_detected() {
        let f = tiny();
        let mut p = Partition::new(2);
        let first = f.block(f.entry()).instrs[0];
        p.assign(first, ThreadId(1));
        assert!(p.validate(&f).is_err());
        assert_eq!(p.thread_of(first), ThreadId(1));
        assert_eq!(p.get(InstrId(99)), None);
    }

    #[test]
    fn dynamic_sizes_use_weights() {
        let f = tiny();
        let mut p = Partition::new(2);
        let instrs: Vec<_> = f.all_instrs().collect();
        p.assign(instrs[0], ThreadId(0));
        p.assign(instrs[1], ThreadId(1));
        p.assign(instrs[2], ThreadId(1));
        let sizes = p.dynamic_sizes(|_| 10);
        assert_eq!(sizes, vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_rejected() {
        let f = tiny();
        let mut p = Partition::new(1);
        p.assign(f.block(f.entry()).instrs[0], ThreadId(3));
    }

    #[test]
    fn instrs_of_filters_by_thread() {
        let f = tiny();
        let p = Partition::single_threaded(&f);
        assert_eq!(p.instrs_of(ThreadId(0)).count(), 3);
    }
}
