//! Flow-insensitive, Andersen-style points-to analysis over the IR.
//!
//! The PDG needs to know, for every pair of memory instructions, whether
//! they may touch the same location. On this IR the only way an address
//! is born is `lea` on a named [`MemObject`](gmt_ir::MemObject), so an
//! inclusion-based points-to analysis at object granularity is both
//! simple and reasonably precise — the same role the summary-based
//! pointer analysis of Nystrom et al. plays in the paper's toolchain
//! (§4, \[14\]).
//!
//! Rules (iterated to a fixpoint):
//!
//! - `lea d, obj`            → `obj ∈ pts(d)`
//! - `d = a <op> b`          → `pts(d) ⊇ pts(a) ∪ pts(b)` (pointer arithmetic)
//! - `d = mov/neg/not a`     → `pts(d) ⊇ pts(a)`
//! - `d = load [p]`          → `pts(d) ⊇ ⋃ {heap(o) | o ∈ pts(p)}`
//! - `store [p], v`          → `∀ o ∈ pts(p): heap(o) ⊇ pts(v)`
//! - `d = const c`           → nothing (integers are not addresses)
//! - `d = consume q`         → `pts(d) = ⊤` (values from other threads
//!   are analyzed conservatively; in practice the analysis runs on the
//!   original single-threaded code, which has no `consume`)
//!
//! A register whose points-to set is empty but that is used as a base
//! address is treated as ⊤ (may address anything), which keeps the
//! analysis sound for address arithmetic the rules cannot see through.

use gmt_ir::{Function, InstrId, ObjectId, Op, Operand, Reg};
use std::collections::BTreeSet;

/// What a memory instruction may access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointsTo {
    /// A set of known objects.
    Objects(BTreeSet<ObjectId>),
    /// Anything (unknown base address).
    Top,
}

impl PointsTo {
    /// Whether two access summaries may overlap.
    pub fn may_overlap(&self, other: &PointsTo) -> bool {
        match (self, other) {
            (PointsTo::Top, _) | (_, PointsTo::Top) => true,
            (PointsTo::Objects(a), PointsTo::Objects(b)) => !a.is_disjoint(b),
        }
    }
}

/// Results of the points-to analysis for one function.
#[derive(Clone, Debug)]
pub struct AliasInfo {
    /// Per-register points-to set; `None` = ⊤.
    reg_pts: Vec<Option<BTreeSet<ObjectId>>>,
}

impl AliasInfo {
    /// Runs the analysis on `f`.
    pub fn compute(f: &Function) -> AliasInfo {
        let nr = f.num_regs() as usize;
        // None = ⊤ (top); Some(set) = the inclusion set so far.
        let mut reg_pts: Vec<Option<BTreeSet<ObjectId>>> = vec![Some(BTreeSet::new()); nr];
        // heap(o): objects whose addresses may be stored inside o.
        let mut heap: Vec<Option<BTreeSet<ObjectId>>> =
            vec![Some(BTreeSet::new()); f.objects().len()];

        // Merge helper: dst ⊇ src; returns change.
        fn merge(dst: &mut Option<BTreeSet<ObjectId>>, src: &Option<BTreeSet<ObjectId>>) -> bool {
            match (dst.as_mut(), src) {
                (None, _) => false,
                (Some(_), None) => {
                    *dst = None;
                    true
                }
                (Some(d), Some(s)) => {
                    let before = d.len();
                    d.extend(s.iter().copied());
                    d.len() != before
                }
            }
        }

        let mut changed = true;
        while changed {
            changed = false;
            for i in f.all_instrs() {
                match f.instr(i) {
                    Op::Lea(d, obj, _) => {
                        if let Some(Some(set)) = reg_pts.get_mut(d.index()).map(Option::as_mut) {
                            changed |= set.insert(*obj);
                        }
                    }
                    Op::Bin(_, d, a, b) => {
                        let mut acc = operand_pts(&reg_pts, *a);
                        let other = operand_pts(&reg_pts, *b);
                        merge(&mut acc, &other);
                        let acc = acc; // finished accumulating
                        changed |= merge_into(&mut reg_pts, *d, &acc);
                    }
                    Op::Un(_, d, a) => {
                        let src = operand_pts(&reg_pts, *a);
                        changed |= merge_into(&mut reg_pts, *d, &src);
                    }
                    Op::Load(d, addr) => {
                        // A base register the function does not even
                        // declare is an address the rules cannot see
                        // through: ⊤, like a load through ⊤.
                        let loaded = match reg_pts.get(addr.base.index()).map(Option::as_ref) {
                            None | Some(None) => None,
                            Some(Some(bases)) => {
                                let mut acc = Some(BTreeSet::new());
                                for o in bases {
                                    // An undeclared object id may hold
                                    // anything: ⊤.
                                    let h = heap.get(o.index()).cloned().unwrap_or(None);
                                    merge(&mut acc, &h);
                                }
                                acc
                            }
                        };
                        changed |= merge_into(&mut reg_pts, *d, &loaded);
                    }
                    Op::Store(addr, v) => {
                        let val = operand_pts(&reg_pts, *v);
                        // Don't pollute the heap with non-pointer stores.
                        let is_pointerish = !matches!(&val, Some(s) if s.is_empty());
                        if is_pointerish {
                            match reg_pts.get(addr.base.index()).map(Option::as_ref) {
                                None | Some(None) => {
                                    // Store through ⊤ (or through an
                                    // undeclared base register): every
                                    // object may now hold these pointers.
                                    for h in heap.iter_mut() {
                                        changed |= merge(h, &val);
                                    }
                                }
                                Some(Some(bases)) => {
                                    for o in bases.clone() {
                                        if let Some(h) = heap.get_mut(o.index()) {
                                            changed |= merge(h, &val);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Op::Consume { dst, .. }
                        if matches!(reg_pts.get(dst.index()), Some(Some(_))) => {
                            reg_pts[dst.index()] = None;
                            changed = true;
                        }
                    _ => {}
                }
            }
        }
        AliasInfo { reg_pts }
    }

    /// The points-to set of register `r`. A register outside the
    /// analyzed function's register file is ⊤ — nothing is known about
    /// it, so it may address anything.
    pub fn points_to(&self, r: Reg) -> PointsTo {
        match self.reg_pts.get(r.index()).map(Option::as_ref) {
            None | Some(None) => PointsTo::Top,
            Some(Some(s)) => PointsTo::Objects(s.clone()),
        }
    }

    /// What memory instruction `i` of `f` may access; `None` if `i` is
    /// not a memory instruction.
    ///
    /// [`Op::Output`] accesses a dedicated I/O "location" disjoint from
    /// all objects; this is encoded by the caller ([`AliasInfo::may_alias`]) rather
    /// than here.
    pub fn access_of(&self, f: &Function, i: InstrId) -> Option<PointsTo> {
        let base = match f.instr(i) {
            Op::Load(_, a) => a.base,
            Op::Store(a, _) => a.base,
            _ => return None,
        };
        Some(match self.reg_pts.get(base.index()).map(Option::as_ref) {
            None | Some(None) => PointsTo::Top,
            // A base with an empty points-to set is an address the rules
            // couldn't track: be conservative.
            Some(Some(s)) if s.is_empty() => PointsTo::Top,
            Some(Some(s)) => PointsTo::Objects(s.clone()),
        })
    }

    /// Whether memory instructions `i` and `j` may access overlapping
    /// locations (both must be loads/stores/outputs; at least the
    /// caller should ensure one writes).
    pub fn may_alias(&self, f: &Function, i: InstrId, j: InstrId) -> bool {
        let io_i = matches!(f.instr(i), Op::Output(_));
        let io_j = matches!(f.instr(j), Op::Output(_));
        if io_i || io_j {
            // The output stream aliases itself only.
            return io_i && io_j;
        }
        match (self.access_of(f, i), self.access_of(f, j)) {
            (Some(a), Some(b)) => a.may_overlap(&b),
            _ => false,
        }
    }
}

fn operand_pts(
    reg_pts: &[Option<BTreeSet<ObjectId>>],
    o: Operand,
) -> Option<BTreeSet<ObjectId>> {
    match o {
        // Out-of-range register: ⊤ (nothing is known about it).
        Operand::Reg(r) => reg_pts.get(r.index()).cloned().unwrap_or(None),
        Operand::Imm(_) => Some(BTreeSet::new()),
    }
}

fn merge_into(
    reg_pts: &mut [Option<BTreeSet<ObjectId>>],
    dst: Reg,
    src: &Option<BTreeSet<ObjectId>>,
) -> bool {
    // An out-of-range destination has no tracked state to update.
    let Some(slot) = reg_pts.get_mut(dst.index()) else {
        return false;
    };
    match (slot.as_mut(), src) {
        (None, _) => false,
        (Some(_), None) => {
            *slot = None;
            true
        }
        (Some(d), Some(s)) => {
            let before = d.len();
            d.extend(s.iter().copied());
            d.len() != before
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, FunctionBuilder};

    #[test]
    fn distinct_objects_do_not_alias() {
        let mut b = FunctionBuilder::new("t");
        let x = b.object("x", 8);
        let y = b.object("y", 8);
        let px = b.lea(x, 0);
        let py = b.lea(y, 0);
        b.store(px, 0, 1i64);
        b.store(py, 0, 2i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        let sx = f.block(f.entry()).instrs[2];
        let sy = f.block(f.entry()).instrs[3];
        assert!(!ai.may_alias(&f, sx, sy));
        assert!(ai.may_alias(&f, sx, sx));
    }

    #[test]
    fn pointer_arithmetic_preserves_target() {
        let mut b = FunctionBuilder::new("t");
        let x = b.object("x", 8);
        let px = b.lea(x, 0);
        let i = b.const_(3);
        let p2 = b.bin(BinOp::Add, px, i);
        b.store(p2, 0, 1i64);
        b.store(px, 0, 2i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        assert_eq!(
            ai.points_to(p2),
            PointsTo::Objects(std::iter::once(x).collect())
        );
        let s1 = f.block(f.entry()).instrs[3];
        let s2 = f.block(f.entry()).instrs[4];
        assert!(ai.may_alias(&f, s1, s2));
    }

    #[test]
    fn pointers_loaded_from_memory() {
        // Store &y into x[0]; load it back; the loaded pointer targets y.
        let mut b = FunctionBuilder::new("t");
        let x = b.object("x", 2);
        let y = b.object("y", 2);
        let px = b.lea(x, 0);
        let py = b.lea(y, 0);
        b.store(px, 0, py);
        let q = b.load(px, 0);
        b.store(q, 0, 9i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        assert_eq!(ai.points_to(q), PointsTo::Objects(std::iter::once(y).collect()));
        // The store through q aliases a direct store to y but not to x.
        let store_q = f.block(f.entry()).instrs[4];
        let store_px = f.block(f.entry()).instrs[2];
        assert!(!ai.may_alias(&f, store_q, store_px));
    }

    #[test]
    fn untracked_base_is_top() {
        let mut b = FunctionBuilder::new("t");
        let x = b.object("x", 4);
        let px = b.lea(x, 0);
        let wild = b.const_(123); // integer used as an address
        b.store(wild, 0, 1i64);
        b.store(px, 0, 2i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        let sw = f.block(f.entry()).instrs[2];
        let sx = f.block(f.entry()).instrs[3];
        assert!(ai.may_alias(&f, sw, sx), "⊤ aliases everything");
    }

    #[test]
    fn outputs_alias_each_other_only() {
        let mut b = FunctionBuilder::new("t");
        let x = b.object("x", 4);
        let px = b.lea(x, 0);
        b.store(px, 0, 1i64);
        b.output(1i64);
        b.output(2i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        let st = f.block(f.entry()).instrs[1];
        let o1 = f.block(f.entry()).instrs[2];
        let o2 = f.block(f.entry()).instrs[3];
        assert!(ai.may_alias(&f, o1, o2));
        assert!(!ai.may_alias(&f, st, o1));
    }

    #[test]
    fn consume_result_is_top() {
        use gmt_ir::{Op, QueueId};
        let mut b = FunctionBuilder::new("t");
        let d = b.fresh_reg();
        b.emit(Op::Consume { dst: d, queue: QueueId(0) });
        b.ret(None);
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        assert_eq!(ai.points_to(d), PointsTo::Top);
    }

    #[test]
    fn non_memory_instructions_have_no_access() {
        let mut b = FunctionBuilder::new("t");
        let c = b.const_(1);
        b.ret(Some(c.into()));
        let f = b.finish().unwrap();
        let ai = AliasInfo::compute(&f);
        let ci = f.block(f.entry()).instrs[0];
        assert!(ai.access_of(&f, ci).is_none());
    }
}
