//! Loop-aware memory disambiguation via affine access analysis.
//!
//! The paper (§4) notes that DSWP would benefit more from COCO "with
//! more powerful, loop-aware memory disambiguation techniques to
//! eliminate false memory dependences, such as shape analysis or
//! array-dependence analysis". This module implements the
//! array-dependence half: when two accesses in a loop address
//! `object[i + c]` through the *same* induction variable `i` with the
//! same constant `c`, they touch a fresh cell every iteration of `i`'s
//! loop — so the dependence is not carried by that loop, and the
//! backward (cross-iteration) PDG arc between them can be dropped.
//!
//! Soundness rules:
//!
//! - the base register must resolve (through unique reaching
//!   definitions) to `lea object + const` plus at most one induction
//!   variable;
//! - an *induction variable* has exactly two definitions: an
//!   initialization outside the loop and one `i = i + nonzero-const`
//!   inside it — strictly monotonic, hence injective within one
//!   activation of the loop;
//! - the cross-iteration arc is dropped only when the accesses'
//!   innermost common loop *is* the induction variable's loop and that
//!   loop is outermost. If an outer loop re-enters the inner loop the
//!   variable resets and cells are revisited, so the ordering must
//!   stay.

use gmt_ir::{DefUse, Function, InstrId, LoopForest, ObjectId, Op, Operand, Reg};

/// An access of the form `object[ivar + offset]` (or `object[offset]`
/// when `ivar` is `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AffineAccess {
    /// The addressed object.
    pub object: ObjectId,
    /// The induction variable and its per-iteration step, if any.
    pub ivar: Option<(Reg, i64)>,
    /// The constant displacement.
    pub offset: i64,
}

/// Classifies register `r` as an induction variable of some loop:
/// exactly two defs — one outside the loop, one `r = r + c` (c ≠ 0)
/// inside — returns `(loop index, step)`.
fn induction_var(
    f: &Function,
    defuse: &DefUse,
    loops: &LoopForest,
    r: Reg,
    user: InstrId,
) -> Option<(usize, i64)> {
    let defs = defuse.reaching_defs(user, r);
    if defs.len() != 2 {
        return None;
    }
    let mut update: Option<(InstrId, i64)> = None;
    let mut init: Option<InstrId> = None;
    for &d in defs {
        match *f.instr(d) {
            Op::Bin(gmt_ir::BinOp::Add, dst, Operand::Reg(a), Operand::Imm(c))
                if dst == r && a == r && c != 0 =>
            {
                update = Some((d, c));
            }
            Op::Bin(gmt_ir::BinOp::Add, dst, Operand::Imm(c), Operand::Reg(a))
                if dst == r && a == r && c != 0 =>
            {
                update = Some((d, c));
            }
            _ => init = Some(d),
        }
    }
    let (upd, step) = update?;
    let init = init?;
    // `.get` rather than indexing: a loop forest computed for a
    // different (or since-mutated) function must degrade to "not an
    // induction variable", never fault.
    let li = loops.innermost.get(f.block_of(upd).index()).copied().flatten()?;
    // The initialization must sit outside the update's loop.
    if loops.loops.get(li)?.contains(f.block_of(init)) {
        return None;
    }
    Some((li, step))
}

/// Attempts to express the address of memory instruction `i` as an
/// affine access.
pub fn affine_access(
    f: &Function,
    defuse: &DefUse,
    loops: &LoopForest,
    i: InstrId,
) -> Option<AffineAccess> {
    let addr = match *f.instr(i) {
        Op::Load(_, a) => a,
        Op::Store(a, _) => a,
        _ => return None,
    };
    let mut object: Option<ObjectId> = None;
    let mut ivar: Option<(Reg, i64)> = None;
    let mut offset = addr.offset;
    // Worklist of (register, use site) still to resolve into the sum.
    let mut work: Vec<(Reg, InstrId)> = vec![(addr.base, i)];
    let mut fuel = 16;
    while let Some((r, at)) = work.pop() {
        fuel -= 1;
        if fuel == 0 {
            return None;
        }
        // An induction variable terminates resolution of this term.
        if let Some((li, step)) = induction_var(f, defuse, loops, r, at) {
            if ivar.is_some() {
                return None; // two index terms: give up
            }
            let _ = li;
            ivar = Some((r, step));
            continue;
        }
        let defs = defuse.reaching_defs(at, r);
        if defs.len() != 1 {
            return None;
        }
        let d = defs[0];
        match *f.instr(d) {
            Op::Lea(_, obj, c) => {
                if object.is_some() {
                    return None;
                }
                object = Some(obj);
                offset += c;
            }
            Op::Const(_, v) => offset += v,
            Op::Un(gmt_ir::UnOp::Mov, _, Operand::Reg(s)) => work.push((s, d)),
            Op::Bin(gmt_ir::BinOp::Add, _, a, b) => {
                for o in [a, b] {
                    match o {
                        Operand::Reg(s) => work.push((s, d)),
                        Operand::Imm(v) => offset += v,
                    }
                }
            }
            _ => return None,
        }
    }
    Some(AffineAccess { object: object?, ivar, offset })
}

/// Whether the cross-iteration (backward) dependence arc between two
/// may-aliasing accesses can be dropped: both are affine over the same
/// induction variable with equal offsets, and the variable's loop is
/// their outermost common context.
pub fn kills_carried_dep(
    f: &Function,
    defuse: &DefUse,
    loops: &LoopForest,
    a: InstrId,
    b: InstrId,
) -> bool {
    let (Some(aa), Some(ab)) = (
        affine_access(f, defuse, loops, a),
        affine_access(f, defuse, loops, b),
    ) else {
        return false;
    };
    let (Some((ra, sa)), Some((rb, sb))) = (aa.ivar, ab.ivar) else {
        return false;
    };
    if aa.object != ab.object || ra != rb || sa != sb || aa.offset != ab.offset {
        return false;
    }
    // The induction variable's loop must be the accesses' innermost
    // loop and have no parent (otherwise an outer re-entry resets the
    // variable and revisits cells).
    // Conservative on any structural mismatch: keeping the arc is
    // always sound, so unknown shapes answer "cannot drop".
    let (la, lb) = (
        loops.innermost.get(f.block_of(a).index()).copied().flatten(),
        loops.innermost.get(f.block_of(b).index()).copied().flatten(),
    );
    match (la, lb) {
        (Some(x), Some(y)) if x == y => {
            loops.loops.get(x).is_some_and(|l| l.parent.is_none())
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, Dominators, FunctionBuilder};

    /// store a[i]; load a[i]; i++ — in one (outermost) loop.
    fn same_cell_loop(nested: bool) -> (Function, InstrId, InstrId) {
        let mut bld = FunctionBuilder::new("k");
        let arr = bld.object("a", 64);
        let n = bld.param();
        let i = bld.fresh_reg();
        let outer_h = if nested { Some(bld.block("oh")) } else { None };
        let outer_b = if nested { Some(bld.block("ob")) } else { None };
        let h = bld.block("h");
        let body = bld.block("body");
        let exit = bld.block("exit");
        let done = bld.block("done");
        let o = bld.fresh_reg();
        bld.const_into(o, 0);
        if let (Some(oh), Some(_)) = (outer_h, outer_b) {
            bld.jump(oh);
            bld.switch_to(oh);
            let c = bld.bin(BinOp::Lt, o, 2i64);
            bld.branch(c, outer_b.unwrap(), done);
            bld.switch_to(outer_b.unwrap());
            bld.const_into(i, 0);
            bld.jump(h);
        } else {
            bld.const_into(i, 0);
            bld.jump(h);
        }
        bld.switch_to(h);
        let c = bld.bin(BinOp::Lt, i, n);
        bld.branch(c, body, exit);
        bld.switch_to(body);
        let base = bld.lea(arr, 0);
        let addr = bld.bin(BinOp::Add, base, i);
        bld.store(addr, 0, 7i64);
        let v = bld.load(addr, 0);
        bld.output(v);
        bld.bin_into(BinOp::Add, i, i, 1i64);
        bld.jump(h);
        bld.switch_to(exit);
        if nested {
            bld.bin_into(BinOp::Add, o, o, 1i64);
            bld.jump(outer_h.unwrap());
            bld.switch_to(done);
            bld.ret(None);
        } else {
            bld.jump(done);
            bld.switch_to(done);
            bld.ret(None);
        }
        let mut f = bld.finish().unwrap();
        gmt_ir::split_critical_edges(&mut f);
        let store = f.all_instrs().find(|&x| matches!(f.instr(x), Op::Store(..))).unwrap();
        let load = f.all_instrs().find(|&x| f.instr(x).is_mem_read()).unwrap();
        (f, store, load)
    }

    #[test]
    fn affine_access_recognized() {
        let (f, store, load) = same_cell_loop(false);
        let defuse = DefUse::compute(&f);
        let dom = Dominators::compute(&f);
        let loops = LoopForest::compute(&f, &dom);
        let sa = affine_access(&f, &defuse, &loops, store).expect("store is affine");
        let la = affine_access(&f, &defuse, &loops, load).expect("load is affine");
        assert_eq!(sa, la);
        assert!(sa.ivar.is_some());
        assert_eq!(sa.ivar.unwrap().1, 1, "step");
    }

    #[test]
    fn outermost_loop_kills_carried_dep() {
        let (f, store, load) = same_cell_loop(false);
        let defuse = DefUse::compute(&f);
        let dom = Dominators::compute(&f);
        let loops = LoopForest::compute(&f, &dom);
        assert!(kills_carried_dep(&f, &defuse, &loops, store, load));
    }

    #[test]
    fn nested_loop_keeps_carried_dep() {
        // The outer loop resets i, so cells are revisited.
        let (f, store, load) = same_cell_loop(true);
        let defuse = DefUse::compute(&f);
        let dom = Dominators::compute(&f);
        let loops = LoopForest::compute(&f, &dom);
        assert!(!kills_carried_dep(&f, &defuse, &loops, store, load));
    }

    #[test]
    fn different_offsets_conservative() {
        // store a[i]; load a[i+1]: cross-iteration dependence is real.
        let mut bld = FunctionBuilder::new("k");
        let arr = bld.object("a", 64);
        let n = bld.param();
        let i = bld.fresh_reg();
        let h = bld.block("h");
        let body = bld.block("body");
        let exit = bld.block("exit");
        bld.const_into(i, 0);
        bld.jump(h);
        bld.switch_to(h);
        let c = bld.bin(BinOp::Lt, i, n);
        bld.branch(c, body, exit);
        bld.switch_to(body);
        let base = bld.lea(arr, 0);
        let addr = bld.bin(BinOp::Add, base, i);
        bld.store(addr, 0, 7i64);
        let v = bld.load(addr, 1);
        bld.output(v);
        bld.bin_into(BinOp::Add, i, i, 1i64);
        bld.jump(h);
        bld.switch_to(exit);
        bld.ret(None);
        let mut f = bld.finish().unwrap();
        gmt_ir::split_critical_edges(&mut f);
        let store = f.all_instrs().find(|&x| matches!(f.instr(x), Op::Store(..))).unwrap();
        let load = f.all_instrs().find(|&x| f.instr(x).is_mem_read()).unwrap();
        let defuse = DefUse::compute(&f);
        let dom = Dominators::compute(&f);
        let loops = LoopForest::compute(&f, &dom);
        assert!(!kills_carried_dep(&f, &defuse, &loops, store, load));
    }
}
