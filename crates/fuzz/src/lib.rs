//! Differential fuzzing for the whole GMT pipeline.
//!
//! Three pieces:
//!
//! - [`ast`] — a structured program generator strictly richer than the
//!   integration tests' (nested/sibling loops with register and memory
//!   recurrences, may-alias accesses over multiple arrays and a
//!   select-pointer diamond, profile-skewed branches, and degenerate
//!   shapes: empty blocks, self-loops, dead registers, zero-trip
//!   loops), compiled to *verified* IR so downstream failures are
//!   pipeline bugs by construction;
//! - [`oracle`] — per case runs compile → verify → profile → PDG →
//!   {DSWP, GREMIO, seeded} → {baseline, COCO} → MTCG → `verify_mt`
//!   and cross-checks all five executors (sequential decoded +
//!   reference, functional MT decoded + reference, timed reference +
//!   decoded with fast-forward on and off) at uniform and allocated
//!   queue depths for identical outputs, instruction counts, and
//!   cycle totals — asserting *no panic anywhere; every rejection is a
//!   typed error*;
//! - [`corpus`] — failing seeds persist to `tests/fuzz_corpus/` and
//!   replay before fresh cases, forever.
//!
//! The `fuzz` bin drives it (time- and case-budgeted), shrinks
//! failures with `gmt_testkit::minimize`, and prints a one-command
//! repro line per finding.
//!
//! This crate depends on the whole pipeline, which is why the
//! generator lives here rather than in `gmt-testkit`: the testkit is
//! deliberately dependency-free (every crate, including `gmt-ir`,
//! uses it for property tests, so an IR generator there would be a
//! dependency cycle).

pub mod ast;
pub mod corpus;
pub mod oracle;
pub mod runner;

pub use ast::{case_from_seed, case_gen, compile, FuzzCase, Mode};
pub use corpus::{default_path, CorpusEntry};
pub use oracle::{run_case, CaseReport};
pub use runner::{fuzz_run, FuzzOptions, FuzzStats};
